"""The cost learner's loss (Section 4.5 of the paper).

Per stage: ``loss(t, t') = ((|t - t'| + s) / (t + s))^2`` where ``t`` is the
measured stage runtime, ``t'`` the model's prediction and ``s`` an
additive-smoothing regularizer that tempers the loss for very short stages.
Across stages: the weighted arithmetic mean, with each stage weighted by the
relative frequencies of its operators among all stages (so skewed workloads
do not drown rare operators).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

from ..core.monitor import StageObservation


def relative_loss(actual: float, predicted: float, smoothing: float = 1.0) -> float:
    """The paper's smoothed relative squared error."""
    if smoothing <= 0:
        raise ValueError("smoothing must be > 0")
    return ((abs(actual - predicted) + smoothing) / (actual + smoothing)) ** 2


def stage_weights(records: Sequence[StageObservation]) -> list[float]:
    """Weight per stage: sum of its operators' relative corpus frequencies."""
    counts: Counter[str] = Counter()
    total = 0
    for record in records:
        for obs in record.operators:
            counts[f"{obs.platform}.{obs.op_kind}"] += 1
            total += 1
    if total == 0:
        return [1.0] * len(records)
    weights = []
    for record in records:
        weight = sum(counts[f"{o.platform}.{o.op_kind}"] / total
                     for o in record.operators)
        weights.append(weight if weight > 0 else 1.0 / total)
    return weights


def corpus_loss(
    records: Sequence[StageObservation],
    predict: Callable[[StageObservation], float],
    smoothing: float = 1.0,
) -> float:
    """Weighted mean relative loss over a log corpus."""
    if not records:
        return 0.0
    weights = stage_weights(records)
    num = sum(w * relative_loss(r.duration_s, predict(r), smoothing)
              for w, r in zip(weights, records))
    return num / sum(weights)
