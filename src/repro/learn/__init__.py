"""Offline cost-model learning: log generation + genetic-algorithm fitting."""

from .generator import GeneratorConfig, LogGenerator, TOPOLOGIES
from .genetic import FitResult, GeneticCostLearner, predict_stage
from .loss import corpus_loss, relative_loss, stage_weights
from .persistence import (
    load_params,
    params_from_json,
    params_to_json,
    save_params,
)

__all__ = [
    "GeneratorConfig",
    "LogGenerator",
    "TOPOLOGIES",
    "FitResult",
    "GeneticCostLearner",
    "predict_stage",
    "corpus_loss",
    "relative_loss",
    "stage_weights",
    "load_params",
    "params_from_json",
    "params_to_json",
    "save_params",
]
