"""Cost-model learning: offline log generation + genetic-algorithm
fitting, plus the online trace → cost-model calibration loop."""

from .calibration import (
    CalibrationCorpus,
    CostCalibrator,
    observation_from_json,
    observation_to_json,
    predict_stage_with_defaults,
)
from .generator import GeneratorConfig, LogGenerator, TOPOLOGIES
from .genetic import FitResult, GeneticCostLearner, predict_stage
from .loss import corpus_loss, relative_loss, stage_weights
from .persistence import (
    load_params,
    params_from_json,
    params_to_json,
    save_params,
)

__all__ = [
    "CalibrationCorpus",
    "CostCalibrator",
    "GeneratorConfig",
    "LogGenerator",
    "TOPOLOGIES",
    "FitResult",
    "GeneticCostLearner",
    "observation_from_json",
    "observation_to_json",
    "predict_stage",
    "predict_stage_with_defaults",
    "corpus_loss",
    "relative_loss",
    "stage_weights",
    "load_params",
    "params_from_json",
    "params_to_json",
    "save_params",
]
