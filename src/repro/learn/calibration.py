"""Online cost-model calibration: closing the trace → cost-model loop.

Section 4.5 of the paper argues cost models must be *learned* from
stage-level execution logs rather than hand-tuned; "RHEEMix in the Data
Jungle" goes further and keeps re-learning them online while the system
serves traffic.  This module is that loop's stationary half:

* :class:`CalibrationCorpus` — a bounded, stratified store of committed
  :class:`~repro.core.monitor.StageObservation` samples, bucketed by
  (platform, dominant operator kind, cardinality band, vectorize flag)
  so one chatty workload cannot crowd every other regime out;
* :class:`CostCalibrator` — ingests observations, tracks an
  observed-vs-predicted drift EWMA, and when a refit trigger fires
  (sample count or drift threshold) runs the
  :class:`~repro.learn.genetic.GeneticCostLearner` off the hot path and
  publishes the merged parameters through a caller-supplied publish
  callback (``RheemContext.publish_cost_params`` or the job server's
  shard broadcast).

Hygiene rules mirror the result store's: sniffer and fault-injection
runs never contribute samples (the executor marks eligibility on the
:class:`~repro.core.executor.ExecutionResult`), and samples carry the
``vectorize`` flag so mixed-mode traffic cannot blend two genuinely
different cost regimes into one fit.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable, Mapping

from ..concurrency import OrderedLock
from ..core.channels import volume_band
from ..core.cost import OperatorCostParams, kind_params
from ..core.monitor import OperatorObservation, StageObservation
from ..simulation.cluster import VirtualCluster
from ..trace import NO_TRACER, MetricsRegistry, Tracer
from .genetic import GeneticCostLearner


def predict_stage_with_defaults(
    record: StageObservation,
    params: Mapping[str, OperatorCostParams],
    cluster: VirtualCluster,
) -> float:
    """Model prediction of one stage's runtime, with default fallback.

    Unlike :func:`~repro.learn.genetic.predict_stage` (which skips
    operators absent from ``params`` — correct while *fitting* only the
    keys under study), drift measurement needs a prediction for every
    stage, so missing keys fall back to the engineering-prior kind
    defaults exactly as :meth:`CostModel.params_for` does.
    """
    total = record.known_seconds
    for obs in record.operators:
        p = params.get(f"{obs.platform}.{obs.op_kind}")
        if p is None:
            p = kind_params(obs.op_kind)
        profile = cluster.profile(obs.platform)
        units = p.alpha * obs.cin + p.beta * obs.cout
        total += p.delta + profile.cpu_seconds(units, obs.work)
    return total


# --------------------------------------------------------------- wire format
def observation_to_json(obs: StageObservation) -> dict:
    """JSON-able dict for one stage observation (shard → server pipe)."""
    return {
        "stage_id": obs.stage_id,
        "platform": obs.platform,
        "duration_s": obs.duration_s,
        "known_seconds": obs.known_seconds,
        "vectorize": bool(obs.vectorize),
        "operators": [
            {"platform": o.platform, "op_kind": o.op_kind, "work": o.work,
             "cin": o.cin, "cout": o.cout}
            for o in obs.operators],
    }


def observation_from_json(doc: Mapping) -> StageObservation:
    """Inverse of :func:`observation_to_json`."""
    operators = [
        OperatorObservation(str(o["platform"]), str(o["op_kind"]),
                            float(o["work"]), float(o["cin"]),
                            float(o["cout"]))
        for o in doc.get("operators", ())]
    return StageObservation(
        str(doc["stage_id"]), str(doc["platform"]),
        float(doc["duration_s"]), float(doc["known_seconds"]),
        operators, vectorize=bool(doc.get("vectorize", False)))


# -------------------------------------------------------------------- corpus
class CalibrationCorpus:
    """Bounded per-(platform, op-kind, cardinality-band) sample store.

    Each bucket is a ``deque(maxlen=per_bucket)``: a hot workload keeps
    refreshing its own bucket without evicting rarer regimes, and the
    total footprint is bounded by ``per_bucket * live buckets``.  The
    ``vectorize`` flag is part of the key — the batch engines amortize
    per-record interpreter cost, so the two modes are different cost
    regimes that must never share a bucket.
    """

    def __init__(self, per_bucket: int = 32) -> None:
        if per_bucket < 1:
            raise ValueError(f"per_bucket must be >= 1, got {per_bucket}")
        self.per_bucket = per_bucket
        self._buckets: dict[tuple, deque[StageObservation]] = {}

    @staticmethod
    def bucket_key(obs: StageObservation) -> tuple:
        """Stratification key: the stage's dominant (largest-input)
        operator decides which regime the sample belongs to."""
        dominant = max(obs.operators,
                       key=lambda o: (o.cin, o.cout, o.op_kind))
        return (obs.platform, dominant.op_kind,
                volume_band(max(dominant.cin, 1.0)), bool(obs.vectorize))

    def add(self, obs: StageObservation) -> bool:
        """Ingest one observation; returns whether it was kept.

        Conversion-only stages (no operator observations) carry nothing
        learnable — their metered seconds are already ``known`` to the
        model — so they are dropped here rather than diluting the fit.
        """
        if not obs.operators:
            return False
        key = self.bucket_key(obs)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = deque(maxlen=self.per_bucket)
        bucket.append(obs)
        return True

    def samples(self, vectorize: bool | None = None
                ) -> list[StageObservation]:
        """All retained samples (optionally one vectorize regime only),
        in deterministic bucket order."""
        out: list[StageObservation] = []
        for key in sorted(self._buckets):
            if vectorize is not None and key[3] is not bool(vectorize):
                continue
            out.extend(self._buckets[key])
        return out

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)


# ---------------------------------------------------------------- calibrator
class CostCalibrator:
    """Accumulates production observations and re-fits the cost model.

    Args:
        cluster: Supplies per-platform unit costs for prediction/fitting.
        publish: Callback receiving the merged parameter dict on refit
            (``RheemContext.publish_cost_params`` on the thread backend,
            the job server's broadcast on the process backend).  Called
            *outside* the corpus lock.
        vectorize: The cost regime this calibrator fits.  Observations
            from the other regime are counted and dropped — blending the
            per-record and batch regimes into one fit poisons both.
        initial_params: The currently published parameters (drift is
            measured against these until the first refit).
        min_samples: Sample-count refit trigger.
        drift_threshold: Observed-vs-predicted relative-error EWMA level
            that triggers an early refit (with at least
            ``drift_min_samples`` fresh samples).
        population_size / generations / elite / seed: GA budget — kept
            deliberately small; refits run on the server's drain thread,
            off the job hot path, but still share the process.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        publish: Callable[[dict[str, OperatorCostParams]], None],
        *,
        vectorize: bool = False,
        initial_params: Mapping[str, OperatorCostParams] | None = None,
        min_samples: int = 24,
        drift_threshold: float = 0.35,
        drift_min_samples: int = 6,
        per_bucket: int = 32,
        population_size: int = 24,
        generations: int = 40,
        elite: int = 2,
        seed: int = 7,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster
        self.publish = publish
        self.vectorize = bool(vectorize)
        self.min_samples = int(min_samples)
        self.drift_threshold = float(drift_threshold)
        self.drift_min_samples = int(drift_min_samples)
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.elite = int(elite)
        self.seed = int(seed)
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.corpus = CalibrationCorpus(per_bucket)
        # Rank 18 in the lock registry: below context.publish (20), so a
        # refit may publish while other threads keep observing; publish
        # itself runs with the corpus lock RELEASED (the process-backend
        # broadcast takes server.pool, rank 12).
        self._lock = OrderedLock("calibration.corpus", metrics)
        self.params: dict[str, OperatorCostParams] = dict(initial_params or {})
        self._pending = 0
        self._drift = 0.0
        self._refits = 0
        self._fitting = False

    # ------------------------------------------------------------ ingestion
    def observe(self, observations: Iterable[StageObservation]) -> bool:
        """Ingest committed stage observations; refit when a trigger fires.

        Returns ``True`` when a refit ran (and was published).  Safe to
        call from multiple threads; at most one refit is in flight.
        """
        due = False
        samples: list[StageObservation] = []
        with self._lock:
            ingested = 0
            skipped = 0
            for obs in observations:
                if bool(obs.vectorize) is not self.vectorize:
                    skipped += 1
                    continue
                if not self.corpus.add(obs):
                    continue
                ingested += 1
                rel = self._relative_error(obs, self.params)
                self._drift = 0.8 * self._drift + 0.2 * rel
            if ingested:
                self._pending += ingested
            if self.metrics is not None:
                if ingested:
                    self.metrics.counter("calibration.samples").inc(ingested)
                    self.metrics.gauge("calibration.drift").set(self._drift)
                    self.metrics.gauge("calibration.corpus_size").set(
                        len(self.corpus))
                if skipped:
                    self.metrics.counter(
                        "calibration.skipped_regime").inc(skipped)
            due = (not self._fitting
                   and (self._pending >= self.min_samples
                        or (self._drift >= self.drift_threshold
                            and self._pending >= self.drift_min_samples)))
            if due:
                self._fitting = True
                self._pending = 0
                samples = self.corpus.samples(vectorize=self.vectorize)
        if not due:
            return False
        try:
            return self._refit(samples) is not None
        finally:
            with self._lock:
                self._fitting = False

    def _relative_error(self, obs: StageObservation,
                        params: Mapping[str, OperatorCostParams]) -> float:
        predicted = predict_stage_with_defaults(obs, params, self.cluster)
        observed = obs.duration_s
        scale = max(abs(observed), abs(predicted), 1e-9)
        return abs(observed - predicted) / scale

    # ---------------------------------------------------------------- refit
    def _refit(self, samples: list[StageObservation]):
        """Fit the GA on ``samples`` and publish the merged parameters.

        Runs with the corpus lock released: observation ingestion keeps
        flowing while the GA grinds, and the publish callback is free to
        take lower-ranked locks (the shard-pool broadcast).
        """
        if not samples:
            return None
        start = time.perf_counter()
        with self.tracer.span("calibration.refit", samples=len(samples),
                              refit=self._refits + 1):
            learner = GeneticCostLearner(self.cluster, samples,
                                         seed=self.seed, metrics=self.metrics)
            result = learner.fit(population_size=self.population_size,
                                 generations=self.generations,
                                 elite=self.elite)
        # Merge over the previous belief: keys the corpus never observed
        # keep their prior values instead of silently reverting.
        merged = dict(self.params)
        merged.update(result.params)
        self.publish(merged)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.params = merged
            self._refits += 1
            # Re-seed the drift EWMA under the published parameters so
            # the gauge shows convergence, not stale pre-fit error.
            self._drift = sum(self._relative_error(o, merged)
                              for o in samples) / len(samples)
            drift = self._drift
        if self.metrics is not None:
            self.metrics.counter("calibration.refits").inc()
            self.metrics.histogram("calibration.refit_seconds").observe(
                elapsed)
            self.metrics.gauge("calibration.drift").set(drift)
            self.metrics.gauge("calibration.fit_loss").set(result.loss)
        return result

    # ------------------------------------------------------------- plumbing
    def stats(self) -> dict:
        """A consistent snapshot of the calibrator's state (for tests and
        the server's status endpoint)."""
        with self._lock:
            return {
                "pending": self._pending,
                "drift": self._drift,
                "refits": self._refits,
                "corpus_size": len(self.corpus),
                "buckets": self.corpus.bucket_count,
            }
