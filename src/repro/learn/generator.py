"""The execution-log generator (Section 4.5 of the paper).

The paper observes that most data analytic tasks follow one of three
topologies — *pipeline* (batch), *iterative* (ML) and *merge* (SPJA) — and
generates Rheem plans over those topologies with varying UDF complexity,
selectivities, input sizes and data types, executes them, and logs stage
runtimes.  This module does the same against the simulated platforms: each
generated task runs forced on each single platform (so every
(platform, operator-kind) pair is observed) and the monitors' stage
observations form the training corpus.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..core.context import RheemContext
from ..core.monitor import StageObservation
from ..core.optimizer import OptimizationError
from ..core.udf import Udf
from ..simulation.cluster import SimulatedOutOfMemory

TOPOLOGIES = ("pipeline", "iterative", "merge")

#: Platform sets each generated task is forced onto.
_FORCED = (
    {"pystreams"},
    {"sparklite"},
    {"flinklite"},
    {"pgres", "pystreams"},
)


@dataclass
class GeneratorConfig:
    """Knobs of the log generator."""

    sizes: tuple[int, ...] = (200, 1000)
    sim_factors: tuple[float, ...] = (100.0, 20_000.0)
    selectivities: tuple[float, ...] = (0.1, 0.9)
    udf_weights: tuple[float, ...] = (1.0, 4.0)
    iterations: tuple[int, ...] = (5,)
    seed: int = 11


@dataclass
class LogGenerator:
    """Generates plans, executes them, and collects stage observations."""

    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def generate(self) -> list[StageObservation]:
        """Run the full matrix of (topology x configuration x platform)."""
        records: list[StageObservation] = []
        counter = itertools.count(1)
        cfg = self.config
        combos = itertools.product(
            TOPOLOGIES, cfg.sizes, cfg.sim_factors,
            cfg.selectivities, cfg.udf_weights)
        for topology, size, sim_factor, selectivity, weight in combos:
            for forced in _FORCED:
                ctx = RheemContext(config={"seed": cfg.seed})
                plan = self._build(ctx, topology, size, sim_factor,
                                   selectivity, weight, next(counter))
                try:
                    result = ctx.execute(
                        plan, allowed_platforms=set(forced) | {"driver"})
                except (OptimizationError, SimulatedOutOfMemory):
                    continue
                records.extend(result.monitor.stage_observations)
        return records

    # ------------------------------------------------------------ builders
    def _build(self, ctx: RheemContext, topology: str, size: int,
               sim_factor: float, selectivity: float, weight: float,
               tag: int):
        rng = random.Random(f"{self.config.seed}|{topology}|{size}|{tag}")
        lines = [f"{i},{rng.randrange(100)}" for i in range(size)]
        path = f"hdfs://gen/{topology}-{tag}.csv"
        ctx.vfs.write(path, lines, sim_factor=sim_factor, bytes_per_record=80)

        def parse(line: str):
            key, value = line.split(",")
            return (int(key), int(value))

        heavy = Udf(lambda t: (t[0], t[1] * 2), cpu_weight=weight,
                    name="heavy-map")
        keep = Udf(lambda t: t[1] < 100 * selectivity,
                   selectivity=selectivity, name="gen-filter")

        if topology == "pipeline":
            dq = (ctx.read_text_file(path).map(parse, name="gen-parse")
                  .map(heavy).filter(keep).distinct(key=lambda t: t[0])
                  .sort(key=lambda t: t[1]))
            return dq.to_plan()
        if topology == "iterative":
            data = ctx.read_text_file(path).map(parse, name="gen-parse").cache()
            state = ctx.load_collection([(0, 0)], bytes_per_record=16)

            def body(s, inv):
                sample = inv.sample(size=8, method="random_jump",
                                    broadcasts=[s])
                mapped = sample.map(heavy)
                return mapped.reduce(lambda a, b: (a[0] + b[0], a[1] + b[1]))

            out = state.repeat(self.config.iterations[0], body,
                               invariants=[data])
            return out.to_plan()
        if topology == "merge":
            left = ctx.read_text_file(path).map(parse, name="gen-parse-l")
            right = (ctx.load_collection(
                [(k, f"v{k}") for k in range(100)], bytes_per_record=20)
                .filter(keep_right := Udf(lambda t: True, selectivity=1.0,
                                          name="gen-keep")))
            joined = left.join(right, lambda t: t[0] % 100, lambda t: t[0],
                               selectivity=1.0 / 100)
            dq = (joined.map(lambda p: (p[1][0], 1), name="gen-project")
                  .reduce_by_key(lambda t: t[0],
                                 lambda a, b: (a[0], a[1] + b[1])))
            return dq.to_plan()
        raise ValueError(f"unknown topology {topology!r}")
