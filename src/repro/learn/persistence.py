"""Saving and loading learned cost-model parameters.

The paper separates cost *functions* from cost-model *parameters* so "the
optimizer [is] portable across different deployments": fit once on a
deployment's logs, persist the parameters, and hand them to every future
:class:`~repro.core.context.RheemContext` on that deployment.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.cost import OperatorCostParams


def params_to_json(params: dict[str, OperatorCostParams]) -> str:
    """Serialize learned parameters to a JSON string."""
    doc = {key: {"alpha": p.alpha, "beta": p.beta, "delta": p.delta}
           for key, p in sorted(params.items())}
    return json.dumps(doc, indent=2)


def params_from_json(text: str) -> dict[str, OperatorCostParams]:
    """Parse parameters serialized by :func:`params_to_json`.

    Raises:
        ValueError: On malformed documents.
    """
    try:
        doc = json.loads(text)
        return {key: OperatorCostParams(entry["alpha"], entry["beta"],
                                        entry["delta"])
                for key, entry in doc.items()}
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(f"malformed cost-parameter document: {exc}") from exc


def save_params(params: dict[str, OperatorCostParams],
                path: str | Path) -> None:
    """Write learned parameters to a file."""
    Path(path).write_text(params_to_json(params))


def load_params(path: str | Path) -> dict[str, OperatorCostParams]:
    """Read learned parameters from a file."""
    return params_from_json(Path(path).read_text())
