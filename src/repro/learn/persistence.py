"""Saving and loading learned cost-model parameters.

The paper separates cost *functions* from cost-model *parameters* so "the
optimizer [is] portable across different deployments": fit once on a
deployment's logs, persist the parameters, and hand them to every future
:class:`~repro.core.context.RheemContext` on that deployment.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from ..core.cost import OperatorCostParams


def params_to_json(params: dict[str, OperatorCostParams]) -> str:
    """Serialize learned parameters to a JSON string."""
    doc = {key: {"alpha": p.alpha, "beta": p.beta, "delta": p.delta}
           for key, p in sorted(params.items())}
    return json.dumps(doc, indent=2)


def _validated_field(key: str, entry: dict, name: str) -> float:
    """One finite, non-negative numeric parameter field, or ValueError.

    A persisted file is the trust boundary between deployments: NaN or
    ±inf here poisons every cost comparison (NaN compares false against
    everything, so plan choice degrades to declaration order), negatives
    make "cheaper" mean "more records", and a bool would silently
    truncate.  Each rejection names the offending key so a corrupt file
    is fixable without a debugger.
    """
    if name not in entry:
        raise ValueError(
            f"malformed cost-parameter document: {key!r} is missing {name!r}")
    value = entry[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"malformed cost-parameter document: {key!r}.{name} must be a "
            f"number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(
            f"malformed cost-parameter document: {key!r}.{name} must be "
            f"finite, got {value!r}")
    if value < 0:
        raise ValueError(
            f"malformed cost-parameter document: {key!r}.{name} must be "
            f"non-negative, got {value!r}")
    return value


def params_from_json(text: str) -> dict[str, OperatorCostParams]:
    """Parse parameters serialized by :func:`params_to_json`.

    Raises:
        ValueError: On malformed documents — non-mapping structure or
            any alpha/beta/delta that is missing, non-numeric, NaN,
            infinite or negative; the message names the offending key.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed cost-parameter document: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("malformed cost-parameter document: expected a "
                         f"mapping, got {type(doc).__name__}")
    params: dict[str, OperatorCostParams] = {}
    for key, entry in doc.items():
        if not isinstance(entry, dict):
            raise ValueError(
                f"malformed cost-parameter document: entry {key!r} must be "
                f"a mapping, got {type(entry).__name__}")
        params[key] = OperatorCostParams(
            _validated_field(key, entry, "alpha"),
            _validated_field(key, entry, "beta"),
            _validated_field(key, entry, "delta"))
    return params


def save_params(params: dict[str, OperatorCostParams],
                path: str | Path) -> None:
    """Write learned parameters to a file."""
    Path(path).write_text(params_to_json(params))


def load_params(path: str | Path) -> dict[str, OperatorCostParams]:
    """Read learned parameters from a file."""
    return params_from_json(Path(path).read_text())
