"""Genetic-algorithm cost-model fitting (Section 4.5 of the paper).

Execution logs only record *stage* runtimes, never isolated operator times
(isolated profiling is unrealistic when engines pipeline operators).  The
learner therefore solves ``x_min = argmin_x loss(t, sum_i f_i(x, C_i))``
over the per-(platform, operator-kind) parameters ``alpha`` (work per input
record), ``beta`` (work per output record) and ``delta`` (fixed seconds),
with a genetic algorithm — which, as the paper notes, imposes almost no
restrictions on the loss function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.cost import OperatorCostParams
from ..core.monitor import StageObservation
from ..simulation.cluster import VirtualCluster
from ..trace import MetricsRegistry
from .loss import corpus_loss


def predict_stage(
    record: StageObservation,
    params: dict[str, OperatorCostParams],
    cluster: VirtualCluster,
) -> float:
    """Model prediction of one stage's runtime from its observations."""
    total = record.known_seconds
    for obs in record.operators:
        p = params.get(f"{obs.platform}.{obs.op_kind}")
        if p is None:
            continue
        profile = cluster.profile(obs.platform)
        units = p.alpha * obs.cin + p.beta * obs.cout
        total += p.delta + profile.cpu_seconds(units, obs.work)
    return total


@dataclass
class FitResult:
    """Outcome of a learning run."""

    params: dict[str, OperatorCostParams]
    loss: float
    generations: int
    history: list[float]


class GeneticCostLearner:
    """Fits operator cost parameters to stage-level execution logs.

    Args:
        cluster: Supplies unit costs (tuple cost / parallelism per platform);
            only the alpha/beta/delta shape parameters are learned, matching
            the paper's split between hardware config and cost functions.
        records: Stage observations (e.g. from the log generator).
        seed: RNG seed for reproducible fits.
        metrics: Optional registry receiving fit counters/gauges (shared
            with the monitor and the REST service).
    """

    ALPHA_RANGE = (0.0, 8.0)
    BETA_RANGE = (0.0, 40.0)  # collect-style operators are record-expensive
    DELTA_RANGE = (0.0, 0.5)

    def __init__(self, cluster: VirtualCluster,
                 records: Sequence[StageObservation],
                 seed: int = 7,
                 metrics: MetricsRegistry | None = None) -> None:
        self.cluster = cluster
        self.records = list(records)
        self.metrics = metrics
        self.rng = random.Random(seed)
        keys = {f"{o.platform}.{o.op_kind}"
                for r in self.records for o in r.operators}
        self.keys = sorted(keys)

    # ------------------------------------------------------------ encoding
    def _decode(self, genome: list[float]) -> dict[str, OperatorCostParams]:
        params = {}
        for i, key in enumerate(self.keys):
            alpha, beta, delta = genome[3 * i: 3 * i + 3]
            params[key] = OperatorCostParams(alpha, beta, delta)
        return params

    def _random_genome(self) -> list[float]:
        genome: list[float] = []
        for __ in self.keys:
            genome.append(self.rng.uniform(*self.ALPHA_RANGE))
            genome.append(self.rng.uniform(*self.BETA_RANGE))
            genome.append(self.rng.uniform(*self.DELTA_RANGE))
        return genome

    def _fitness(self, genome: list[float]) -> float:
        params = self._decode(genome)
        return corpus_loss(
            self.records,
            lambda r: predict_stage(r, params, self.cluster))

    # ----------------------------------------------------------- operators
    def _tournament(self, population, fitnesses, k: int = 3) -> list[float]:
        best = None
        for __ in range(k):
            i = self.rng.randrange(len(population))
            if best is None or fitnesses[i] < fitnesses[best]:
                best = i
        return list(population[best])

    def _crossover(self, a: list[float], b: list[float]) -> list[float]:
        """Blend crossover: each gene a random mix of the parents."""
        child = []
        for x, y in zip(a, b):
            w = self.rng.random()
            child.append(w * x + (1 - w) * y)
        return child

    def _mutate(self, genome: list[float], rate: float = 0.15) -> None:
        bounds = [self.ALPHA_RANGE, self.BETA_RANGE, self.DELTA_RANGE]
        for i in range(len(genome)):
            if self.rng.random() < rate:
                lo, hi = bounds[i % 3]
                span = hi - lo
                genome[i] = min(hi, max(lo, genome[i] + self.rng.gauss(
                    0.0, 0.15 * span)))

    # ---------------------------------------------------------------- fit
    def fit(self, population_size: int = 60, generations: int = 120,
            elite: int = 4) -> FitResult:
        """Run the GA; returns the best parameters found."""
        if not self.records:
            raise ValueError("cannot fit a cost model to an empty log")
        population = [self._random_genome() for __ in range(population_size)]
        # Seed one individual at the engineering prior (the uniform kind
        # defaults) so the fit can only improve on the hand-written model.
        from ..core.cost import kind_params

        prior = []
        for key in self.keys:
            p = kind_params(key.split(".", 1)[1])
            prior.extend([min(p.alpha, self.ALPHA_RANGE[1]),
                          min(p.beta, self.BETA_RANGE[1]),
                          min(p.delta, self.DELTA_RANGE[1])])
        population[0] = prior
        fitnesses = [self._fitness(g) for g in population]
        history: list[float] = []
        for __ in range(generations):
            ranked = sorted(range(len(population)), key=lambda i: fitnesses[i])
            next_pop = [list(population[i]) for i in ranked[:elite]]
            while len(next_pop) < population_size:
                a = self._tournament(population, fitnesses)
                b = self._tournament(population, fitnesses)
                child = self._crossover(a, b)
                self._mutate(child)
                next_pop.append(child)
            population = next_pop
            fitnesses = [self._fitness(g) for g in population]
            history.append(min(fitnesses))
        best_idx = min(range(len(population)), key=lambda i: fitnesses[i])
        if self.metrics is not None:
            self.metrics.counter("learn.fits").inc()
            self.metrics.counter("learn.generations").inc(generations)
            self.metrics.counter("learn.observations").inc(len(self.records))
            self.metrics.gauge("learn.best_loss").set(fitnesses[best_idx])
        return FitResult(
            params=self._decode(population[best_idx]),
            loss=fitnesses[best_idx],
            generations=generations,
            history=history,
        )
