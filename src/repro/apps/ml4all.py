"""ML4all: the gradient-descent abstraction on top of Rheem.

ML4all (Section 2.2 of the paper) abstracts most ML tasks into three phases
built from seven logical operators:

* preparation — **Transform** (parse/normalize), **Stage** (initialize);
* processing — **Sample**, **Compute** (gradients), **Update** (weights);
* convergence — **Loop** / **Converge**.

All seven map onto Rheem operators; the plugged-in IO-efficient samplers
(``random_jump`` / ``shuffled_partition``) are what lets the processing
phase run each iteration without rescanning the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.context import DataQuanta, RheemContext
from ..core.executor import ExecutionResult
from ..workloads.points import parse_point

Vector = Sequence[float]


@dataclass
class Algorithm:
    """One gradient-style algorithm in ML4all's seven-operator vocabulary.

    Attributes:
        transform: Raw record -> data point (the Transform operator).
        stage: Initial model state (the Stage operator).
        compute: ``(point, weights) -> gradient contribution``.
        combine: Associative combiner of gradient contributions.
        update: ``(combined gradient, weights) -> new weights``.
        converge: Optional ``(old, new) -> bool`` early-stop test; ``None``
            runs the fixed iteration count.
    """

    transform: Callable
    stage: Callable[[], Vector]
    compute: Callable
    combine: Callable
    update: Callable
    converge: Callable[[Vector, Vector], bool] | None = None


def sgd_hinge(dimensions: int, learning_rate: float = 0.05,
              regularizer: float = 1e-4) -> Algorithm:
    """Stochastic gradient descent on hinge loss (linear SVM)."""

    def compute(point, weights):
        label, *features = point
        w = weights[0]
        margin = label * sum(wi * xi for wi, xi in zip(w, features))
        if margin >= 1.0:
            return tuple(regularizer * wi for wi in w) + (1,)
        grad = tuple(regularizer * wi - label * xi
                     for wi, xi in zip(w, features))
        return grad + (1,)

    def combine(a, b):
        return tuple(x + y for x, y in zip(a[:-1], b[:-1])) + (a[-1] + b[-1],)

    def update(gradient, weights):
        w = weights[0]
        count = max(gradient[-1], 1)
        return tuple(wi - learning_rate * gi / count
                     for wi, gi in zip(w, gradient[:-1]))

    return Algorithm(
        transform=parse_point,
        stage=lambda: tuple(0.0 for __ in range(dimensions)),
        compute=compute,
        combine=combine,
        update=update,
    )


def logistic_sgd(dimensions: int, learning_rate: float = 0.1) -> Algorithm:
    """Stochastic gradient descent on logistic loss."""
    import math

    def compute(point, weights):
        label, *features = point
        w = weights[0]
        margin = label * sum(wi * xi for wi, xi in zip(w, features))
        factor = -label / (1.0 + math.exp(min(margin, 50.0)))
        return tuple(factor * xi for xi in features) + (1,)

    def combine(a, b):
        return tuple(x + y for x, y in zip(a[:-1], b[:-1])) + (a[-1] + b[-1],)

    def update(gradient, weights):
        w = weights[0]
        count = max(gradient[-1], 1)
        return tuple(wi - learning_rate * gi / count
                     for wi, gi in zip(w, gradient[:-1]))

    return Algorithm(
        transform=parse_point,
        stage=lambda: tuple(0.0 for __ in range(dimensions)),
        compute=compute,
        combine=combine,
        update=update,
    )


def kmeans(dimensions: int, k: int, seed: int = 13) -> Algorithm:
    """Mini-batch k-means in the same seven-operator vocabulary.

    The model state is the tuple of ``k`` centroids; Compute assigns each
    sampled point to its nearest centroid and emits per-cluster partial
    sums, Update recomputes the centroids (empty clusters keep theirs).
    """
    import random

    rng = random.Random(seed)

    def stage():
        return tuple(tuple(rng.uniform(-1.0, 1.0) for __ in range(dimensions))
                     for __ in range(k))

    def compute(point, centroids_state):
        centroids = centroids_state[0]
        *features, = point[1:] if len(point) > dimensions else point
        best = min(range(k), key=lambda c: sum(
            (fi - ci) ** 2 for fi, ci in zip(features, centroids[c])))
        sums = [(0,) + (0.0,) * dimensions] * k
        sums[best] = (1,) + tuple(features)
        return tuple(sums)

    def combine(a, b):
        return tuple(
            (ca[0] + cb[0],) + tuple(x + y for x, y in zip(ca[1:], cb[1:]))
            for ca, cb in zip(a, b))

    def update(sums, centroids_state):
        centroids = centroids_state[0]
        new = []
        for c in range(k):
            count = sums[c][0]
            if count == 0:
                new.append(centroids[c])
            else:
                new.append(tuple(x / count for x in sums[c][1:]))
        return tuple(new)

    return Algorithm(
        transform=parse_point,
        stage=stage,
        compute=compute,
        combine=combine,
        update=update,
    )


class ML4all:
    """Trains gradient-style models through Rheem plans."""

    def __init__(self, ctx: RheemContext) -> None:
        self.ctx = ctx

    def training_quanta(
        self,
        data_path: str,
        algorithm: Algorithm,
        iterations: int = 100,
        sample_size: int = 10,
        sample_method: str = "random_jump",
    ) -> DataQuanta:
        """Build the training dataflow (Figure 3(a)'s SGD plan shape)."""
        points = (self.ctx.read_text_file(data_path)
                  .map(algorithm.transform, name="transform",
                       bytes_per_record=64)
                  .cache())
        weights = self.ctx.load_collection([algorithm.stage()],
                                           bytes_per_record=24)

        def body(w: DataQuanta, invariant_points: DataQuanta) -> DataQuanta:
            sampled = invariant_points.sample(
                size=sample_size, method=sample_method, broadcasts=[w])
            gradients = sampled.map(algorithm.compute, name="compute",
                                    broadcasts=[w])
            combined = gradients.reduce(algorithm.combine)
            return combined.map(algorithm.update, name="update",
                                broadcasts=[w])

        if algorithm.converge is None:
            return weights.repeat(iterations, body, invariants=[points])
        converge = algorithm.converge
        state: dict = {"prev": None}

        def condition(records: list) -> bool:
            new = records[0]
            old, state["prev"] = state["prev"], new
            return old is None or not converge(old, new)

        return weights.do_while(condition, body, invariants=[points],
                                expected=iterations,
                                max_iterations=iterations)

    def train(self, data_path: str, algorithm: Algorithm,
              iterations: int = 100, sample_size: int = 10,
              sample_method: str = "random_jump",
              **execute_kwargs) -> ExecutionResult:
        """Train and return the result (payload: ``[final_weights]``)."""
        quanta = self.training_quanta(data_path, algorithm, iterations,
                                      sample_size, sample_method)
        return quanta.execute(**execute_kwargs)
