"""BigDansing: rule-based big data cleaning on top of Rheem.

Users express a cleaning task with five logical operators (Section 2.1 of
the paper):

* **Scope** — projects each record to the attributes the rule touches;
* **Block** — groups records among which an error may occur;
* **Iterate** — enumerates candidate violating pairs;
* **Detect** — decides whether a candidate pair is a real violation;
* **GenFix** — proposes repairs for each violation.

These compile onto Rheem operators; for denial constraints built from
inequality predicates, Iterate+Detect become the plugged-in fast IEJoin
(one order of magnitude of Figure 2(a)'s win), with a naive
cartesian+filter route available as the SparkSQL-style fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.context import DataQuanta, RheemContext
from ..core.executor import ExecutionResult
from ..core.operators import InequalityCondition
from ..workloads.tax import parse_tax


@dataclass(frozen=True)
class Fix:
    """A proposed repair: set ``attribute`` of record ``rid`` to ``value``."""

    rid: int
    attribute: str
    value: Any


@dataclass
class Rule:
    """A data cleaning rule (denial constraint).

    Attributes:
        name: Rule identifier.
        scope: Projects a raw record to the attributes the rule needs.
        block: Optional equality blocking key: only record pairs sharing the
            key are candidates (``None`` compares across the whole dataset).
        conditions: Inequality predicates of the denial constraint, each
            over a pair ``(t1, t2)`` of scoped records.
        gen_fix: Produces repairs for one violating pair.
    """

    name: str
    scope: Callable[[Any], dict]
    conditions: list[InequalityCondition]
    block: Callable[[dict], Any] | None = None
    gen_fix: Callable[[dict, dict], list[Fix]] = field(
        default=lambda t1, t2: [])


def tax_rule() -> Rule:
    """The paper's Tax denial constraint:
    ``NOT(t1.salary > t2.salary AND t1.tax < t2.tax)``."""

    def scope(record: Any) -> dict:
        if isinstance(record, str):
            record = parse_tax(record)
        return {"rid": record["rid"], "salary": record["salary"],
                "tax": record["tax"]}

    def gen_fix(t1: dict, t2: dict) -> list[Fix]:
        # Repair heuristic: raise the lower tax to the proportional amount.
        suggested = round(t1["salary"] * t2["tax"] / max(t2["salary"], 1e-9), 2)
        return [Fix(t1["rid"], "tax", suggested)]

    return Rule(
        name="tax-dc",
        scope=scope,
        conditions=[
            InequalityCondition(lambda t: t["salary"], ">",
                                lambda t: t["salary"]),
            InequalityCondition(lambda t: t["tax"], "<",
                                lambda t: t["tax"]),
        ],
        gen_fix=gen_fix,
    )


class BigDansing:
    """The cleaning system: compiles rules onto Rheem plans and runs them."""

    def __init__(self, ctx: RheemContext) -> None:
        self.ctx = ctx

    # -------------------------------------------------------------- plans
    def violations_quanta(self, data: DataQuanta, rule: Rule,
                          method: str = "iejoin") -> DataQuanta:
        """Build the violation-detection dataflow (pairs of scoped records).

        Args:
            data: The dirty dataset.
            method: ``"iejoin"`` uses the fast inequality join;
                ``"cartesian"`` is the naive enumerate-all-pairs route.
        """
        scoped = data.map(rule.scope, name=f"scope[{rule.name}]",
                          bytes_per_record=40)
        if method == "iejoin":
            pairs = scoped.ie_join(scoped, rule.conditions,
                                   selectivity=1e-4)
        elif method == "cartesian":
            pairs = scoped.cartesian(scoped)
            pairs = pairs.filter(
                lambda p: all(c.holds(p[0], p[1]) for c in rule.conditions),
                name=f"detect[{rule.name}]")
        else:
            raise ValueError(f"unknown detection method {method!r}")
        if rule.block is not None:
            block = rule.block
            pairs = pairs.filter(lambda p: block(p[0]) == block(p[1]),
                                 name=f"block[{rule.name}]")
        return pairs

    def detect(self, data: DataQuanta, rule: Rule, method: str = "iejoin",
               **execute_kwargs) -> ExecutionResult:
        """Run detection; the result payload is the violating pairs."""
        return self.violations_quanta(data, rule, method).execute(
            **execute_kwargs)

    def repair(self, data: DataQuanta, rule: Rule, method: str = "iejoin",
               **execute_kwargs) -> ExecutionResult:
        """Run detection + GenFix; the result payload is deduplicated
        :class:`Fix` proposals."""
        pairs = self.violations_quanta(data, rule, method)
        fixes = pairs.flat_map(
            lambda p: rule.gen_fix(p[0], p[1]),
            name=f"genfix[{rule.name}]", bytes_per_record=24)
        return fixes.distinct(key=lambda f: (f.rid, f.attribute)).execute(
            **execute_kwargs)
