"""Applications built on top of the cross-platform core (Section 2)."""

from .bigdansing import BigDansing, Fix, Rule, tax_rule
from .dataciv import (
    Q5Outcome,
    find_similar_columns,
    q5_quanta,
    run_all_into_pgres,
    run_all_on_spark,
    run_polystore,
)
from .ml4all import Algorithm, ML4all, kmeans, logistic_sgd, sgd_hinge
from .xdb import XdbQuery, crocopr, crocopr_quanta
from .xdb_sql import SqlError, run_sql, sql_query

__all__ = [
    "BigDansing",
    "Fix",
    "Rule",
    "tax_rule",
    "Q5Outcome",
    "find_similar_columns",
    "q5_quanta",
    "run_all_into_pgres",
    "run_all_on_spark",
    "run_polystore",
    "Algorithm",
    "ML4all",
    "kmeans",
    "logistic_sgd",
    "sgd_hinge",
    "XdbQuery",
    "crocopr",
    "crocopr_quanta",
    "SqlError",
    "run_sql",
    "sql_query",
]
