"""A small declarative (SQL) front end for xDB.

The paper's xDB "provides a declarative language to compose data analytic
tasks, while its optimizer produces a plan to be executed in Rheem".  This
module implements the query subset the evaluation workloads need::

    SELECT nationkey, SUM(acctbal) FROM customer
    WHERE acctbal >= 1000 AND nationkey <= 10
    GROUP BY nationkey

    SELECT c.name FROM customer c JOIN nation n ON c.nationkey = n.nationkey
    WHERE n.regionkey = 2

Supported: projections, ``SUM`` aggregates with ``GROUP BY``, inner joins
on column equality, and conjunctive range/equality predicates.  The parsed
query compiles onto Rheem operators via :class:`repro.apps.xdb.XdbQuery`;
the cross-platform optimizer decides where each piece runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.context import RheemContext
from ..core.executor import ExecutionResult
from .xdb import XdbQuery


class SqlError(ValueError):
    """Raised on queries outside the supported subset."""


_TOKEN = re.compile(r"""
    \s*(
        [A-Za-z_][A-Za-z0-9_.]* |   # identifiers (possibly qualified)
        -?\d+\.?\d* |               # numbers
        '[^']*' |                   # strings
        [(),=] | >= | <= | > | <
    )
""", re.VERBOSE)


def _tokenize(sql: str) -> list[str]:
    tokens, pos = [], 0
    sql = sql.strip().rstrip(";")
    while pos < len(sql):
        match = _TOKEN.match(sql, pos)
        if not match:
            raise SqlError(f"cannot tokenize at: {sql[pos:pos + 20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


@dataclass
class _Query:
    select: list[str] = field(default_factory=list)
    aggregate: tuple[str, str] | None = None  # (SUM column, group column)
    tables: list[tuple[str, str]] = field(default_factory=list)  # (name, alias)
    joins: list[tuple[str, str]] = field(default_factory=list)   # (left, right)
    predicates: list[tuple[str, str, object]] = field(default_factory=list)
    group_by: str | None = None


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self, keyword: str | None = None) -> str:
        """Consume the next token; with ``keyword``, require that literal."""
        token = self.peek()
        if token is None:
            raise SqlError(f"unexpected end of query, expected {keyword}")
        if keyword is not None and token.upper() != keyword:
            raise SqlError(f"expected {keyword}, got {token!r}")
        self.pos += 1
        return token

    def take(self, what: str) -> str:
        """Consume any token (``what`` only labels error messages)."""
        token = self.peek()
        if token is None:
            raise SqlError(f"unexpected end of query, expected {what}")
        self.pos += 1
        return token

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.upper() == keyword:
            self.pos += 1
            return True
        return False

    # ------------------------------------------------------------- grammar
    def parse(self) -> _Query:
        q = _Query()
        self.next("SELECT")
        while True:
            token = self.take("select item")
            if token.upper() == "SUM":
                self.next("(")
                column = self.take("aggregate column")
                self.next(")")
                q.aggregate = (column, "")
            else:
                q.select.append(token)
            if not self.accept(","):
                break
        self.next("FROM")
        q.tables.append(self._table())
        while self.accept("JOIN"):
            q.tables.append(self._table())
            self.next("ON")
            left = self.take("join column")
            self.next("=")
            right = self.take("join column")
            q.joins.append((left, right))
        if self.accept("WHERE"):
            while True:
                column = self.take("predicate column")
                op = self.take("comparison")
                if op not in ("=", ">=", "<=", ">", "<"):
                    raise SqlError(f"unsupported comparison {op!r}")
                q.predicates.append((column, op, _value(self.take("value"))))
                if not self.accept("AND"):
                    break
        if self.accept("GROUP"):
            self.next("BY")
            q.group_by = self.take("group column")
        if self.peek() is not None:
            raise SqlError(f"trailing tokens from {self.peek()!r}")
        return q

    def _table(self) -> tuple[str, str]:
        name = self.take("table name")
        alias = name
        token = self.peek()
        if token is not None and token.upper() not in (
                "JOIN", "WHERE", "GROUP", "ON") and token not in (",",):
            alias = self.next()
        return (name, alias)


def _value(token: str):
    if token.startswith("'"):
        return token[1:-1]
    return float(token) if "." in token else int(token)


def _column(qualified: str) -> str:
    """Strip a table/alias qualifier (rows merge into one dict on join)."""
    return qualified.split(".")[-1]


def parse_sql(sql: str) -> _Query:
    """Parse a query in the supported subset (exposed for tests)."""
    return _Parser(_tokenize(sql)).parse()


def sql_query(ctx: RheemContext, sql: str) -> XdbQuery:
    """Compile a SQL string into an :class:`XdbQuery` (not yet executed)."""
    q = parse_sql(sql)
    query = XdbQuery(ctx, q.tables[0][0])
    for (name, __alias), (left, right) in zip(q.tables[1:], q.joins):
        query = query.join(XdbQuery(ctx, name), _column(left),
                           _column(right))
    for column, op, value in q.predicates:
        col = _column(column)
        if op == "=":
            query = query.where(col, value, value)
        elif op in (">=", ">"):
            low = value if op == ">=" else value + _epsilon(value)
            query = query.where(col, low, None)
        else:
            high = value if op == "<=" else value - _epsilon(value)
            query = query.where(col, None, high)
    if q.group_by is not None:
        if q.aggregate is None:
            raise SqlError("GROUP BY requires a SUM(...) aggregate")
        agg_col = _column(q.aggregate[0])
        query = query.group_sum(_column(q.group_by),
                                lambda r, __c=agg_col: r[__c])
    elif q.select and q.select != ["*"]:
        query = query.select(*[_column(c) for c in q.select])
    return query


def _epsilon(value):
    return 1 if isinstance(value, int) else 1e-9


def run_sql(ctx: RheemContext, sql: str, **execute_kwargs) -> ExecutionResult:
    """Parse, compile and execute a SQL query through Rheem."""
    return sql_query(ctx, sql).run(**execute_kwargs)
