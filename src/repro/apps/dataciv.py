"""Data Civilizer's polystore workload: TPC-H Q5 across three stores.

The paper's Figure 2(d) experiment: LINEITEM and ORDERS live on HDFS,
CUSTOMER/SUPPLIER/REGION in Postgres, NATION on the local file system.
Rheem runs the join/groupby/orderby pipeline across the stores directly;
the "common practice" baselines either bulk-load everything into Postgres
first or dump everything to HDFS and use Spark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.batch import RecordBatch, pair_sum_reduce
from ..core.context import DataQuanta, RheemContext
from ..core.executor import ExecutionResult
from ..workloads.tpch import (
    ROW_BYTES,
    SF1_ROWS,
    TpchLite,
    parse_batch,
    parse_row,
)

#: Bandwidths used to charge the baselines' data migration (match the
#: conversion operators registered by the platforms).
PG_LOAD_MB_PER_S = 12.0
PG_EXPORT_MB_PER_S = 40.0
HDFS_WRITE_MB_PER_S = 1000.0


def _table_mb(table: str, sf: float) -> float:
    return SF1_ROWS[table] * sf * ROW_BYTES[table] / 1e6


SourceFactory = Callable[[RheemContext, str], DataQuanta]


def _pg_source(ctx: RheemContext, table: str) -> DataQuanta:
    return ctx.read_table(table)


def _hdfs_source(ctx: RheemContext, table: str) -> DataQuanta:
    return (ctx.read_text_file(f"hdfs://tpch/{table}.csv")
            .map(lambda line, __t=table: parse_row(__t, line),
                 name=f"parse-{table}", bytes_per_record=ROW_BYTES[table],
                 batch_udf=lambda b, __t=table: parse_batch(__t, b)))


def _local_source(ctx: RheemContext, table: str) -> DataQuanta:
    return (ctx.read_text_file(f"file://tpch/{table}.csv")
            .map(lambda line, __t=table: parse_row(__t, line),
                 name=f"parse-{table}", bytes_per_record=ROW_BYTES[table],
                 batch_udf=lambda b, __t=table: parse_batch(__t, b)))


#: Table -> source factory, per placement scenario.
PLACEMENTS: dict[str, dict[str, SourceFactory]] = {
    "polystore": {
        "lineitem": _hdfs_source, "orders": _hdfs_source,
        "nation": _local_source,
        "customer": _pg_source, "supplier": _pg_source, "region": _pg_source,
    },
    "all_pgres": {t: _pg_source for t in SF1_ROWS},
    "all_hdfs": {t: _hdfs_source for t in SF1_ROWS},
}


def q5_quanta(ctx: RheemContext, sf: float,
              placement: str = "polystore",
              sources: dict[str, SourceFactory] | None = None) -> DataQuanta:
    """Build TPC-H Q5 (revenue per nation, region ASIA, one order year).

    ``sources`` overrides the placement's table -> source factories (the
    throughput bench injects in-memory collection sources this way).
    """
    if sources is None:
        try:
            sources = PLACEMENTS[placement]
        except KeyError:
            raise ValueError(f"unknown placement {placement!r}; "
                             f"choose from {sorted(PLACEMENTS)}") from None

    def src(table: str) -> DataQuanta:
        return sources[table](ctx, table)

    n_customer = SF1_ROWS["customer"] * sf
    n_orders = SF1_ROWS["orders"] * sf
    n_supplier = SF1_ROWS["supplier"] * sf

    # Every step also declares its vectorized twin (``batch_udf`` /
    # ``*_key_column`` / ``batch_impl`` / ``batch_key``): record-wise
    # equivalent columnar kernels the engines use when the context is built
    # with ``vectorize`` on.  Plans and results are identical either way.
    region_asia = src("region").filter_range("name", "ASIA", "ASIA",
                                             selectivity=0.2)
    nation_asia = (src("nation")
                   .join(region_asia, lambda n: n["regionkey"],
                         lambda r: r["regionkey"], selectivity=0.2,
                         left_key_column="regionkey",
                         right_key_column="regionkey")
                   .map(lambda p: {"nationkey": p[0]["nationkey"],
                                   "nname": p[0]["name"]},
                        name="nation-cols", bytes_per_record=40,
                        batch_udf=lambda b: RecordBatch.from_columns(
                            ("nationkey", "nname"),
                            (b.left.col("nationkey"), b.left.col("name")))))
    cust_asia = (src("customer")
                 .join(nation_asia, lambda c: c["nationkey"],
                       lambda n: n["nationkey"], selectivity=1.0 / 25,
                       left_key_column="nationkey",
                       right_key_column="nationkey")
                 .map(lambda p: {"custkey": p[0]["custkey"],
                                 "cnationkey": p[0]["nationkey"],
                                 "nname": p[1]["nname"]},
                      name="cust-cols", bytes_per_record=48,
                      batch_udf=lambda b: RecordBatch.from_columns(
                          ("custkey", "cnationkey", "nname"),
                          (b.left.col("custkey"), b.left.col("nationkey"),
                           b.right.col("nname")))))
    orders_window = src("orders").filter_range(
        "orderyear", 1994, 1994, selectivity=1.0 / 3)
    orders_asia = (orders_window
                   .join(cust_asia, lambda o: o["custkey"],
                         lambda c: c["custkey"],
                         selectivity=1.0 / n_customer,
                         left_key_column="custkey",
                         right_key_column="custkey")
                   .map(lambda p: {"orderkey": p[0]["orderkey"],
                                   "cnationkey": p[1]["cnationkey"],
                                   "nname": p[1]["nname"]},
                        name="order-cols", bytes_per_record=48,
                        batch_udf=lambda b: RecordBatch.from_columns(
                            ("orderkey", "cnationkey", "nname"),
                            (b.left.col("orderkey"), b.right.col("cnationkey"),
                             b.right.col("nname")))))
    line_asia = (src("lineitem")
                 .join(orders_asia, lambda l: l["orderkey"],
                       lambda o: o["orderkey"], selectivity=1.0 / n_orders,
                       left_key_column="orderkey",
                       right_key_column="orderkey")
                 .map(lambda p: {"suppkey": p[0]["suppkey"],
                                 "revenue": p[0]["extendedprice"]
                                 * (1.0 - p[0]["discount"]),
                                 "cnationkey": p[1]["cnationkey"],
                                 "nname": p[1]["nname"]},
                      name="line-cols", bytes_per_record=56,
                      batch_udf=lambda b: RecordBatch.from_columns(
                          ("suppkey", "revenue", "cnationkey", "nname"),
                          (b.left.col("suppkey"),
                           np.asarray(b.left.col("extendedprice"))
                           * (1.0 - np.asarray(b.left.col("discount"))),
                           b.right.col("cnationkey"),
                           b.right.col("nname")))))
    with_supp = (line_asia
                 .join(src("supplier"), lambda l: l["suppkey"],
                       lambda s: s["suppkey"], selectivity=1.0 / n_supplier,
                       left_key_column="suppkey",
                       right_key_column="suppkey")
                 .filter(lambda p: p[0]["cnationkey"] == p[1]["nationkey"],
                         name="same-nation",
                         batch_udf=lambda b:
                         np.asarray(b.left.col("cnationkey"))
                         == np.asarray(b.right.col("nationkey")))
                 .map(lambda p: (p[0]["nname"], p[0]["revenue"]),
                      name="rev-pair", bytes_per_record=32,
                      batch_udf=lambda b: RecordBatch.from_tuple_columns(
                          (b.left.col("nname"), b.left.col("revenue")))))
    revenue = with_supp.reduce_by_key(lambda t: t[0],
                                      lambda a, b: (a[0], a[1] + b[1]),
                                      batch_impl=pair_sum_reduce(0, 1))
    return revenue.sort(key=lambda t: -t[1],
                        batch_key=lambda b: -np.asarray(b.col(1)))


@dataclass
class Q5Outcome:
    """Runtime (including any migration charge) + query answer."""

    runtime: float
    migration_s: float
    result: list
    raw: ExecutionResult


def run_polystore(ctx: RheemContext, sf: float, **kw) -> Q5Outcome:
    """Rheem over the three stores, no manual migration."""
    TpchLite(sf).place_for_q5(ctx)
    res = q5_quanta(ctx, sf, "polystore").execute(**kw)
    return Q5Outcome(res.runtime, 0.0, res.output, res)


def run_all_into_pgres(ctx: RheemContext, sf: float) -> Q5Outcome:
    """Common practice 1: bulk-load the lake into Postgres, query inside."""
    TpchLite(sf).place_all_in_pgres(ctx)
    migration = sum(_table_mb(t, sf) for t in ("lineitem", "orders", "nation")
                    ) / PG_LOAD_MB_PER_S
    res = q5_quanta(ctx, sf, "all_pgres").execute(
        allowed_platforms={"pgres", "driver"})
    return Q5Outcome(res.runtime + migration, migration, res.output, res)


def find_similar_columns(
    ctx: RheemContext,
    columns: dict[str, DataQuanta],
    threshold: float = 0.5,
    num_hashes: int = 64,
    seed: int = 7,
) -> list[tuple[str, str, float]]:
    """Data discovery: columns (wherever they live) with similar value sets.

    Each column's MinHash signature is computed IN PLACE as a map+reduce
    over its values — one multi-sink Rheem plan covers every column, and the
    optimizer decides per column whether to hash inside the relational
    store, on a distributed engine, or in process.  Signatures are then
    compared pairwise on the driver.

    Args:
        columns: Column label -> DataQuanta of that column's values.
        threshold: Minimum estimated Jaccard similarity to report.

    Returns:
        ``(label_a, label_b, similarity)`` triples, most similar first.
    """
    from ..algorithms.minhash import (
        hash_family,
        jaccard_estimate,
        merge_signatures,
        value_hashes,
    )
    from ..core.operators import CollectionSink
    from ..core.plan import RheemPlan

    family = hash_family(num_hashes, seed)
    labels = sorted(columns)
    sinks = []
    for label in labels:
        quanta = (columns[label]
                  .map(lambda v, __f=family: value_hashes(v, __f),
                       name=f"hash[{label}]", bytes_per_record=8.0 * num_hashes)
                  .reduce(merge_signatures))
        sink = CollectionSink(name=f"signature[{label}]")
        sink.connect(0, quanta.op)
        sinks.append(sink)
    result = ctx.execute(RheemPlan(sinks))
    signatures = {label: output[0] if output else ()
                  for label, output in zip(labels, result.outputs)}
    pairs = []
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            if signatures[a] and signatures[b]:
                score = jaccard_estimate(signatures[a], signatures[b])
                if score >= threshold:
                    pairs.append((a, b, score))
    return sorted(pairs, key=lambda t: -t[2])


def run_all_on_spark(ctx: RheemContext, sf: float) -> Q5Outcome:
    """Common practice 2: dump everything to HDFS, run Spark over it."""
    TpchLite(sf).place_all_on_hdfs(ctx)
    pg_mb = sum(_table_mb(t, sf) for t in ("customer", "supplier", "region"))
    migration = pg_mb / PG_EXPORT_MB_PER_S + pg_mb / HDFS_WRITE_MB_PER_S
    res = q5_quanta(ctx, sf, "all_hdfs").execute(
        allowed_platforms={"sparklite", "driver"})
    return Q5Outcome(res.runtime + migration, migration, res.output, res)
