"""xDB: database functionality on top of Rheem.

A small declarative query layer over catalog tables, plus the
cross-community PageRank task ("CrocoPR") the paper evaluates: intersect
two community link datasets and run PageRank on the result — easy to state
here, painful in SQL, and a poor fit for a DBMS engine.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.context import DataQuanta, RheemContext
from ..core.executor import ExecutionResult
from ..workloads.graphs import parse_edge


class XdbQuery:
    """A minimal fluent select-where-join-aggregate query builder.

    Compiles to a Rheem plan; the optimizer decides whether each piece runs
    inside the relational engine or is shipped elsewhere.
    """

    def __init__(self, ctx: RheemContext, table: str,
                 projection: list[str] | None = None) -> None:
        self.ctx = ctx
        self._quanta = ctx.read_table(table, projection)

    def where(self, column: str, low: Any = None, high: Any = None,
              selectivity: float | None = None) -> "XdbQuery":
        """Keep rows with ``column`` in ``[low, high]``."""
        self._quanta = self._quanta.filter_range(column, low, high,
                                                 selectivity)
        return self

    def select(self, *columns: str) -> "XdbQuery":
        """Project to the given columns."""
        cols = list(columns)
        self._quanta = self._quanta.map(
            lambda r: {c: r[c] for c in cols},
            name=f"select({','.join(cols)})",
            bytes_per_record=24.0 * len(cols))
        return self

    def join(self, other: "XdbQuery", left_on: str, right_on: str,
             selectivity: float | None = None) -> "XdbQuery":
        """Inner-join on column equality; rows merge into one dict."""
        joined = self._quanta.join(
            other._quanta, lambda l: l[left_on], lambda r: r[right_on],
            selectivity=selectivity)
        self._quanta = joined.map(lambda p: {**p[0], **p[1]},
                                  name="merge-rows")
        return self

    def group_sum(self, key: str, value: Callable[[dict], float]
                  ) -> "XdbQuery":
        """Group by ``key`` and sum ``value(row)`` per group."""
        self._quanta = (self._quanta
                        .map(lambda r: (r[key], value(r)),
                             name=f"pre-agg({key})", bytes_per_record=24)
                        .reduce_by_key(lambda t: t[0],
                                       lambda a, b: (a[0], a[1] + b[1])))
        return self

    def quanta(self) -> DataQuanta:
        """The underlying DataQuanta (to keep composing manually)."""
        return self._quanta

    def run(self, **execute_kwargs) -> ExecutionResult:
        """Optimize and execute the query."""
        return self._quanta.execute(**execute_kwargs)


def crocopr_quanta(ctx: RheemContext, community_a: str, community_b: str,
                   iterations: int = 10) -> DataQuanta:
    """Cross-community PageRank: intersect two link datasets, rank the
    shared subgraph, return the vertices sorted by rank."""
    edges_a = (ctx.read_text_file(community_a)
               .map(parse_edge, name="parse-a", bytes_per_record=16))
    edges_b = (ctx.read_text_file(community_b)
               .map(parse_edge, name="parse-b", bytes_per_record=16))
    shared = edges_a.intersect(edges_b).distinct()
    ranks = shared.pagerank(iterations=iterations)
    return ranks.sort(key=lambda vr: -vr[1])


def crocopr(ctx: RheemContext, community_a: str, community_b: str,
            iterations: int = 10, **execute_kwargs) -> ExecutionResult:
    """Run cross-community PageRank end to end."""
    return crocopr_quanta(ctx, community_a, community_b,
                          iterations).execute(**execute_kwargs)


def crocopr_from_tables(ctx: RheemContext, table_a: str, table_b: str,
                        iterations: int = 10,
                        **execute_kwargs) -> ExecutionResult:
    """Cross-community PageRank with the link datasets resident in the
    relational store (Figure 2(c): the *mandatory* cross-platform case —
    PageRank cannot run inside the DBMS, so Rheem must move the data out)."""
    edges_a = (ctx.read_table(table_a)
               .map(lambda r: (r["src"], r["dst"]), name="rows-a",
                    bytes_per_record=16))
    edges_b = (ctx.read_table(table_b)
               .map(lambda r: (r["src"], r["dst"]), name="rows-b",
                    bytes_per_record=16))
    shared = edges_a.intersect(edges_b).distinct()
    ranks = shared.pagerank(iterations=iterations)
    return ranks.sort(key=lambda vr: -vr[1]).execute(**execute_kwargs)
