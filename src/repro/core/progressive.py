"""Progressive (re-)optimization (Section 4.4 of the paper).

The key principle: re-optimize the plan whenever the cardinalities the
monitor observes greatly mismatch the estimates.  Every stage boundary in
this reproduction materializes its data, so every boundary is an
*optimization checkpoint*: after each stage the executor consults the
health check; on a mismatch it pauses, the remainder of the logical plan is
rewired onto the already-materialized channels (via
:class:`~repro.core.operators.ChannelSource`) and re-enumerated with the
TRUE cardinalities pinned, and execution resumes from the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..platforms.base import ExecutionOperator
from .cardinality import CardinalityEstimate
from .cost import CostEstimate
from .execution import DRIVER_PLATFORM
from .executor import ExecutionResult, Executor, ReplanRequested
from .mappings import OperatorMapping
from .operators import ChannelSource, InputRef
from .optimizer import Optimizer
from .plan import RheemPlan


class ChannelSourceExec(ExecutionOperator):
    """Re-emits an already materialized channel at zero cost."""

    op_kind = "channel_source"

    def __init__(self, logical: ChannelSource) -> None:
        super().__init__(logical)
        self.platform = logical.channel.descriptor.platform or DRIVER_PLATFORM

    def input_descriptors(self):
        return []

    def output_descriptor(self):
        return self.logical.channel.descriptor

    def tasks_fraction(self, profile) -> float:
        return 0.0

    def cost_estimate(self, model, cins, cout):
        return CostEstimate.zero()

    def execute(self, inputs, broadcasts, ctx):
        # Detach: the stored channel may be re-emitted into several
        # residual plans, whose branches must not share mutable payloads.
        return self.logical.channel.detached()


def channel_source_mapping() -> OperatorMapping:
    """The mapping every context registers so residual plans are executable."""
    return OperatorMapping(ChannelSource,
                           lambda op: [ChannelSourceExec(op)],
                           name="mapping<ChannelSource>")


@dataclass
class ProgressiveReport:
    """What happened across a progressively optimized run."""

    result: ExecutionResult
    replans: int


def execute_progressively(
    plan: RheemPlan,
    make_optimizer: Callable[[dict[int, CardinalityEstimate]], Optimizer],
    executor: Executor,
    tolerance: float = 2.0,
    max_replans: int = 5,
    sniffers=(),
) -> ProgressiveReport:
    """Optimize/execute/re-optimize until the plan completes.

    Args:
        plan: The logical plan (rewired in place on each re-plan).
        make_optimizer: Builds an optimizer with the given measured
            cardinalities pinned as estimation overrides.
        executor: The executor to run on (carries cluster state).
        tolerance: Mismatch factor that triggers re-optimization.
        max_replans: Safety bound on re-optimization rounds.
    """
    overrides: dict[int, CardinalityEstimate] = {}
    tracker = None
    started: set[str] | None = None
    replans = 0

    while True:
        optimizer = make_optimizer(overrides)
        best, cards = optimizer.pick_best(plan)
        exec_plan = optimizer._build_execution_plan(plan, best)

        def checkpoint(monitor, completed_ids) -> bool:
            if replans >= max_replans:
                return False
            return any(m.logical_id not in overrides
                       for m in monitor.mismatches(tolerance))

        try:
            result = executor.execute(
                exec_plan,
                estimates=cards,
                tracker=tracker,
                checkpoint=checkpoint,
                sniffers=sniffers,
                started_platforms=started,
            )
            return ProgressiveReport(result=result, replans=replans)
        except ReplanRequested as paused:
            state = paused.state
            replans += 1
            executor.metrics.counter("progressive.replans").inc()
            with executor.tracer.span("progressive.replan",
                                      round=replans) as span:
                for logical_id, actual in state.monitor.actuals.items():
                    overrides[logical_id] = CardinalityEstimate.exact(actual)
                plan = _residual_plan(plan, state)
                # Re-enumeration reuses the conversion memo cache; the
                # running totals make that visible per replan round.
                for name, value in executor.graph.cache_stats.items():
                    span.set(f"conversion_cache.{name}", value)
            tracker = state.tracker
            started = state.started_platforms


@dataclass
class PausedJob:
    """A job paused at an optimization checkpoint (exploratory mode).

    The paper's executor "allows applications to run in an exploratory mode
    where they can pause and resume the execution of a task at any point";
    a paused job exposes the data materialized so far and resumes by
    re-optimizing the residual plan with the measured cardinalities pinned.
    """

    plan: RheemPlan
    state: object  # PausedExecution

    def inspect(self, logical_id: int):
        """The materialized payload of a completed operator's output."""
        channel = self.state.materialized[logical_id]
        return channel.payload

    @property
    def completed(self) -> set[int]:
        return set(self.state.completed_logical_ids)


def execute_with_pause(
    plan: RheemPlan,
    make_optimizer,
    executor: Executor,
    break_after: set[int],
):
    """Run ``plan``, pausing once every operator in ``break_after`` has
    produced its output.

    Returns:
        A :class:`PausedJob` if the breakpoint was reached with work still
        outstanding, else the finished :class:`ExecutionResult`.
    """
    optimizer = make_optimizer({})
    best, cards = optimizer.pick_best(plan)
    exec_plan = optimizer._build_execution_plan(plan, best)

    def checkpoint(monitor, completed_ids) -> bool:
        return break_after <= completed_ids

    try:
        return executor.execute(exec_plan, estimates=cards,
                                checkpoint=checkpoint,
                                stage_breaks=set(break_after))
    except ReplanRequested as paused:
        return PausedJob(plan, paused.state)


def resume(paused: PausedJob, make_optimizer, executor: Executor):
    """Resume a paused job to completion.

    The residual plan is re-optimized with the cardinalities measured
    before the pause pinned as exact — resuming doubles as one progressive
    re-optimization round.
    """
    state = paused.state
    overrides = {logical_id: CardinalityEstimate.exact(actual)
                 for logical_id, actual in state.monitor.actuals.items()}
    residual = _residual_plan(paused.plan, state)
    optimizer = make_optimizer(overrides)
    best, cards = optimizer.pick_best(residual)
    exec_plan = optimizer._build_execution_plan(residual, best)
    return executor.execute(exec_plan, estimates=cards,
                            tracker=state.tracker,
                            started_platforms=state.started_platforms)


def _residual_plan(plan: RheemPlan, state) -> RheemPlan:
    """Rewire edges out of completed operators onto materialized channels.

    The plan is modified in place (operators are shared); a fresh
    :class:`RheemPlan` is returned so traversal caches are rebuilt.
    """
    completed = state.completed_logical_ids
    for op in plan.operators():
        if op.id in completed:
            continue
        for slot, ref in enumerate(op.inputs):
            if ref is not None and ref.op.id in completed:
                channel = state.materialized[ref.op.id]
                op.inputs[slot] = InputRef(ChannelSource(channel), 0)
        for slot, ref in enumerate(op.side_inputs):
            if ref.op.id in completed:
                channel = state.materialized[ref.op.id]
                op.side_inputs[slot] = InputRef(ChannelSource(channel), 0)
    return RheemPlan(plan.sinks)
