"""The signature-keyed execution-plan cache (optimizer fast path, layer 3).

Repeated submissions of structurally identical jobs — the REST service's
bread and butter — re-enumerate the same plan space from scratch.  This
cache short-circuits that: a completed optimization is stored under

``(plan fingerprint, source-cardinality bands, cost-model version,
allowed platforms, objective)``

and replayed for matching resubmissions.  Each component guards one way
the "same" plan could legitimately optimize differently:

* the **fingerprint** (:func:`~repro.core.fingerprint.plan_fingerprint`)
  pins structure and every parameter including UDF code — unstable plans
  fingerprint as ``None`` and are never cached;
* **source-cardinality bands** (quarter-octave, shared with the conversion
  memo cache) re-key the cache when the underlying data grows enough to
  change plan choice;
* the **cost-model version** is bumped whenever the genetic cost learner
  publishes new parameters (:meth:`RheemContext.publish_cost_params`),
  which also flushes the cache outright;
* **allowed platforms** and the **objective** capture per-request optimizer
  configuration.

Entries are LRU-bounded.  Hit/miss/eviction/flush counts feed the shared
:class:`~repro.trace.MetricsRegistry` under ``plan_cache.*`` and surface in
``--profile`` output and the REST ``trace`` block.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..concurrency import OrderedRLock
from .channels import volume_band

if TYPE_CHECKING:
    from ..trace import MetricsRegistry
    from .cardinality import CardinalityEstimate
    from .execution import ExecutionPlan

#: Statistic names mirrored into the metrics registry as ``plan_cache.<n>``.
PLAN_CACHE_STAT_NAMES = ("hits", "misses", "evictions", "flushes")


class ExecutionPlanCache:
    """LRU cache of completed optimizations.

    Values are ``(execution plan, cardinality estimates)`` pairs: the
    estimates are keyed by the *cached* plan's operator ids, so a hit
    replays both together (the executor's monitor consumes them).

    The cache is shared by every worker thread of the job server, so all
    entry/stat mutation happens under one re-entrant lock (rank 30 in
    the lock registry, :data:`repro.concurrency.order.LOCK_ORDER`): above
    the metrics lock, below the server's job-table lock, and never held
    while calling into the conversion graph.
    """

    def __init__(self, capacity: int = 64,
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.capacity = capacity
        self.metrics = metrics
        self.enabled = True
        self.stats: dict[str, int] = dict.fromkeys(PLAN_CACHE_STAT_NAMES, 0)
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = OrderedRLock("plan_cache", metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _stat(self, name: str) -> None:
        with self._lock:
            self.stats[name] += 1
        if self.metrics is not None:
            self.metrics.counter(f"plan_cache.{name}").inc()

    # ------------------------------------------------------------- keying
    def key_for(self, plan, estimation_ctx, cost_model_version: int,
                allowed_platforms: set[str] | None,
                objective) -> tuple | None:
        """Cache key for ``plan`` under the given optimizer configuration.

        Returns ``None`` — meaning "do not cache" — when caching is
        disabled or the plan cannot be fingerprinted stably.
        """
        from .fingerprint import fingerprint_report

        if not self.enabled or self.capacity <= 0:
            return None
        fingerprint, __ = fingerprint_report(plan)
        if fingerprint is None:
            # An unstable attribute (object addresses, open handles, ...)
            # defeated fingerprinting; surface it so a cache that silently
            # never hits is diagnosable (lint rule RP014 names the culprit).
            if self.metrics is not None:
                self.metrics.counter("fingerprint.unstable").inc()
            return None
        bands = tuple(
            volume_band(op.estimate_cardinality([],
                                                estimation_ctx).geometric_mean)
            for op in plan.operators() if op.is_source)
        platforms = (tuple(sorted(allowed_platforms))
                     if allowed_platforms is not None else None)
        objective_key = (objective.name,
                         tuple(sorted(objective.platform_weights.items())))
        return (fingerprint, bands, cost_model_version, platforms,
                objective_key)

    # ------------------------------------------------------------- access
    def get(self, key: tuple) -> "tuple[ExecutionPlan, dict] | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stat("misses")
                return None
            self._entries.move_to_end(key)
            self._stat("hits")
            return entry

    def put(self, key: tuple, exec_plan: "ExecutionPlan",
            cards: "dict[int, CardinalityEstimate]") -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (exec_plan, dict(cards))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stat("evictions")

    def flush(self) -> None:
        """Drop every entry (cost-model parameters changed)."""
        with self._lock:
            if self._entries:
                self._stat("flushes")
                self._entries.clear()

    def snapshot(self) -> dict[str, Any]:
        """Stats plus current size, for profile/REST surfaces."""
        with self._lock:
            return {**self.stats, "size": len(self._entries)}
