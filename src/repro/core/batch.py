"""Columnar record batches: the vectorized hand-off unit of the engines.

A :class:`RecordBatch` is an immutable, columnar view of a list of records.
Batches are what the engines move when a context is built with
``config={"vectorize": True}``: instead of dispatching a Python-level UDF
per record, batch operators run one numpy kernel per batch and fall back to
the per-record path only for operators without a vectorized declaration.

Layout rules (``from_records``):

* all records are dicts with the same key tuple  -> ``dict`` layout,
  one column per key;
* all records are tuples of the same width       -> ``tuple`` layout,
  one column per position;
* anything else                                  -> ``scalar`` layout,
  the records themselves form the single column.

A fourth layout, ``pair``, is produced by the vectorized join: it holds a
left and a right sub-batch with aligned rows and reads back as the legacy
``(left_record, right_record)`` pairs.

Columns whose values are homogeneously ``int``, ``float`` or ``str`` are
backed by read-only numpy arrays; everything else stays a plain object
list.  ``to_records`` reconstructs the original records exactly (numpy
round-trips int64/float64/str values bit-for-bit), which is what lets the
batch engines guarantee results identical to the per-record engines.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _make_column(values: list[Any]):
    """A read-only numpy array when the element type allows, else a list."""
    if not values:
        return values
    # ``set(map(type, ...))`` runs the type scan at C speed; ``type`` (not
    # isinstance) keeps bool/int and subclasses off the numpy path.
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            arr = np.array(values, dtype=np.int64)
        except OverflowError:
            return values
    elif kinds == {float}:
        arr = np.array(values, dtype=np.float64)
    elif kinds == {str}:
        arr = np.array(values, dtype=str)
        # numpy's fixed-width unicode dtype drops trailing NULs; if any
        # character went missing, keep the strings on the object path.
        if int(np.strings.str_len(arr).sum()) != sum(map(len, values)):
            return values
    else:
        return values
    arr.flags.writeable = False
    return arr


def _column_values(column) -> list[Any]:
    """Materialize a column back into plain Python values."""
    if isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


class RecordBatch:
    """An immutable columnar batch of records (see module docstring)."""

    __slots__ = ("_kind", "_names", "_columns", "_rows", "left", "right")

    def __init__(self, kind: str, columns: tuple, rows: int,
                 names: tuple[str, ...] | None = None,
                 left: "RecordBatch | None" = None,
                 right: "RecordBatch | None" = None) -> None:
        self._kind = kind
        self._columns = columns
        self._rows = rows
        self._names = names
        self.left = left
        self.right = right

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_records(cls, records: Iterable[Any]) -> "RecordBatch":
        """Columnarize ``records`` (layout per the module docstring)."""
        if isinstance(records, RecordBatch):
            return records
        rows = list(records)
        if not rows:
            return cls("scalar", ([],), 0)
        first = rows[0]
        if type(first) is dict:
            names = tuple(first)
            if all(type(r) is dict and tuple(r) == names for r in rows):
                columns = tuple(_make_column([r[n] for r in rows])
                                for n in names)
                return cls("dict", columns, len(rows), names)
        elif type(first) is tuple and first:
            width = len(first)
            if all(type(r) is tuple and len(r) == width for r in rows):
                columns = tuple(_make_column([r[i] for r in rows])
                                for i in range(width))
                return cls("tuple", columns, len(rows))
        return cls("scalar", (_make_column(rows),), len(rows))

    @classmethod
    def from_columns(cls, names: Sequence[str],
                     columns: Sequence[Any]) -> "RecordBatch":
        """A dict-layout batch from parallel ``columns`` (vectorized UDFs)."""
        cols = tuple(_freeze(c) for c in columns)
        rows = len(cols[0]) if cols else 0
        return cls("dict", cols, rows, tuple(names))

    @classmethod
    def from_tuple_columns(cls, columns: Sequence[Any]) -> "RecordBatch":
        """A tuple-layout batch from parallel ``columns``."""
        cols = tuple(_freeze(c) for c in columns)
        rows = len(cols[0]) if cols else 0
        return cls("tuple", cols, rows)

    @classmethod
    def pair(cls, left: "RecordBatch", right: "RecordBatch") -> "RecordBatch":
        """A join-output batch of aligned ``(left, right)`` rows."""
        if len(left) != len(right):
            raise ValueError("pair batch sides must have equal row counts")
        return cls("pair", (), len(left), left=left, right=right)

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches, preserving record order."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls("scalar", ([],), 0)
        if len(batches) == 1:
            return batches[0]
        head = batches[0]
        same_layout = all(
            b._kind == head._kind and b._names == head._names
            and len(b._columns) == len(head._columns) for b in batches)
        if head._kind == "pair" and same_layout:
            return cls.pair(cls.concat([b.left for b in batches]),
                            cls.concat([b.right for b in batches]))
        if same_layout and head._kind in ("dict", "tuple", "scalar"):
            columns = tuple(_concat_columns([b._columns[i] for b in batches])
                            for i in range(len(head._columns)))
            rows = sum(len(b) for b in batches)
            return cls(head._kind, columns, rows, head._names)
        merged: list[Any] = []
        for b in batches:
            merged.extend(b.to_records())
        return cls.from_records(merged)

    # -------------------------------------------------------------- accessors
    @property
    def kind(self) -> str:
        return self._kind

    @property
    def names(self) -> tuple[str, ...] | None:
        return self._names

    def __len__(self) -> int:
        return self._rows

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_records())

    def __repr__(self) -> str:
        return f"RecordBatch({self._kind}, rows={self._rows})"

    def col(self, key):
        """A column by name (dict layout) or position (tuple layout)."""
        if self._kind == "dict":
            if not isinstance(key, str):
                raise KeyError(key)
            return self._columns[self._names.index(key)]
        if self._kind == "tuple":
            return self._columns[key]
        if self._kind == "scalar" and key in (0, "value"):
            return self._columns[0]
        raise KeyError(f"no column {key!r} in a {self._kind} batch")

    def array(self, key) -> np.ndarray | None:
        """``col(key)`` as a numpy array, or None if it is an object column."""
        try:
            column = self.col(key)
        except (KeyError, ValueError, IndexError):
            return None
        return column if isinstance(column, np.ndarray) else None

    def to_records(self) -> list[Any]:
        """The original records, reconstructed exactly (a fresh list)."""
        if self._kind == "pair":
            return list(zip(self.left.to_records(), self.right.to_records()))
        if self._kind == "scalar":
            # _column_values, not list(): iterating a numpy column yields
            # numpy scalars (np.str_, np.int64), which would leak into
            # records and downstream results.
            return _column_values(self._columns[0])
        values = [_column_values(c) for c in self._columns]
        if self._kind == "dict":
            names = self._names
            return [dict(zip(names, row)) for row in zip(*values)] \
                if values else []
        return list(zip(*values)) if values else []

    # --------------------------------------------------------------- kernels
    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Rows at ``indices``, in that order (fancy indexing)."""
        if self._kind == "pair":
            return RecordBatch.pair(self.left.take(indices),
                                    self.right.take(indices))
        columns = []
        index_list: list[int] | None = None
        for column in self._columns:
            if isinstance(column, np.ndarray):
                taken = column[indices]
                taken.flags.writeable = False
                columns.append(taken)
            else:
                if index_list is None:
                    index_list = indices.tolist() \
                        if isinstance(indices, np.ndarray) else list(indices)
                columns.append([column[i] for i in index_list])
        rows = len(indices)
        return RecordBatch(self._kind, tuple(columns), rows, self._names)

    def mask(self, keep) -> "RecordBatch":
        """Rows where the boolean array ``keep`` is true (order preserved)."""
        return self.take(np.flatnonzero(np.asarray(keep, dtype=bool)))


def _freeze(column):
    if isinstance(column, np.ndarray):
        if column.flags.writeable:
            column = column.copy()
            column.flags.writeable = False
        return column
    return _make_column(list(column))


def _concat_columns(columns: list):
    if all(isinstance(c, np.ndarray) for c in columns):
        try:
            out = np.concatenate(columns)
        except (ValueError, TypeError):
            out = None
        if out is not None:
            out.flags.writeable = False
            return out
    merged: list[Any] = []
    for c in columns:
        merged.extend(_column_values(c))
    return _make_column(merged)


# ---------------------------------------------------------------- kernels
def range_mask(batch: RecordBatch, column: str, low: Any,
               high: Any) -> np.ndarray | None:
    """Vectorized ``low <= batch[column] <= high``; None when not possible."""
    arr = batch.array(column)
    if arr is None:
        return None
    try:
        keep = np.ones(len(batch), dtype=bool)
        if low is not None:
            keep &= arr >= low
        if high is not None:
            keep &= arr <= high
    except (TypeError, ValueError):
        return None
    return keep


def join_indices(left_keys: np.ndarray,
                 right_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row indices of the hash-join output, in the legacy engines' order.

    The per-record engines emit, for each left row in input order, every
    matching right row in right-input order.  A stable argsort of the right
    keys plus binary search reproduces exactly that order without touching
    Python per row.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    span = (int(sorted_keys[-1]) - int(sorted_keys[0]) + 1
            if len(sorted_keys) and sorted_keys.dtype.kind in "iu" else -1)
    if 0 <= span <= 4 * (len(left_keys) + len(right_keys)) + 1024:
        # Dense integer keys: a direct-address run table answers every
        # probe with two gathers — much faster than binary-searching each
        # (unsorted) left key.
        lo = int(sorted_keys[0])
        table = np.concatenate(
            ([0], np.bincount(sorted_keys - lo, minlength=span).cumsum()))
        inside = (left_keys >= lo) & (left_keys <= lo + span - 1)
        pos = np.where(inside, left_keys - lo, 0)
        starts = table[pos]
        ends = np.where(inside, table[pos + 1], starts)
    else:
        starts = np.searchsorted(sorted_keys, left_keys, side="left")
        ends = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = ends - starts
    left_idx = np.repeat(np.arange(len(left_keys)), counts)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    out_offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(out_offsets, counts)
    right_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


def joinable_keys(left: RecordBatch, left_col,
                  right: RecordBatch, right_col):
    """Numpy key arrays for a vectorized join, or None when unavailable.

    Requires comparable numpy dtypes on both sides: equality under sort
    order must coincide with the hash-table equality of the legacy path
    (ints with ints, floats with floats, strings with strings).
    """
    if left_col is None or right_col is None:
        return None
    lk = left.array(left_col)
    rk = right.array(right_col)
    if lk is None or rk is None:
        return None
    if lk.dtype.kind != rk.dtype.kind:
        return None
    if lk.dtype.kind == "f" and (np.isnan(lk).any() or np.isnan(rk).any()):
        return None  # NaN != NaN in a hash join, but sorts adjacently
    return lk, rk


def fold_by_key_columns(batch: RecordBatch, key_col, value_col,
                        fold: Callable[[Any, Any], Any]) -> RecordBatch:
    """Key-wise left fold matching the legacy ``_fold_by_key`` exactly.

    Groups appear in first-occurrence order of their key; each group's
    value is folded left-to-right over the batch's record order — the same
    accumulation (hence bit-identical floats) as the per-record engines.
    Output is a tuple layout of ``(key, aggregate)`` rows.
    """
    keys = _column_values(batch.col(key_col))
    values = _column_values(batch.col(value_col))
    acc: dict[Any, Any] = {}
    for k, v in zip(keys, values):
        if k in acc:
            acc[k] = fold(acc[k], v)
        else:
            acc[k] = v
    return RecordBatch.from_tuple_columns(
        (list(acc.keys()), list(acc.values())))


def pair_sum_reduce(key_col=0, value_col=1) -> Callable[[RecordBatch],
                                                        RecordBatch]:
    """A ``ReduceBy.batch_impl`` summing ``value_col`` per ``key_col``.

    Matches the ubiquitous ``lambda a, b: (a[0], a[1] + b[1])`` reducer
    over ``(key, value)`` tuples.
    """
    def impl(batch: RecordBatch) -> RecordBatch:
        return fold_by_key_columns(batch, key_col, value_col,
                                   lambda a, b: a + b)

    return impl


def column_values(column) -> list[Any]:
    """Public alias of :func:`_column_values` for the engines."""
    return _column_values(column)


def sort_order(keys: np.ndarray, descending: bool) -> np.ndarray | None:
    """Stable sort permutation matching ``sorted(records, key=..., reverse=)``.

    Python's sort is stable in both directions (``reverse=True`` does NOT
    reverse ties); ``-keys`` under a stable ascending argsort reproduces
    that for numeric keys.  Returns None when the dtype cannot express it.
    """
    if not isinstance(keys, np.ndarray):
        return None
    if descending:
        if keys.dtype.kind not in ("i", "f"):
            return None
        keys = -keys
    try:
        return np.argsort(keys, kind="stable")
    except (TypeError, ValueError):
        return None


# ----------------------------------------------- operator-level batch kernels
# Shared by every batch engine (pystreams, sparklite, flinklite, pgres
# bindings): given the LOGICAL operator and one batch, produce the output
# batch.  Each kernel prefers the operator's vectorized declaration and
# falls back to running the per-record UDF inside the batch — either way
# the output records equal the legacy per-record engines' exactly.

def apply_map(logical, batch: RecordBatch, bvals: Sequence[Any] = ()
              ) -> RecordBatch:
    """Apply a ``Map`` logical to one batch."""
    batch_udf = getattr(logical, "batch_udf", None)
    if batch_udf is not None:
        return RecordBatch.from_records(batch_udf(batch, *bvals))
    udf = logical.udf
    return RecordBatch.from_records(
        [udf(x, *bvals) for x in batch.to_records()])


def apply_flatmap(logical, batch: RecordBatch, bvals: Sequence[Any] = ()
                  ) -> RecordBatch:
    """Apply a ``FlatMap`` logical to one batch."""
    batch_udf = getattr(logical, "batch_udf", None)
    if batch_udf is not None:
        return RecordBatch.from_records(batch_udf(batch, *bvals))
    udf = logical.udf
    return RecordBatch.from_records(
        [y for x in batch.to_records() for y in udf(x, *bvals)])


def apply_filter(logical, batch: RecordBatch, bvals: Sequence[Any] = ()
                 ) -> RecordBatch:
    """Apply a ``Filter`` logical to one batch.

    Auto-vectorizes ``column``/``low``/``high`` range filters; otherwise
    uses ``batch_udf`` or the per-record predicate.
    """
    batch_udf = getattr(logical, "batch_udf", None)
    if batch_udf is not None:
        return batch.mask(np.asarray(batch_udf(batch, *bvals), dtype=bool))
    if getattr(logical, "column", None) is not None and not bvals:
        keep = range_mask(batch, logical.column, logical.low, logical.high)
        if keep is not None:
            return batch.mask(keep)
    udf = logical.udf
    keep = [bool(udf(x, *bvals)) for x in batch.to_records()]
    return batch.mask(np.array(keep, dtype=bool)) if keep else batch


def apply_join(logical, left: RecordBatch, right: RecordBatch) -> RecordBatch:
    """Hash equi-join of two batches in the legacy engines' output order."""
    keys = joinable_keys(left, getattr(logical, "left_key_column", None),
                         right, getattr(logical, "right_key_column", None))
    if keys is not None:
        li, ri = join_indices(*keys)
        return RecordBatch.pair(left.take(li), right.take(ri))
    lk, rk = logical.left_key, logical.right_key
    table: dict[Any, list[Any]] = {}
    for r in right.to_records():
        table.setdefault(rk(r), []).append(r)
    pairs = [(l, r) for l in left.to_records() for r in table.get(lk(l), ())]
    return RecordBatch.from_records(pairs)


def apply_reduce(logical, batch: RecordBatch) -> RecordBatch:
    """Key-wise fold of one batch (first-occurrence order, left fold)."""
    batch_impl = getattr(logical, "batch_impl", None)
    if batch_impl is not None:
        return RecordBatch.from_records(batch_impl(batch))
    key, reducer = logical.key, logical.reducer
    acc: dict[Any, Any] = {}
    for x in batch.to_records():
        k = key(x)
        acc[k] = x if k not in acc else reducer(acc[k], x)
    return RecordBatch.from_records(list(acc.values()))


def apply_sort(logical, batch: RecordBatch) -> RecordBatch:
    """Sort one batch, matching ``sorted(records, key=..., reverse=...)``."""
    batch_key = getattr(logical, "batch_key", None)
    if batch_key is not None:
        order = sort_order(np.asarray(batch_key(batch)), logical.descending)
        if order is not None:
            return batch.take(order)
    key = logical.key
    records = sorted(batch.to_records(),
                     key=key if key is not None else None,
                     reverse=logical.descending)
    return RecordBatch.from_records(records)


def batch_keys(batch: RecordBatch, key_col, key_fn) -> list[Any]:
    """Per-row shuffle keys as plain Python values.

    Prefers the declared key column (one ``tolist`` instead of one UDF call
    per record); key values are identical either way, so ``hash(key) % n``
    partition assignment matches the per-record engines exactly.
    """
    if key_col is not None:
        try:
            return column_values(batch.col(key_col))
        except (KeyError, IndexError):
            pass
    return [key_fn(r) for r in batch.to_records()]
