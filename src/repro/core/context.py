"""The public entry point: :class:`RheemContext` and the fluent
:class:`DataQuanta` API.

A context bundles the virtual cluster, the registered platforms (channels,
conversions, operator mappings), the relational catalog, the cost model and
the optimizer/executor plumbing.  Applications build plans either from raw
operators (:mod:`repro.core.operators`) or through the fluent API::

    ctx = RheemContext()
    ctx.vfs.write("hdfs://data/lines.txt", ["a b", "b a"], sim_factor=1.0)
    counts = (ctx.read_text_file("hdfs://data/lines.txt")
                 .flat_map(str.split)
                 .map(lambda w: (w, 1))
                 .reduce_by_key(lambda t: t[0],
                                lambda a, b: (a[0], a[1] + b[1]))
                 .collect())
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..concurrency import OrderedLock
from ..platforms import builtin_platforms
from ..platforms.pgres.engine import PgresDatabase
from ..simulation.cluster import VirtualCluster
from ..trace import NO_TRACER, MetricsRegistry, Tracer
from . import operators as ops
from .cardinality import CardinalityEstimate
from .channels import ChannelConversionGraph
from .cost import CostModel, OperatorCostParams
from .executor import ExecutionResult, Executor, Sniffer
from .mappings import MappingRegistry
from .operators import EstimationContext, InequalityCondition, Operator
from .optimizer import Optimizer
from .plancache import ExecutionPlanCache
from .plan import RheemPlan
from .resultstore import IntermediateResultStore
from .progressive import ProgressiveReport, channel_source_mapping, \
    execute_progressively


class RheemContext:
    """One cross-platform processing context (the paper's Rheem instance).

    Args:
        cluster: Virtual cluster to run on (fresh default if omitted).
        platforms: Platform instances to register (all built-ins by
            default).  Registering fewer simulates a smaller installation.
        cost_params: Learned cost-model parameters (from
            :mod:`repro.learn`); ``None`` uses the calibrated defaults.
        config: Job configuration (e.g. ``{"seed": 7}``).
        tracer: A :class:`~repro.trace.Tracer` to receive optimizer and
            executor spans; defaults to the no-op tracer (call
            :meth:`enable_tracing` to install a recording one).
    """

    def __init__(
        self,
        cluster: VirtualCluster | None = None,
        platforms: Sequence | None = None,
        cost_params: dict[str, OperatorCostParams] | None = None,
        config: dict[str, Any] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster or VirtualCluster()
        self.pgres = PgresDatabase()
        self.platforms = list(platforms if platforms is not None
                              else builtin_platforms())
        self.registry = MappingRegistry()
        self.metrics = MetricsRegistry()
        self.graph = ChannelConversionGraph(metrics=self.metrics)
        # Config first: it gates what the registration loop below installs.
        self.config = {"seed": 42}
        self.config.update(config or {})
        vectorize = bool(self.config.get("vectorize", False))
        for platform in self.platforms:
            for channel in platform.channels():
                self.graph.register_channel(channel)
            for conversion in platform.conversions():
                self.graph.register_conversion(conversion)
            mappings = platform.mappings()
            if vectorize:
                # Batch twins REPLACE the per-record mappings of the same
                # logical type; batch channels bolt onto the platform's own
                # channels via zero-cost conversions, so plan costs — hence
                # plan choice and simulated semantics — are unchanged.
                batch = platform.batch_mappings()
                if batch:
                    replaced = {m.operator_type for m in batch}
                    mappings = [m for m in mappings
                                if m.operator_type not in replaced]
                    mappings.extend(batch)
                for channel in platform.batch_channels():
                    self.graph.register_channel(channel)
                for conversion in platform.batch_conversions():
                    self.graph.register_conversion(conversion)
            self.registry.register_all(mappings)
        self.registry.register(channel_source_mapping())
        self.cost_model = CostModel(self.cluster, cost_params)
        self.tracer = tracer if tracer is not None else NO_TRACER
        self.plan_cache = ExecutionPlanCache(
            capacity=int(self.config.get("plan_cache_size", 64)),
            metrics=self.metrics)
        self.plan_cache.enabled = bool(self.config.get("plan_cache", True))
        # Cross-job intermediate-result store (result reuse): committed
        # stage outputs whose recompute-cost/byte ratio clears the
        # admission threshold are kept and offered to later submissions
        # as zero-cost source alternatives.
        self.result_store = IntermediateResultStore(
            budget_mb=float(self.config.get("reuse_budget_mb", 256.0)),
            min_benefit=float(self.config.get("reuse_min_benefit", 0.005)),
            metrics=self.metrics)
        self.result_store.enabled = bool(
            self.config.get("result_reuse", True))
        # Serializes cost-model publication (atomic swap + cache flush);
        # rank 20 in the lock registry, above the plan-cache lock it
        # flushes under (repro.concurrency.order).
        self._publish_lock = OrderedLock("context.publish", self.metrics)

    def enable_tracing(self) -> Tracer:
        """Install (and return) a recording tracer on this context."""
        if not getattr(self.tracer, "enabled", False):
            self.tracer = Tracer()
        return self.tracer

    def publish_cost_params(
            self, params: dict[str, OperatorCostParams]) -> None:
        """Install newly learned cost-model parameters (:mod:`repro.learn`).

        Bumps the cost-model version and flushes the execution-plan cache:
        plans chosen under the old parameters may no longer be optimal, so
        they must never be replayed.  Publication is an atomic dict swap
        under a lock: an in-flight optimization sees either the old or the
        new parameter set, never a half-written one, and its cache entry is
        keyed by the version it actually used.

        Publishing parameters equal to the current ones is a version-stable
        no-op: a convergent periodic refit (the online calibrator) would
        otherwise evict every warm plan and intermediate result for a
        parameter set under which each cached decision is still exactly
        right.
        """
        with self._publish_lock:
            if dict(params) == self.cost_model.params:
                return
            self.cost_model.params = dict(params)
            self.cost_model.version += 1
            self.plan_cache.flush()
            # Intermediate results are keyed by the version too, but a
            # flush keeps the store from carrying dead weight produced
            # under parameters that will never be probed again.
            self.result_store.flush()

    def cost_params_snapshot(self) -> dict[str, OperatorCostParams]:
        """A consistent copy of the currently published cost parameters.

        Taken under the publish lock so a concurrent publication can
        never be observed half-applied; the copy is safe to ship across
        process boundaries (the job server broadcasts it to shards).
        """
        with self._publish_lock:
            return dict(self.cost_model.params)

    # ------------------------------------------------------------- plumbing
    @property
    def vfs(self):
        """The virtual file system (``hdfs://`` and ``file://`` stores)."""
        return self.cluster.vfs

    def estimation_context(
        self, overrides: dict[int, CardinalityEstimate] | None = None
    ) -> EstimationContext:
        """Source metadata for cardinality estimation (catalog + VFS)."""
        return EstimationContext(
            vfs=self.vfs,
            table_cardinalities=self.pgres.analyze(),
            table_bytes=self.pgres.row_bytes(),
            overrides=dict(overrides or {}),
        )

    def optimizer(
        self,
        allowed_platforms: set[str] | None = None,
        overrides: dict[int, CardinalityEstimate] | None = None,
        objective=None,
        tracer: Tracer | None = None,
    ) -> Optimizer:
        """A cross-platform optimizer bound to this context's registries.

        ``tracer`` overrides the context's tracer for this optimizer only
        (per-job tracing under the concurrent job server: spans land in the
        job's tree, never on the shared context).
        """
        return Optimizer(
            registry=self.registry,
            conversion_graph=self.graph,
            cost_model=self.cost_model,
            estimation_ctx=self.estimation_context(overrides),
            allowed_platforms=allowed_platforms,
            objective=objective,
            tracer=tracer if tracer is not None else self.tracer,
            metrics=self.metrics,
        )

    def executor(self, tracer: Tracer | None = None,
                 cancel_check: Callable[[], None] | None = None) -> Executor:
        """An executor bound to this context's cluster and engines.

        ``tracer`` overrides the context's tracer for this executor only;
        ``cancel_check`` is called at every stage boundary (cooperative
        cancellation — see :class:`~repro.core.executor.JobCancelled`).
        """
        return Executor(self.cluster, self.graph, pgres=self.pgres,
                        config=self.config,
                        tracer=tracer if tracer is not None else self.tracer,
                        metrics=self.metrics, cancel_check=cancel_check,
                        result_store=self.result_store)

    # ------------------------------------------------------------ execution
    def optimize(
        self,
        plan: RheemPlan,
        allowed_platforms: set[str] | None = None,
        objective=None,
        cacheable: bool = True,
        tracer: Tracer | None = None,
    ):
        """Optimize ``plan`` through the result-reuse and plan caches.

        Returns ``(execution plan, cardinality estimates)``.

        The intermediate-result store is probed first (when enabled and
        the request is cacheable): a hit enumerates only the residual
        plan below the reuse roots — the stored channels enter as
        zero-cost source alternatives, so the winning plan both prunes
        the search space and skips the pruned operators' execution.
        Reuse-pruned plans bypass the execution-plan cache entirely
        (their decisions depend on store contents, which the cache key
        does not cover).

        Without a store hit the plan cache behaves as before: hits skip
        enumeration but still run static analysis, so diagnostics and
        rejection behaviour never depend on cache state; misses populate
        the cache for the next structurally identical submission.
        """
        optimizer = self.optimizer(allowed_platforms, objective=objective,
                                   tracer=tracer)
        # Probe the result store only when it can possibly hit: an empty
        # store would charge every plan-cache-warm submission the full
        # subplan-fingerprinting cost for nothing (a replayed plan already
        # carries its reuse keys from the miss that populated the cache).
        reuse_on = cacheable and self.result_store.enabled
        probe = None
        if reuse_on and len(self.result_store):
            probe = optimizer.probe_reuse(plan, self.result_store,
                                          self.cost_model.version)
        if probe is not None and probe.roots:
            best, cards = optimizer.pick_best(plan, reuse=probe)
            exec_plan = optimizer._build_execution_plan(plan, best)
            exec_plan.reuse_keys = dict(probe.keys)
            return exec_plan, cards
        key = self.plan_cache.key_for(
            plan, optimizer.estimation_ctx, self.cost_model.version,
            allowed_platforms, optimizer.objective) if cacheable else None
        cached = self.plan_cache.get(key) if key is not None else None
        if cached is not None:
            optimizer._analyze(plan)
            return cached
        best, cards = optimizer.pick_best(plan)
        exec_plan = optimizer._build_execution_plan(plan, best)
        # Attached before the cache put: a replayed hit re-publishes under
        # the same keys (same fingerprints, bands and version — they are
        # all part of the plan-cache key).
        if probe is None and reuse_on:
            probe = optimizer.probe_reuse(plan, self.result_store,
                                          self.cost_model.version,
                                          lookup=False)
        exec_plan.reuse_keys = dict(probe.keys) if probe is not None else {}
        if key is not None:
            self.plan_cache.put(key, exec_plan, cards)
        return exec_plan, cards

    def execute(
        self,
        plan: RheemPlan,
        allowed_platforms: set[str] | None = None,
        progressive: bool = False,
        sniffers: Sequence[Sniffer] = (),
        tolerance: float = 2.0,
        fault_injector=None,
        max_stage_retries: int = 2,
        objective=None,
        tracer: Tracer | None = None,
        cancel_check: Callable[[], None] | None = None,
    ) -> ExecutionResult:
        """Optimize and run a plan; returns sink payloads and timings.

        With ``progressive=True`` the job pauses at optimization
        checkpoints when measured cardinalities contradict the estimates
        and re-optimizes the remainder (Section 4.4).  A ``fault_injector``
        (see :mod:`repro.core.faults`) simulates platform crashes, which
        the executor survives by re-running stages from their materialized
        inputs.

        ``tracer`` runs the whole job (optimizer + executor) against a
        per-job tracer instead of the context's own — required for
        concurrent submissions, whose spans must never interleave.
        ``cancel_check`` is invoked at every stage boundary and may raise
        :class:`~repro.core.executor.JobCancelled` to abandon the job
        (deadline enforcement in the job server).
        """
        if progressive:
            report = self.execute_progressive(
                plan, allowed_platforms=allowed_platforms,
                tolerance=tolerance, sniffers=list(sniffers),
                tracer=tracer, cancel_check=cancel_check)
            report.result.diagnostics = list(plan.diagnostics)
            return report.result
        # Sniffers address operators of THIS plan object by id; a cached
        # execution plan carries the ids of the submission it was built
        # from, so exploratory runs bypass the cache entirely.  The same
        # predicate gates result reuse in BOTH directions: sniffer and
        # fault-injection runs neither look cached intermediates up nor
        # publish their own outputs (crash-retried data is fine, but
        # exploratory semantics must match a cold run exactly).
        cacheable = not sniffers and fault_injector is None
        exec_plan, cards = self.optimize(
            plan, allowed_platforms=allowed_platforms, objective=objective,
            cacheable=cacheable, tracer=tracer)
        executor = self.executor(tracer=tracer, cancel_check=cancel_check)
        result = executor.execute(exec_plan, estimates=cards,
                                  sniffers=list(sniffers),
                                  fault_injector=fault_injector,
                                  max_stage_retries=max_stage_retries,
                                  publish_results=cacheable)
        result.diagnostics = list(plan.diagnostics)
        return result

    def execute_progressive(
        self,
        plan: RheemPlan,
        allowed_platforms: set[str] | None = None,
        tolerance: float = 2.0,
        max_replans: int = 5,
        sniffers: Sequence[Sniffer] = (),
        tracer: Tracer | None = None,
        cancel_check: Callable[[], None] | None = None,
    ) -> ProgressiveReport:
        """Run with progressive optimization; reports the re-plan count."""
        return execute_progressively(
            plan,
            make_optimizer=lambda overrides: self.optimizer(
                allowed_platforms, overrides, tracer=tracer),
            executor=self.executor(tracer=tracer, cancel_check=cancel_check),
            tolerance=tolerance,
            max_replans=max_replans,
            sniffers=list(sniffers),
        )

    def execute_paused(self, plan: RheemPlan, break_after: set[int],
                       allowed_platforms: set[str] | None = None):
        """Exploratory mode: run until the given operators have produced
        output, then pause (returns a
        :class:`~repro.core.progressive.PausedJob`); finishes normally if
        the breakpoint never splits the plan."""
        from .progressive import execute_with_pause

        return execute_with_pause(
            plan,
            make_optimizer=lambda overrides: self.optimizer(
                allowed_platforms, overrides),
            executor=self.executor(),
            break_after=set(break_after),
        )

    def resume(self, paused, allowed_platforms: set[str] | None = None
               ) -> ExecutionResult:
        """Resume a paused exploratory job to completion."""
        from .progressive import resume

        return resume(
            paused,
            make_optimizer=lambda overrides: self.optimizer(
                allowed_platforms, overrides),
            executor=self.executor(),
        )

    # ------------------------------------------------------------ fluent API
    def read_text_file(self, path: str) -> "DataQuanta":
        """Start a plan from a (virtual) text file."""
        return DataQuanta(self, ops.TextFileSource(path))

    def load_collection(self, data: Iterable[Any], sim_factor: float = 1.0,
                        bytes_per_record: float = 100.0) -> "DataQuanta":
        """Start a plan from a driver-side collection."""
        return DataQuanta(self, ops.CollectionSource(
            data, sim_factor, bytes_per_record))

    def read_table(self, table: str,
                   projection: list[str] | None = None) -> "DataQuanta":
        """Start a plan from a relation living in the Pgres catalog."""
        return DataQuanta(self, ops.TableSource(table, projection))


class DataQuanta:
    """A fluent handle on one operator output within a plan under
    construction (the paper's Scala/Java API analog)."""

    def __init__(self, ctx: RheemContext, op: Operator) -> None:
        self.ctx = ctx
        self.op = op

    # --------------------------------------------------------- unary steps
    def _chain(self, op: Operator,
               broadcasts: Sequence["DataQuanta"] = ()) -> "DataQuanta":
        op.connect(0, self.op)
        for dq in broadcasts:
            op.broadcast(dq.op)
        return DataQuanta(self.ctx, op)

    def map(self, fn: Callable, name: str = "map",
            broadcasts: Sequence["DataQuanta"] = (),
            bytes_per_record: float | None = None,
            batch_udf: Callable | None = None) -> "DataQuanta":
        """Transform each quantum with ``fn`` (1-to-1).

        ``batch_udf`` optionally declares a vectorized twin operating on a
        whole :class:`~repro.core.batch.RecordBatch` (must be record-wise
        equivalent to ``fn``).
        """
        return self._chain(ops.Map(fn, name, bytes_per_record,
                                   batch_udf=batch_udf), broadcasts)

    def flat_map(self, fn: Callable, name: str = "flatmap",
                 broadcasts: Sequence["DataQuanta"] = (),
                 bytes_per_record: float | None = None,
                 batch_udf: Callable | None = None) -> "DataQuanta":
        """Transform each quantum into zero or more quanta."""
        return self._chain(ops.FlatMap(fn, name, bytes_per_record,
                                       batch_udf=batch_udf), broadcasts)

    def filter(self, fn: Callable, name: str = "filter",
               broadcasts: Sequence["DataQuanta"] = (),
               batch_udf: Callable | None = None) -> "DataQuanta":
        """Keep only quanta satisfying the predicate.

        ``batch_udf`` optionally computes the keep-mask for a whole record
        batch in one call.
        """
        return self._chain(ops.Filter(fn, name, batch_udf=batch_udf),
                           broadcasts)

    def map_partitions(self, fn: Callable, name: str = "map-partitions",
                       broadcasts: Sequence["DataQuanta"] = (),
                       bytes_per_record: float | None = None) -> "DataQuanta":
        """Transform whole partitions with ``fn`` (``list -> list``)."""
        return self._chain(ops.MapPartitions(fn, name, bytes_per_record),
                           broadcasts)

    def zip_with_id(self) -> "DataQuanta":
        """Attach a unique id to each quantum: ``(id, quantum)``."""
        return self._chain(ops.ZipWithId())

    def filter_range(self, column: str, low: Any = None, high: Any = None,
                     selectivity: float | None = None) -> "DataQuanta":
        """Keep dict-shaped quanta with ``column`` in ``[low, high]``."""
        return self._chain(ops.Filter.from_range(column, low, high,
                                                 selectivity))

    def sample(self, size: int | None = None, fraction: float | None = None,
               method: str = "random",
               broadcasts: Sequence["DataQuanta"] = ()) -> "DataQuanta":
        """Draw a sample (fixed ``size`` or ``fraction``; see ``Sample``)."""
        return self._chain(ops.Sample(size, fraction, method), broadcasts)

    def distinct(self, key: Callable | None = None) -> "DataQuanta":
        """Drop duplicate quanta (optionally by key)."""
        return self._chain(ops.Distinct(key))

    def sort(self, key: Callable | None = None,
             descending: bool = False,
             batch_key: Callable | None = None) -> "DataQuanta":
        """Sort quanta by ``key`` (``batch_key``: its vectorized twin)."""
        return self._chain(ops.Sort(key, descending, batch_key=batch_key))

    def group_by(self, key: Callable,
                 sim_groups: float | None = None) -> "DataQuanta":
        """Group quanta by key into ``(key, [members])`` pairs."""
        return self._chain(ops.GroupBy(key, sim_groups=sim_groups))

    def reduce_by_key(self, key: Callable, reducer: Callable,
                      sim_groups: float | None = None,
                      batch_impl: Callable | None = None) -> "DataQuanta":
        """Aggregate quanta per key with an associative ``reducer``.

        ``batch_impl`` optionally folds a whole record batch per key in one
        call (see :class:`~repro.core.operators.ReduceBy`).
        """
        return self._chain(ops.ReduceBy(key, reducer,
                                        sim_groups=sim_groups,
                                        batch_impl=batch_impl))

    def reduce(self, reducer: Callable) -> "DataQuanta":
        """Fold ALL quanta into one with an associative ``reducer``."""
        return self._chain(ops.GlobalReduce(reducer))

    def count(self) -> "DataQuanta":
        """Emit a single quantum: the number of input quanta."""
        return self._chain(ops.Count())

    def cache(self) -> "DataQuanta":
        """Mark this dataset for reuse (loop-invariant inputs)."""
        return self._chain(ops.Cache())

    def pagerank(self, iterations: int = 10,
                 damping: float = 0.85) -> "DataQuanta":
        """Rank ``(src, dst)`` edge quanta; emits ``(vertex, rank)``."""
        return self._chain(ops.PageRank(iterations, damping))

    # -------------------------------------------------------- binary steps
    def _chain2(self, op: Operator, other: "DataQuanta") -> "DataQuanta":
        op.connect(0, self.op)
        op.connect(1, other.op)
        return DataQuanta(self.ctx, op)

    def union(self, other: "DataQuanta") -> "DataQuanta":
        """Bag union with another dataset."""
        return self._chain2(ops.Union(), other)

    def intersect(self, other: "DataQuanta") -> "DataQuanta":
        """Set intersection with another dataset."""
        return self._chain2(ops.Intersect(), other)

    def join(self, other: "DataQuanta", left_key: Callable,
             right_key: Callable, selectivity: float | None = None,
             sim_mode: str = "linear",
             left_key_column: Any = None,
             right_key_column: Any = None) -> "DataQuanta":
        """Equi-join with another dataset; emits ``(left, right)`` pairs.

        Declaring the column each key UDF projects (``left_key_column`` /
        ``right_key_column``) lets the batch engines join columnarly.
        """
        return self._chain2(
            ops.Join(left_key, right_key, selectivity, sim_mode=sim_mode,
                     left_key_column=left_key_column,
                     right_key_column=right_key_column),
            other)

    def cartesian(self, other: "DataQuanta") -> "DataQuanta":
        """Cross product with another dataset."""
        return self._chain2(ops.CartesianProduct(), other)

    def ie_join(self, other: "DataQuanta",
                conditions: Sequence[InequalityCondition],
                selectivity: float | None = None) -> "DataQuanta":
        """Inequality join (the plugged-in fast IEJoin operator)."""
        return self._chain2(ops.IEJoin(conditions, selectivity), other)

    # --------------------------------------------------------------- loops
    def repeat(self, iterations: int,
               body: Callable[..., "DataQuanta"],
               invariants: Sequence["DataQuanta"] = ()) -> "DataQuanta":
        """Iterate ``body`` a fixed number of times.

        ``body`` receives the loop variable plus one handle per invariant
        input (all as body-scoped :class:`DataQuanta`) and returns the next
        loop variable.
        """
        loop_inputs = [ops.LoopInput(i) for i in range(1 + len(invariants))]
        handles = [DataQuanta(self.ctx, li) for li in loop_inputs]
        out = body(*handles)
        subplan = ops.SubPlan(loop_inputs, [ops.InputRef(out.op, 0)])
        loop = ops.RepeatLoop(iterations, subplan,
                              num_invariant_inputs=len(invariants))
        loop.connect(0, self.op)
        for i, dq in enumerate(invariants):
            loop.connect(1 + i, dq.op)
        return DataQuanta(self.ctx, loop)

    def do_while(self, condition: Callable[[list], bool],
                 body: Callable[..., "DataQuanta"],
                 invariants: Sequence["DataQuanta"] = (),
                 expected: int = 10,
                 max_iterations: int = 10_000) -> "DataQuanta":
        """Iterate ``body`` while ``condition(loop_var_records)`` holds."""
        loop_inputs = [ops.LoopInput(i) for i in range(1 + len(invariants))]
        handles = [DataQuanta(self.ctx, li) for li in loop_inputs]
        out = body(*handles)
        subplan = ops.SubPlan(loop_inputs, [ops.InputRef(out.op, 0)])
        loop = ops.DoWhileLoop(condition, subplan,
                               num_invariant_inputs=len(invariants),
                               expected=expected,
                               max_iterations=max_iterations)
        loop.connect(0, self.op)
        for i, dq in enumerate(invariants):
            loop.connect(1 + i, dq.op)
        return DataQuanta(self.ctx, loop)

    # ---------------------------------------------------------------- misc
    def with_target_platform(self, platform: str) -> "DataQuanta":
        """Pin the most recent operator to one platform."""
        self.op.with_target_platform(platform)
        return self

    def custom_operator(self, op: Operator,
                        execution_factory: Callable,
                        broadcasts: Sequence["DataQuanta"] = ()
                        ) -> "DataQuanta":
        """Apply a user-defined operator with a user-supplied execution
        operator (the paper's ``customOperator``: employ custom operators
        without extending the API).

        Args:
            op: The logical operator instance (its inputs are wired here).
            execution_factory: ``op -> [ExecutionOperator, ...]`` building
                the execution chain; registered as a mapping matching ONLY
                this operator instance.
        """
        from .mappings import OperatorMapping

        self.ctx.registry.register(OperatorMapping(
            type(op), execution_factory,
            guard=lambda candidate, __op=op: candidate is __op,
            name=f"custom<{op.name}>"))
        op.connect(0, self.op)
        for dq in broadcasts:
            op.broadcast(dq.op)
        return DataQuanta(self.ctx, op)

    # --------------------------------------------------------------- sinks
    def to_plan(self, sink: Operator | None = None) -> RheemPlan:
        """Close the branch with a sink and build a validated plan."""
        sink = sink or ops.CollectionSink()
        sink.connect(0, self.op)
        return RheemPlan([sink])

    def collect(self, **execute_kwargs) -> list[Any]:
        """Execute and return the result collection."""
        return self.execute(**execute_kwargs).output

    def execute(self, **execute_kwargs) -> ExecutionResult:
        """Execute with a collection sink; returns the full result object."""
        return self.ctx.execute(self.to_plan(), **execute_kwargs)

    def write_text_file(self, path: str, **execute_kwargs) -> ExecutionResult:
        """Execute, writing the result to a (virtual) text file."""
        plan = self.to_plan(ops.TextFileSink(path))
        return self.ctx.execute(plan, **execute_kwargs)
