"""Concurrent stage scheduler: ready-set dispatch with ordered commits.

The executor cuts a plan into stages whose *list order is a valid
topological order* (``ExecutionPlan.build_stages``).  This module
overlaps the wall-clock cost of independent stages — each stage's
compute phase (operator execution against buffered scratch state, plus
the ``stage_wall_s`` driver-to-platform dwell) runs on a bounded pool of
worker lanes — while keeping every *observable effect* of the job
bit-for-bit identical to a serial run.  The trick is splitting each
stage into two phases:

* **compute** runs on a lane and touches only scratch state; it receives
  its producers' buffered outcomes, so a stage becomes *ready* the
  moment every producer has **computed** — it does not wait for the
  commit cursor to catch up (a slow unrelated stage earlier in the list
  must not serialize an independent chain);
* **commit** applies the buffered outcome to the shared job state.

Commits are applied by the driver thread strictly in stage-list order
(a commit *cursor*).  Because the commit order is the serial execution
order, monitor observation order, sniffer delivery order,
conversion-cache contents, checkpoint barriers and the simulated
critical path are all deterministic regardless of how computes
interleave.

Failure semantics: an exception raised by a stage's compute (for
example :class:`~repro.core.faults.PlatformFailure` after the retry
bound) is re-raised at that stage's cursor position — after every
earlier stage has committed and none later has.  Its dependents never
become ready (a failed compute releases nothing), so they are never
dispatched; already-running lanes are drained before the exception
propagates, and their buffered outcomes are discarded.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..concurrency import OrderedLock
from ..trace import MetricsRegistry


class StageScheduler:
    """Dispatches ready stages onto lanes; commits in stage-list order.

    Args:
        stages: Stages in a valid topological (list) order; each needs an
            ``id`` attribute.
        dependencies: Map of stage id -> ids of the stages it depends on.
            Ids not present in ``stages`` are ignored.
        parallelism: Number of concurrent compute lanes (>= 1).  With one
            lane the scheduler runs everything inline on the calling
            thread — byte-identical to the historical serial loop.
        compute: ``(index, stage, lane, producers) -> outcome``; runs on
            a lane and must only touch scratch state.  ``producers`` is
            the list of the stage's producers' outcomes in stage-list
            order (committed or not).  May raise.
        commit: ``(index, stage, outcome) -> None``; runs on the calling
            (driver) thread, in stage-list order.  May raise (checkpoint
            pauses, cancellation) — no later stage will commit.
        metrics: Registry for the ``executor.ready_stages`` /
            ``executor.inflight_stages`` gauges (optional).
    """

    def __init__(
        self,
        stages: Sequence[Any],
        dependencies: Mapping[str, Iterable[str]],
        parallelism: int,
        compute: Callable[[int, Any, int, Sequence[Any]], Any],
        commit: Callable[[int, Any, Any], None],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.stages = list(stages)
        self.parallelism = max(1, int(parallelism))
        self.compute = compute
        self.commit = commit
        self.metrics = metrics
        index_of = {stage.id: i for i, stage in enumerate(self.stages)}
        self._pending: list[int] = []
        self._deps: list[list[int]] = []
        self._dependents: list[list[int]] = [[] for _ in self.stages]
        for i, stage in enumerate(self.stages):
            deps = sorted({index_of[d] for d in dependencies.get(stage.id, ())
                           if d in index_of})
            self._pending.append(len(deps))
            self._deps.append(deps)
            for dep in deps:
                self._dependents[dep].append(i)

    # ------------------------------------------------------------- helpers
    def _set_gauges(self, ready: int, inflight: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge("executor.ready_stages").set(ready)
            self.metrics.gauge("executor.inflight_stages").set(inflight)

    def _release(self, ready: list[int], index: int) -> None:
        """Push dependents of a computed stage that became ready."""
        for dep in self._dependents[index]:
            self._pending[dep] -= 1
            if not self._pending[dep]:
                heapq.heappush(ready, dep)

    # ----------------------------------------------------------------- run
    def run(self) -> None:
        if not self.stages:
            return
        if self.parallelism == 1:
            self._run_serial()
        else:
            self._run_parallel()
        self._set_gauges(0, 0)

    def _run_serial(self) -> None:
        # Min-index ready-set dispatch degenerates to exact list order:
        # when the cursor reaches stage k, stages 0..k-1 have committed,
        # so k is the lowest ready index.
        ready = [i for i, pending in enumerate(self._pending) if not pending]
        heapq.heapify(ready)
        outcomes: dict[int, Any] = {}
        for _ in range(len(self.stages)):
            index = heapq.heappop(ready)
            self._set_gauges(len(ready), 1)
            outcomes[index] = self.compute(
                index, self.stages[index], 0,
                [outcomes[d] for d in self._deps[index]])
            self.commit(index, self.stages[index], outcomes[index])
            self._release(ready, index)

    def _run_parallel(self) -> None:
        lock = OrderedLock("scheduler.dispatch", self.metrics)
        ready = [i for i, pending in enumerate(self._pending) if not pending]
        heapq.heapify(ready)
        lanes = list(range(self.parallelism))
        heapq.heapify(lanes)
        inflight = 0
        stop = False
        outcomes: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        done = [threading.Event() for _ in self.stages]

        def dispatch_locked() -> list[tuple[int, int, list[Any]]]:
            # Caller holds ``lock``.  Lowest ready index first, lowest
            # free lane first — deterministic lane assignment for traces.
            # A stage only becomes ready once every producer computed, so
            # their outcomes are present here.  Only the *decisions* are
            # made under the lock; the caller submits the returned batch
            # to the pool after releasing it, so the dispatch lock is
            # never held across an executor call.
            nonlocal inflight
            batch: list[tuple[int, int, list[Any]]] = []
            while not stop and ready and inflight < self.parallelism:
                index = heapq.heappop(ready)
                lane = heapq.heappop(lanes)
                inflight += 1
                batch.append((index, lane,
                              [outcomes[d] for d in self._deps[index]]))
            self._set_gauges(len(ready), inflight)
            return batch

        def submit_batch(batch: list[tuple[int, int, list[Any]]]) -> None:
            for index, lane, producers in batch:
                pool.submit(worker, index, lane, producers)

        def worker(index: int, lane: int, producers: list[Any]) -> None:
            nonlocal inflight
            try:
                outcome = self.compute(index, self.stages[index], lane,
                                       producers)
                error: BaseException | None = None
            except BaseException as exc:  # re-raised at the commit cursor
                outcome, error = None, exc
            with lock:
                inflight -= 1
                heapq.heappush(lanes, lane)
                if error is not None:
                    errors[index] = error
                else:
                    outcomes[index] = outcome
                    # Computing (not committing) is what makes dependents
                    # runnable: their computes overlay this outcome.
                    self._release(ready, index)
                batch = dispatch_locked()
            submit_batch(batch)
            done[index].set()

        with ThreadPoolExecutor(max_workers=self.parallelism,
                                thread_name_prefix="stage-lane") as pool:
            try:
                with lock:
                    batch = dispatch_locked()
                submit_batch(batch)
                for index in range(len(self.stages)):
                    done[index].wait()
                    if index in errors:
                        raise errors[index]
                    self.commit(index, self.stages[index], outcomes[index])
            except BaseException:
                with lock:
                    # Cancel everything not yet dispatched; the pool's
                    # __exit__ drains lanes already running, and their
                    # buffered outcomes are discarded unread.
                    stop = True
                raise
