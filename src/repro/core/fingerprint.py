"""Structural plan fingerprints for the execution-plan cache.

A fingerprint is a SHA-256 digest over a canonical token tree of the plan:
operators in deterministic topological order (loop bodies included), their
wiring expressed as indices into that order, and every semantically relevant
operator attribute.  Two plans share a fingerprint only if they are
structurally identical *and* all their parameters — including UDF code —
agree, so reusing a cached execution plan for a matching fingerprint is
behaviour-preserving.

UDFs are tokenized from their code objects (bytecode, constants, names,
defaults, closure cell contents), never from their memory addresses: the
same ``lambda`` re-created for a resubmitted REST document hashes
identically.  Anything the tokenizer cannot prove stable — objects whose
only identity is their address, exotic callables, over-deep structures —
poisons the fingerprint and :func:`plan_fingerprint` returns ``None``,
which callers must treat as "do not cache".  Unstable input can therefore
never produce a false cache hit, only a conservative miss.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
from types import CodeType
from typing import Any

from .operators import LoopOperator, Operator
from .udf import Udf

#: Operator attributes that do not affect what a plan computes: identity
#: counters, wiring (captured structurally), back-references, and the
#: optimizer's per-run scratch (``pinned_bytes`` is written during record
#: width estimation).
_SKIP_ATTRS = frozenset(
    {"id", "inputs", "side_inputs", "downstream", "body", "pinned_bytes"})

#: Recursion guard for pathological self-referential values.
_MAX_DEPTH = 24

#: Collections longer than this are still tokenized in full (tokens are
#: hashed, not stored), but the guard keeps adversarial nesting bounded.


class _Fingerprinter:
    """Turns values into stable, primitive-only token trees."""

    def __init__(self) -> None:
        self.stable = True

    # ------------------------------------------------------------ values
    def token(self, value: Any, depth: int = 0) -> tuple:
        if depth > _MAX_DEPTH:
            self.stable = False
            return ("too-deep",)
        if value is None or isinstance(value, (bool, int, float, str, bytes)):
            return (type(value).__name__, value)
        if isinstance(value, (list, tuple)):
            return ("seq", type(value).__name__,
                    tuple(self.token(v, depth + 1) for v in value))
        if isinstance(value, (set, frozenset)):
            try:
                items = sorted(value)
            except TypeError:
                items = sorted(value, key=repr)
            return ("set", tuple(self.token(v, depth + 1) for v in items))
        if isinstance(value, dict):
            pairs = sorted(value.items(), key=lambda kv: repr(kv[0]))
            return ("dict", tuple(
                (self.token(k, depth + 1), self.token(v, depth + 1))
                for k, v in pairs))
        if isinstance(value, Udf):
            return ("udf", self.token(value.fn, depth + 1),
                    value.selectivity, value.cpu_weight, value.name)
        if isinstance(value, CodeType):
            return self._code(value, depth)
        if callable(value):
            return self._callable(value, depth)
        self.stable = False
        return ("unstable", id(value))

    # --------------------------------------------------------- callables
    def _callable(self, fn: Any, depth: int) -> tuple:
        if isinstance(fn, functools.partial):
            return ("partial", self.token(fn.func, depth + 1),
                    self.token(list(fn.args), depth + 1),
                    self.token(fn.keywords, depth + 1))
        if inspect.ismethod(fn):
            return ("method", self.token(fn.__func__, depth + 1),
                    self.token(fn.__self__, depth + 1))
        code = getattr(fn, "__code__", None)
        if code is None:
            # Builtins and method descriptors (str.split, operator.add...)
            # are singletons identified by module + qualified name.
            module = getattr(fn, "__module__", None)
            qualname = getattr(fn, "__qualname__", None)
            if qualname is None:
                self.stable = False
                return ("unstable-callable", id(fn))
            return ("builtin", module, qualname)
        cells: tuple = ()
        closure = getattr(fn, "__closure__", None)
        if closure:
            try:
                cells = tuple(self.token(cell.cell_contents, depth + 1)
                              for cell in closure)
            except ValueError:  # empty cell
                self.stable = False
                cells = ("empty-cell",)
        return ("fn", self._code(code, depth),
                self.token(getattr(fn, "__defaults__", None), depth + 1),
                self.token(getattr(fn, "__kwdefaults__", None), depth + 1),
                cells)

    def _code(self, code: CodeType, depth: int) -> tuple:
        consts = tuple(self.token(c, depth + 1) for c in code.co_consts)
        return ("code", code.co_code, consts, code.co_names,
                code.co_varnames, code.co_freevars, code.co_argcount)


def _op_attr_token(op: Operator, fp: _Fingerprinter) -> tuple:
    """Canonical token of one operator's semantic attributes (no wiring)."""
    return tuple(
        (key, fp.token(op.__dict__[key]))
        for key in sorted(op.__dict__)
        if key not in _SKIP_ATTRS)


def plan_fingerprint(plan) -> str | None:
    """Digest of ``plan``'s structure and parameters; ``None`` if unstable.

    The walk covers loop bodies (``include_loop_bodies=True``), so a loop's
    fingerprint pins its body operators, feedback wiring, and iteration
    bounds.  ``None`` means some operator attribute could not be tokenized
    reproducibly — the caller must skip caching for this plan.
    """
    return fingerprint_report(plan)[0]


def fingerprint_report(plan) -> "tuple[str | None, Operator | None]":
    """:func:`plan_fingerprint` plus blame: ``(digest, unstable operator)``.

    Exactly one of the pair is ``None``: a stable plan returns
    ``(digest, None)``; an uncacheable plan returns ``(None, op)`` where
    ``op`` is the first operator (in topological order) whose attributes
    could not be tokenized reproducibly — surfaced by the
    ``fingerprint.unstable`` counter and lint rule RP014.
    """
    ops: list[Operator] = plan.operators(include_loop_bodies=True)
    index = {op.id: i for i, op in enumerate(ops)}
    fp = _Fingerprinter()
    entries = []
    unstable_op: Operator | None = None
    for op in ops:
        attrs = _op_attr_token(op, fp)
        if not fp.stable and unstable_op is None:
            unstable_op = op
        ins = tuple(
            (slot, index.get(ref.op.id), ref.output_index)
            if ref is not None else (slot, None, None)
            for slot, ref in enumerate(op.inputs))
        sides = tuple((index.get(ref.op.id), ref.output_index)
                      for ref in op.side_inputs)
        body: tuple = ()
        if isinstance(op, LoopOperator):
            body = (tuple(index[inp.id] for inp in op.body.inputs),
                    tuple((index[ref.op.id], ref.output_index)
                          for ref in op.body.outputs))
        entries.append((type(op).__name__, ins, sides, body, attrs))
    if not fp.stable:
        return None, unstable_op
    tree = (tuple(entries), tuple(index[sink.id] for sink in plan.sinks))
    return hashlib.sha256(repr(tree).encode()).hexdigest(), None


def unstable_attribute(op: Operator) -> str | None:
    """Name of the first attribute of ``op`` that defeats fingerprinting.

    ``None`` when every attribute tokenizes stably.  Used by lint rule
    RP014 to name the offending operator attribute in its hint.
    """
    for key in sorted(op.__dict__):
        if key in _SKIP_ATTRS:
            continue
        fp = _Fingerprinter()
        fp.token(op.__dict__[key])
        if not fp.stable:
            return key
    return None


# --------------------------------------------------------------- subplans
def subplan_fingerprints(plan) -> dict[int, str]:
    """Merkle digest of the *computation rooted at each operator*.

    Returns ``{operator id -> digest}`` for every top-level operator of
    ``plan`` whose upstream cone tokenizes stably.  An operator's digest
    combines its own attribute token with the digests of its data and
    broadcast producers (plus a structural token of its loop body, for
    loops), so two operators share a digest exactly when they compute the
    same function of the same fingerprinted sources — across plans and
    across submissions.  Instability poisons transitively: an unstable UDF
    anywhere in the cone removes the whole downstream chain from the map,
    mirroring :func:`plan_fingerprint`'s conservative-miss contract.
    """
    memo: dict[int, str | None] = {}
    for op in plan.operators():
        _subplan_fp(op, memo)
    return {op_id: digest for op_id, digest in memo.items()
            if digest is not None}


def _subplan_fp(op: Operator, memo: dict[int, "str | None"]) -> str | None:
    if op.id in memo:
        return memo[op.id]
    fp = _Fingerprinter()
    entry = (type(op).__name__, _op_attr_token(op, fp))
    body: tuple = ()
    if isinstance(op, LoopOperator):
        body = _loop_body_token(op, fp)
    if not fp.stable:
        memo[op.id] = None
        return None
    ins: list[tuple] = []
    for slot, ref in enumerate(op.inputs):
        if ref is None:
            ins.append((slot, None, None))
            continue
        sub = _subplan_fp(ref.op, memo)
        if sub is None:
            memo[op.id] = None
            return None
        ins.append((slot, sub, ref.output_index))
    sides: list[tuple] = []
    for ref in op.side_inputs:
        sub = _subplan_fp(ref.op, memo)
        if sub is None:
            memo[op.id] = None
            return None
        sides.append((sub, ref.output_index))
    tree = (entry, tuple(ins), tuple(sides), body)
    digest = hashlib.sha256(repr(tree).encode()).hexdigest()
    memo[op.id] = digest
    return digest


def _loop_body_token(loop: LoopOperator, fp: _Fingerprinter) -> tuple:
    """Structural token of a loop body (body-local wiring indices).

    The body is tokenized like a miniature plan: operators in the body's
    own topological order, wiring by body-local index, attributes through
    the *loop's* fingerprinter so body instability poisons the loop's
    subplan digest.  ``LoopInput`` placeholders carry their slot index as
    an attribute, which binds them to the loop's outer inputs (whose own
    subplan digests enter through the loop's input edges).
    """
    body_ops = loop.body.operators()
    index = {o.id: i for i, o in enumerate(body_ops)}
    entries = []
    for o in body_ops:
        attrs = _op_attr_token(o, fp)
        ins = tuple(
            (slot, index.get(ref.op.id), ref.output_index)
            if ref is not None else (slot, None, None)
            for slot, ref in enumerate(o.inputs))
        sides = tuple((index.get(ref.op.id), ref.output_index)
                      for ref in o.side_inputs)
        body = _loop_body_token(o, fp) if isinstance(o, LoopOperator) else ()
        entries.append((type(o).__name__, ins, sides, body, attrs))
    return ("loop-body", tuple(entries),
            tuple(index[inp.id] for inp in loop.body.inputs),
            tuple((index[ref.op.id], ref.output_index)
                  for ref in loop.body.outputs))
