"""The optimizer's cost model (Section 4.1 / 4.5 of the paper).

The cost of an execution operator is derived from its *resource usage*
(dominantly CPU in the reproduction, with I/O and network charged by the
engines and conversions) and the platform's *unit costs*.  Following the
paper's ``r_CPU := cin * (alpha + beta) + delta`` formulation, each
(platform, operator-kind) pair carries three learnable parameters:

* ``alpha`` — work units per input record,
* ``beta``  — work units per output record,
* ``delta`` — fixed start/scheduling overhead in seconds.

Costs are intervals with a confidence, propagated from the cardinality
intervals.  The default parameters mirror the simulation profiles exactly
(a perfectly calibrated model); :mod:`repro.learn` re-fits them from
execution logs, and the ablation benchmark compares both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..simulation.cluster import VirtualCluster
from .cardinality import CardinalityEstimate


@dataclass(frozen=True)
class CostEstimate:
    """Simulated-seconds interval with a confidence."""

    lower: float
    upper: float
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper < self.lower:
            raise ValueError(f"invalid cost interval [{self.lower}, {self.upper}]")

    @classmethod
    def zero(cls) -> "CostEstimate":
        return cls(0.0, 0.0, 1.0)

    @classmethod
    def fixed(cls, seconds: float) -> "CostEstimate":
        return cls(seconds, seconds, 1.0)

    @property
    def geometric_mean(self) -> float:
        """Scalar used to compare plans (paper: geometric mean of bounds)."""
        if self.lower <= 0:
            return (self.lower + self.upper) / 2
        return math.sqrt(self.lower * self.upper)

    def plus(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.lower + other.lower,
            self.upper + other.upper,
            min(self.confidence, other.confidence),
        )

    def times(self, factor: float) -> "CostEstimate":
        return CostEstimate(self.lower * factor, self.upper * factor,
                            self.confidence)

    def __str__(self) -> str:
        return f"[{self.lower:.3f}s..{self.upper:.3f}s]@{self.confidence:.0%}"


@dataclass
class OperatorCostParams:
    """Learnable resource-usage parameters of one operator kind."""

    alpha: float = 1.0
    beta: float = 0.0
    delta: float = 0.0


#: Per-operator-kind default parameters, shared by the engines (which charge
#: simulated time with them) and the cost model (which predicts it).  Binary
#: operators see the SUM of their input cardinalities as ``cin``.
KIND_PARAM_DEFAULTS: dict[str, OperatorCostParams] = {
    "join": OperatorCostParams(alpha=1.0, beta=1.0),
    "cartesian": OperatorCostParams(alpha=0.0, beta=1.0),
    "iejoin": OperatorCostParams(alpha=1.0, beta=1.0),
    "flatmap": OperatorCostParams(alpha=1.0, beta=0.5),
    "pagerank": OperatorCostParams(alpha=1.0, beta=1.0),
    # Efficient sampling operators touch only the sample (ML4all's plugged
    # random-jump / shuffled-partition samplers)...
    "sample": OperatorCostParams(alpha=0.0, beta=1.0),
    # ...whereas scan-based sampling reads everything.
    "sample_scan": OperatorCostParams(alpha=1.0, beta=0.0),
    "groupby": OperatorCostParams(alpha=1.2, beta=0.0),
    "sort": OperatorCostParams(alpha=1.0, beta=0.0),
    # Distributed engines fetching results to the driver through their own
    # action (e.g. toLocalIterator) pay more per record than a plain collect
    # conversion — the WordCount trick of Figure 9(d).
    "collect_sink": OperatorCostParams(alpha=0.0, beta=33.0),
    # Relational-engine specifics: base-table access is nearly free (the
    # consumer pays the scan), index scans touch only their matches.
    "table_source": OperatorCostParams(alpha=0.05, beta=0.0),
    "filter_index": OperatorCostParams(alpha=0.0, beta=1.5, delta=0.001),
}


def kind_params(op_kind: str) -> OperatorCostParams:
    """Default cost parameters for an operator kind."""
    return KIND_PARAM_DEFAULTS.get(op_kind, OperatorCostParams())


class CostModel:
    """Estimates execution-operator costs from cardinalities.

    Args:
        cluster: Supplies per-platform unit costs (tuple cost, parallelism,
            overheads).
        params: Optional learned parameters keyed ``"<platform>.<op_kind>"``;
            missing keys fall back to :attr:`default_params`.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        params: dict[str, OperatorCostParams] | None = None,
    ) -> None:
        self.cluster = cluster
        self.params = dict(params or {})
        #: Bumped whenever new learned parameters are published
        #: (:meth:`RheemContext.publish_cost_params`); part of the
        #: execution-plan cache key so stale plans can never be replayed.
        self.version = 0

    def params_for(self, platform: str, op_kind: str) -> OperatorCostParams:
        key = f"{platform}.{op_kind}"
        if key in self.params:
            return self.params[key]
        return kind_params(op_kind)

    def operator_cost(
        self,
        platform: str,
        op_kind: str,
        cin: CardinalityEstimate,
        cout: CardinalityEstimate,
        work: float = 1.0,
    ) -> CostEstimate:
        """Cost interval for one execution operator.

        ``work`` is the logical operator's work factor (UDF cpu weight,
        sort's n-log-n fudge, PageRank's iteration count...).
        """
        profile = self.cluster.profile(platform)
        p = self.params_for(platform, op_kind)

        def seconds(ci: float, co: float) -> float:
            units = p.alpha * ci + p.beta * co
            return p.delta + profile.cpu_seconds(units, work)

        return CostEstimate(
            seconds(cin.lower, cout.lower),
            seconds(cin.upper, cout.upper),
            min(cin.confidence, cout.confidence),
        )

    def stage_overhead(self, platform: str) -> float:
        """Per-stage dispatch cost of a platform."""
        return self.cluster.profile(platform).stage_overhead_s

    def platform_startup(self, platform: str) -> float:
        """One-off start-up cost of touching a platform in a job."""
        return self.cluster.profile(platform).startup_s
