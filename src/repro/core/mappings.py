"""Operator mappings and plan inflation (Section 3 / 4.1 of the paper).

A mapping declares how a platform implements a Rheem operator — either with
a single execution operator (1-to-1) or with a chain of them (1-to-n, the
paper's Reduce -> [GroupBy, Map] example).  *Inflation* annotates every
logical operator with ALL its execution alternatives; the inflated plan is
the compact search space the enumerator explores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TYPE_CHECKING

from .cardinality import CardinalityEstimate
from .channels import ChannelDescriptor
from .cost import CostEstimate, CostModel
from .operators import LoopOperator, Operator
from .plan import RheemPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.base import ExecutionOperator


class NoMappingError(LookupError):
    """Raised when a logical operator has no execution alternative."""


@dataclass
class ExecutionAlternative:
    """One way to execute a logical operator: a linear chain of execution
    operators on a single platform.

    ``ops[0]`` receives the logical operator's inputs; ``ops[-1]`` produces
    its output.
    """

    ops: list["ExecutionOperator"]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("an alternative needs at least one execution operator")
        platforms = {op.platform for op in self.ops}
        if len(platforms) != 1:
            raise ValueError(f"mixed-platform alternative: {platforms}")

    @property
    def platform(self) -> str:
        return self.ops[0].platform

    def input_descriptors(self) -> list[ChannelDescriptor]:
        return self.ops[0].input_descriptors()

    def output_descriptor(self) -> ChannelDescriptor:
        return self.ops[-1].output_descriptor()

    def broadcast_descriptor(self) -> ChannelDescriptor | None:
        for op in self.ops:
            desc = op.broadcast_descriptor()
            if desc is not None:
                return desc
        return None

    def cost(self, model: CostModel, cins: Sequence[CardinalityEstimate],
             cout: CardinalityEstimate, bytes_in: float = 100.0,
             bytes_out: float = 100.0) -> CostEstimate:
        """Cost of the chain; intermediate cardinalities approximate the
        logical output cardinality."""
        total = CostEstimate.zero()
        profile = model.cluster.profile(self.platform)
        for i, op in enumerate(self.ops):
            op_cins = list(cins) if i == 0 else [cout]
            if not op_cins:
                op_cins = [cout]  # sources: reading cost tracks their output
            override = op.cost_estimate(model, op_cins, cout)
            if override is not None:
                total = total.plus(override)
            else:
                cin = op_cins[0]
                for extra in op_cins[1:]:
                    cin = cin.plus(extra)
                total = total.plus(model.operator_cost(
                    self.platform, op.op_kind, cin, cout, op.work()))
            shuffle_mb = op.shuffled_mb(
                profile, [c.geometric_mean for c in op_cins],
                cout.geometric_mean, bytes_in if i == 0 else bytes_out,
                bytes_out)
            if shuffle_mb:
                total = total.plus(CostEstimate.fixed(
                    shuffle_mb * profile.shuffle_cost_s_per_mb))
            total = total.plus(CostEstimate.fixed(op.overhead_seconds(profile)))
        return total

    def __repr__(self) -> str:
        return f"Alt({'+'.join(op.name for op in self.ops)})"


class OperatorMapping:
    """Maps logical operators matching a pattern to execution alternatives.

    Args:
        operator_type: Logical operator class to match (subclasses match
            unless they match a more specific mapping first — the registry
            keeps all matches).
        factory: Builds a fresh execution-operator chain for a matched
            operator.
        guard: Optional extra predicate on the operator.
    """

    def __init__(
        self,
        operator_type: type,
        factory: Callable[[Operator], Sequence["ExecutionOperator"]],
        guard: Callable[[Operator], bool] | None = None,
        name: str = "",
    ) -> None:
        self.operator_type = operator_type
        self.factory = factory
        self.guard = guard
        self.name = name or f"mapping<{operator_type.__name__}>"

    def matches(self, op: Operator) -> bool:
        if type(op) is not self.operator_type and not isinstance(op, self.operator_type):
            return False
        return self.guard is None or self.guard(op)

    def build(self, op: Operator) -> ExecutionAlternative:
        return ExecutionAlternative(list(self.factory(op)))

    def __repr__(self) -> str:
        return self.name


class MappingRegistry:
    """All registered operator mappings across platforms."""

    def __init__(self) -> None:
        self._mappings: list[OperatorMapping] = []

    def register(self, mapping: OperatorMapping) -> None:
        self._mappings.append(mapping)

    def register_all(self, mappings: Sequence[OperatorMapping]) -> None:
        self._mappings.extend(mappings)

    def alternatives_for(self, op: Operator) -> list[ExecutionAlternative]:
        """All execution alternatives for ``op``, honouring a pinned
        ``target_platform``.

        Raises:
            NoMappingError: If no alternative exists.
        """
        alts = [m.build(op) for m in self._mappings if m.matches(op)]
        if op.target_platform is not None:
            alts = [a for a in alts if a.platform == op.target_platform]
        if not alts:
            pin = (f" on platform {op.target_platform!r}"
                   if op.target_platform else "")
            raise NoMappingError(f"no execution alternative for {op}{pin}")
        return alts


@dataclass
class InflatedPlan:
    """A Rheem plan annotated with all execution alternatives per operator.

    Loop operators are inflated recursively by the optimizer, not here.
    """

    plan: RheemPlan
    alternatives: dict[int, list[ExecutionAlternative]]

    def alternatives_for(self, op: Operator) -> list[ExecutionAlternative]:
        return self.alternatives[op.id]


def inflate(plan: RheemPlan, registry: MappingRegistry) -> InflatedPlan:
    """Apply all mappings to every (non-loop) operator of ``plan``."""
    alternatives: dict[int, list[ExecutionAlternative]] = {}
    for op in plan.operators():
        if isinstance(op, LoopOperator):
            continue  # enumerated recursively via its body
        alternatives[op.id] = registry.alternatives_for(op)
    return InflatedPlan(plan, alternatives)
