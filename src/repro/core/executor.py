"""The executor (Section 4.2 of the paper).

Cuts the execution plan into stages, dispatches them in dependency order,
drives loops (pausing at loop heads to evaluate the condition), applies
channel conversions at stage boundaries, and aggregates simulated time
along the critical path (independent stages overlap — inter-platform
parallelism).

The executor also implements:

* **optimization checkpoints** — after every stage (our stage outputs are
  always data at rest), an optional hook inspects the monitor; a truthy
  return pauses the job and raises :class:`ReplanRequested` carrying the
  materialized state, which the progressive optimizer consumes;
* **exploratory mode** — sniffers attached to logical operators observe
  the data flowing past them at a simulated multiplexing cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..simulation.clock import CostMeter, CriticalPathTracker
from ..simulation.cluster import VirtualCluster
from ..trace import NO_TRACER, MetricsRegistry
from .cardinality import CardinalityEstimate
from .channels import Channel, ChannelConversionGraph, ConversionPath
from .execution import (
    DRIVER_PLATFORM,
    ExecutionContext,
    ExecutionPlan,
    ExecutionStage,
    ExecutionTask,
    LoopImplementation,
)
from .monitor import Monitor, OperatorObservation
from .operators import DoWhileLoop, RepeatLoop
from .optimizer import LoopBodySource

#: Checkpoint hook: (monitor, completed logical op ids) -> True to replan.
CheckpointHook = Callable[[Monitor, set[int]], bool]


class JobCancelled(RuntimeError):
    """Raised by a cancellation hook to abandon a job between stages.

    The executor calls its ``cancel_check`` at every stage boundary (top
    level and inside loop bodies) — *outside* any attempt's buffered
    scratch state, so a cancelled job leaves every committed stage intact
    and nothing half-done behind: the shared plan cache, metrics and
    monitor stay consistent.  The job server maps this to the ``timeout``
    (deadline exceeded) job state.
    """


class ReplanRequested(Exception):
    """Raised when a checkpoint decides the remainder must be re-optimized.

    Carries everything the progressive optimizer needs to resume.
    """

    def __init__(self, state: "PausedExecution") -> None:
        super().__init__("progressive re-optimization requested")
        self.state = state


@dataclass
class PausedExecution:
    """Materialized state of a paused job."""

    materialized: dict[int, Channel]  # logical op id -> output channel
    completed_logical_ids: set[int]
    tracker: CriticalPathTracker
    monitor: Monitor
    started_platforms: set[str]


@dataclass
class Sniffer:
    """Exploratory-mode tap on a logical operator's output.

    The callback receives the operator's output payload each time it is
    produced; the multiplexing/socket work is charged at ``cost_factor``
    times the platform's per-record cost.
    """

    logical_id: int
    callback: Callable[[Any], None]
    cost_factor: float = 0.5


@dataclass
class ExecutionResult:
    """Outcome of a job."""

    outputs: list[Any]
    runtime: float
    tracker: CriticalPathTracker
    monitor: Monitor
    stage_count: int
    platforms: set[str] = field(default_factory=set)
    #: Static-analysis findings for the plan that produced this result
    #: (:class:`repro.analysis.Diagnostic` objects; empty when analysis
    #: was disabled).
    diagnostics: list = field(default_factory=list)

    @property
    def output(self) -> Any:
        return self.outputs[0]


class Executor:
    """Runs execution plans on the registered platforms."""

    def __init__(
        self,
        cluster: VirtualCluster,
        conversion_graph: ChannelConversionGraph,
        pgres: Any = None,
        config: dict[str, Any] | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        cancel_check: Callable[[], None] | None = None,
    ) -> None:
        self.cluster = cluster
        self.graph = conversion_graph
        self.pgres = pgres
        self.config = dict(config or {})
        self.tracer = tracer or NO_TRACER
        self.metrics = metrics or MetricsRegistry()
        #: Cooperative cancellation hook, called at every stage boundary;
        #: raises (e.g. :class:`JobCancelled`) to abandon the job cleanly.
        self.cancel_check = cancel_check
        #: Wall-clock seconds to dwell per executed stage, emulating the
        #: driver-to-platform round trip a real deployment waits through
        #: (``config["stage_wall_s"]``; the concurrency benchmark uses it
        #: to model remote-platform latency that worker threads overlap).
        self._stage_wall_s = float(self.config.get("stage_wall_s", 0.0))
        #: descriptor name -> (graph version, driver-collection path); loop
        #: conditions materialize the loop variable every iteration, so the
        #: path is resolved once per descriptor instead of per check.
        self._collect_paths: dict[str, tuple[int, ConversionPath]] = {}

    # ----------------------------------------------------------- execution
    def execute(
        self,
        plan: ExecutionPlan,
        estimates: dict[int, CardinalityEstimate] | None = None,
        monitor: Monitor | None = None,
        tracker: CriticalPathTracker | None = None,
        checkpoint: CheckpointHook | None = None,
        sniffers: Sequence[Sniffer] = (),
        started_platforms: set[str] | None = None,
        initial_env: dict[int, Channel] | None = None,
        fault_injector=None,
        max_stage_retries: int = 2,
        stage_breaks: set[int] = frozenset(),
        parallelize_stages: bool = True,
    ) -> ExecutionResult:
        """Run ``plan`` to completion (or to a checkpoint pause).

        Failed stages (simulated crashes from ``fault_injector``) are re-run
        from their materialized inputs up to ``max_stage_retries`` times —
        the cross-platform fault tolerance of :mod:`repro.core.faults`.
        The injector and retry bound live only on this call's stack: a
        raised :class:`PlatformFailure` or :class:`ReplanRequested` cannot
        leave a stale injector armed for a later ``execute()`` on the same
        executor (the progressive-optimizer resume path reuses it).

        Raises:
            ReplanRequested: If the ``checkpoint`` hook asks for
                re-optimization after some stage.
            PlatformFailure: If a stage keeps crashing past the retry bound.
        """
        max_retries = max_stage_retries if fault_injector else 0
        monitor = monitor or Monitor(estimates=dict(estimates or {}),
                                     metrics=self.metrics)
        tracker = tracker or CriticalPathTracker()
        started = started_platforms if started_platforms is not None else set()
        ctx = ExecutionContext(cluster=self.cluster, pgres=self.pgres,
                               monitor=monitor, config=dict(self.config))
        env: dict[int, Channel] = dict(initial_env or {})
        conversion_cache: dict[tuple, Channel] = {}
        sniffer_map: dict[int, list[Sniffer]] = {}
        for sniffer in sniffers:
            sniffer_map.setdefault(sniffer.logical_id, []).append(sniffer)

        stages = plan.build_stages(break_after=stage_breaks)
        stage_of = {task.id: stage.id
                    for stage in stages for task in stage.tasks}
        crossing: set[int] = set(t.id for t in plan.sink_tasks)
        for task in plan.tasks:
            for ti in task.inputs + task.broadcast_inputs:
                if stage_of.get(ti.producer.id) != stage_of.get(task.id):
                    crossing.add(ti.producer.id)
        completed_logical: set[int] = set()
        previous_stage_id: str | None = None
        with self.tracer.span("executor.run", stages=len(stages)) as run_span:
            for index, stage in enumerate(stages):
                deps = sorted(stage.dependencies)
                if not parallelize_stages and previous_stage_id is not None:
                    # The paper's "stage parallelization" switch: with it
                    # off, stages run strictly one after another (used for
                    # the single-platform baseline measurements).
                    deps = sorted(set(deps) | {previous_stage_id})
                timing = self._run_stage_with_retries(
                    stage, stage.id, deps, env, ctx,
                    conversion_cache, tracker, started, sniffer_map, monitor,
                    injector=fault_injector, max_retries=max_retries,
                    crossing=crossing, completed_logical=completed_logical)
                previous_stage_id = timing.stage_id
                remaining = stages[index + 1:]
                if checkpoint is not None and remaining:
                    if checkpoint(monitor, set(completed_logical)):
                        run_span.set("paused_after", stage.id)
                        raise ReplanRequested(PausedExecution(
                            materialized=self._materialized(plan, env),
                            completed_logical_ids=set(completed_logical),
                            tracker=tracker,
                            monitor=monitor,
                            started_platforms=started,
                        ))
            run_span.set("sim_makespan", tracker.makespan)

        outputs = [env[t.id].payload for t in plan.sink_tasks]
        return ExecutionResult(
            outputs=outputs,
            runtime=tracker.makespan,
            tracker=tracker,
            monitor=monitor,
            stage_count=len(stages),
            platforms=plan.platforms(),
        )

    # -------------------------------------------------------------- stages
    def _run_stage_with_retries(self, stage, label, deps, env, ctx, cache,
                                tracker, started, sniffer_map, monitor,
                                injector=None, max_retries=0,
                                crossing=None, completed_logical=None):
        """Run one stage, retrying on injected platform failures.

        Wasted attempts are recorded on the critical path (the cluster paid
        for them); the successful attempt chains after the last failure.

        Every attempt runs against *buffered* state — a scratch channel
        environment, conversion cache, monitor and sniffer queue — that is
        committed only when the attempt survives the fault injector.  A
        crashed attempt therefore leaves nothing behind except its
        critical-path charge: no half-completed operators for a later
        checkpoint to hand the progressive optimizer, no phantom monitor
        observations polluting the cost learner's calibration log, and no
        double-delivered sniffer payloads.
        """
        from .faults import PlatformFailure

        if self.cancel_check is not None:
            # Stage boundary: the only cancellation point, deliberately
            # outside the attempt scratch state below — a cancelled job
            # keeps every committed stage and abandons nothing half-done.
            self.cancel_check()
        attempt = 0
        previous_attempt_id = None
        with self.tracer.span(f"stage:{label}",
                              platform=stage.platform) as stage_span:
            while True:
                meter = CostMeter()
                attempt_env = dict(env)
                attempt_cache = dict(cache)
                attempt_completed: set[int] = set()
                memory_demands: list[tuple[str, float]] = []
                pending_sniffs: list[tuple[list[Sniffer], Any, Channel]] = []
                observations: list[OperatorObservation] = []
                saved_meter, saved_monitor = ctx.meter, ctx.monitor
                scratch = Monitor() if saved_monitor is not None else None
                ctx.meter, ctx.monitor = meter, scratch
                with self.tracer.span(f"attempt{attempt}") as attempt_span:
                    try:
                        self._charge_stage_overheads(stage, meter, started)
                        for task in stage.tasks:
                            self._execute_task(
                                task, attempt_env, ctx, attempt_cache,
                                tracker, started, sniffer_map,
                                parent_stage=stage, observations=observations,
                                pending_sniffs=pending_sniffs,
                                injector=injector, max_retries=max_retries)
                            if task.logical_id is not None:
                                attempt_completed.add(task.logical_id)
                            # Within-stage outputs are pipelined; only data
                            # materialized at a stage boundary occupies the
                            # platform's memory.
                            out = attempt_env[task.id]
                            if (crossing is not None and task.id in crossing
                                    and out.actual_count is not None
                                    and out.descriptor.in_memory
                                    and task.platform in self.cluster.profiles):
                                memory_demands.append(
                                    (task.platform, out.sim_mb))
                    finally:
                        ctx.meter, ctx.monitor = saved_meter, saved_monitor
                    attempt_deps = (list(deps) if previous_attempt_id is None
                                    else [previous_attempt_id])
                    failed = (injector is not None
                              and injector.should_fail(label, attempt))
                    attempt_span.set("failed", failed)
                    attempt_span.set("sim_seconds", meter.total)
                self.metrics.counter("executor.attempts").inc()
                if failed:
                    if attempt >= max_retries:
                        raise PlatformFailure(label, attempt)
                    # Discard the attempt's buffered state; only the
                    # critical-path charge survives.
                    self.metrics.counter("executor.retries_wasted").inc()
                    previous_attempt_id = f"{label}.attempt{attempt}"
                    tracker.record(previous_attempt_id, attempt_deps, meter)
                    attempt += 1
                    continue
                # Commit: the attempt survived, so its state becomes real.
                for platform, needed_mb in memory_demands:
                    self.cluster.check_memory(platform, needed_mb)
                env.update(attempt_env)
                cache.update(attempt_cache)
                if completed_logical is not None:
                    completed_logical |= attempt_completed
                if saved_monitor is not None and scratch is not None:
                    saved_monitor.absorb(scratch)
                for sniffers, op, out in pending_sniffs:
                    self._sniff(sniffers, op, out, meter)
                timing = tracker.record(label, attempt_deps, meter)
                stage_span.set("attempts", attempt + 1)
                stage_span.set("sim_seconds", meter.total)
                self.metrics.counter("executor.stages").inc()
                if monitor is not None:
                    monitor.record_stage(timing, stage.platform, observations)
                if self._stage_wall_s > 0.0:
                    time.sleep(self._stage_wall_s)
                return timing

    # --------------------------------------------------------------- tasks
    def _execute_task(self, task, env, ctx, cache, tracker, started,
                      sniffer_map, parent_stage,
                      observations: list | None = None,
                      pending_sniffs: list | None = None,
                      injector=None, max_retries=0) -> None:
        op = task.operator
        if isinstance(op, LoopBodySource):
            if task.id not in env:
                raise RuntimeError(f"loop input {task} was never primed")
            return
        inputs = [self._convert(env[ti.producer.id], ti.conversion, ctx,
                                cache, ti.producer.id)
                  for ti in task.inputs]
        broadcasts = [self._convert(env[ti.producer.id], ti.conversion, ctx,
                                    cache, ti.producer.id)
                      for ti in task.broadcast_inputs]
        if isinstance(op, LoopImplementation):
            out = self._run_loop(op, inputs, ctx, tracker, started,
                                 parent_stage, injector=injector,
                                 max_retries=max_retries)
        else:
            out = op.execute(inputs, broadcasts, ctx)
            ctx.record_output(op, out)
            if observations is not None:
                cin = sum(ch.sim_cardinality for ch in inputs
                          if ch.actual_count is not None)
                cout = (out.sim_cardinality
                        if out.actual_count is not None else 0.0)
                observations.append(OperatorObservation(
                    op.platform, op.op_kind, op.work(), cin, cout))
            logical_id = task.logical_id
            if logical_id in sniffer_map and out.actual_count is not None:
                # Deferred to commit time: a crashed attempt never produced
                # observable data, so its sniffers must stay silent.
                if pending_sniffs is not None:
                    pending_sniffs.append((sniffer_map[logical_id], op, out))
                else:
                    self._sniff(sniffer_map[logical_id], op, out, ctx.meter)
        env[task.id] = out

    def _sniff(self, sniffers, op, channel: Channel, meter: CostMeter) -> None:
        platform = op.platform
        profile = (self.cluster.profile(platform)
                   if platform in self.cluster.profiles else None)
        for sniffer in sniffers:
            sniffer.callback(channel.payload)
            if profile is not None:
                meter.charge(
                    profile.cpu_seconds(channel.sim_cardinality,
                                        sniffer.cost_factor),
                    f"sniffer[{op.name}]", category="cpu")

    def _convert(self, channel: Channel, path: ConversionPath, ctx,
                 cache, producer_id: int) -> Channel:
        current = channel
        key: tuple = (producer_id,)
        for step in path.steps:
            key = key + (step.name,)
            if key in cache:
                current = cache[key]
            else:
                with self.tracer.span(f"convert:{step.name}"):
                    current = step.apply(current, ctx)
                self.metrics.counter("executor.conversions").inc()
                cache[key] = current
        return current

    def _charge_stage_overheads(self, stage: ExecutionStage, meter: CostMeter,
                                started: set[str]) -> None:
        if stage.platform == DRIVER_PLATFORM:
            return
        if stage.platform not in self.cluster.profiles:
            return
        profile = self.cluster.profile(stage.platform)
        if stage.platform not in started:
            meter.charge(profile.startup_s, f"{stage.platform}.startup",
                         category="overhead")
            self.metrics.counter("executor.platform_startups").inc()
            started.add(stage.platform)
        fraction = max((t.operator.tasks_fraction(profile)
                        for t in stage.tasks
                        if not isinstance(t.operator, LoopImplementation)),
                       default=1.0)
        meter.charge(profile.stage_overhead_s * fraction,
                     f"{stage.platform}.dispatch", category="overhead")

    # --------------------------------------------------------------- loops
    def _run_loop(self, impl: LoopImplementation, inputs: list[Channel],
                  ctx, tracker, started, parent_stage,
                  injector=None, max_retries=0) -> Channel:
        loop = impl.logical
        channels = list(inputs)
        body_stages = impl.body_plan.build_stages()
        iteration = 0
        # The parent (driver) stage is recorded only after the loop ends, so
        # the first iteration chains off the loop's producer stages instead.
        initial_deps = sorted(parent_stage.dependencies)
        last_tail: str | None = None
        max_iterations = (loop.iterations if isinstance(loop, RepeatLoop)
                          else loop.max_iterations)
        while iteration < max_iterations:
            env: dict[int, Channel] = {}
            cache: dict[tuple, Channel] = {}
            for k, task in enumerate(impl.body_input_tasks):
                if task is not None:
                    env[task.id] = channels[k]
            sniffer_map: dict[int, list[Sniffer]] = {}
            prefix = f"{parent_stage.id}.loop{impl.id}.it{iteration}"
            for stage in body_stages:
                deps = [f"{prefix}.{d}" for d in sorted(stage.dependencies)]
                deps.extend([last_tail] if last_tail is not None
                            else initial_deps)
                self._run_stage_with_retries(
                    stage, f"{prefix}.{stage.id}", deps, env, ctx, cache,
                    tracker, started, sniffer_map, ctx.monitor,
                    injector=injector, max_retries=max_retries)
            if body_stages:
                last_tail = f"{prefix}.{body_stages[-1].id}"
            loop_var = env[impl.body_plan.sink_tasks[0].id]
            iteration += 1
            done = iteration >= max_iterations
            if isinstance(loop, DoWhileLoop) and not done:
                values = self._materialize_payload(loop_var, ctx)
                done = not loop.condition(values)
            if done:
                # The loop's external output keeps the body's channel type;
                # the feedback conversion only runs between iterations.
                return loop_var
            channels[0] = impl.feedback_conversion.apply(loop_var, ctx)
        return channels[0]

    def _materialize_payload(self, channel: Channel, ctx) -> list[Any]:
        """Driver-side view of a channel's records (for loop conditions)."""
        from ..platforms.pystreams.channels import PY_COLLECTION

        if channel.descriptor == PY_COLLECTION:
            return channel.payload
        name = channel.descriptor.name
        cached = self._collect_paths.get(name)
        if cached is None or cached[0] != self.graph.version:
            path = self.graph.cheapest_path(
                channel.descriptor, PY_COLLECTION,
                channel.sim_cardinality if channel.actual_count is not None
                else 0,
                channel.bytes_per_record)
            self._collect_paths[name] = (self.graph.version, path)
        else:
            path = cached[1]
        return path.apply(channel, ctx).payload

    # ---------------------------------------------------------- checkpoint
    @staticmethod
    def _materialized(plan: ExecutionPlan, env: dict[int, Channel]
                      ) -> dict[int, Channel]:
        """Latest materialized channel per completed logical operator."""
        out: dict[int, Channel] = {}
        for task in plan.tasks:
            if task.id in env and task.logical_id is not None:
                out[task.logical_id] = env[task.id]
        return out
