"""The executor (Section 4.2 of the paper).

Cuts the execution plan into stages, dispatches every *ready* stage onto
a bounded pool of worker lanes (:mod:`repro.core.scheduler`), drives
loops (pausing at loop heads to evaluate the condition), applies channel
conversions at stage boundaries, and aggregates simulated time along the
critical path.  Inter-platform parallelism is therefore real in
wall-clock terms: independent stages overlap their ``stage_wall_s``
driver-to-platform dwell, while commits stay serialized in stage-list
order so outputs, monitor contents and the simulated makespan are
bit-for-bit identical to a serial run (``stage_parallelism=1``).

The executor also implements:

* **optimization checkpoints** — after every stage (our stage outputs are
  always data at rest), an optional hook inspects the monitor; a truthy
  return pauses the job and raises :class:`ReplanRequested` carrying the
  materialized state, which the progressive optimizer consumes;
* **exploratory mode** — sniffers attached to logical operators observe
  the data flowing past them at a simulated multiplexing cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..concurrency import OrderedLock
from ..simulation.clock import CostMeter, CriticalPathTracker
from ..simulation.cluster import VirtualCluster
from ..trace import NO_TRACER, MetricsRegistry
from ..trace.spans import Span
from .cardinality import CardinalityEstimate
from .channels import Channel, ChannelConversionGraph, ConversionPath
from .execution import (
    DRIVER_PLATFORM,
    ExecutionContext,
    ExecutionPlan,
    ExecutionStage,
    ExecutionTask,
    LoopImplementation,
)
from .monitor import Monitor, OperatorObservation
from .operators import DoWhileLoop, RepeatLoop
from .optimizer import LoopBodySource
from .resultstore import IntermediateResultStore
from .scheduler import StageScheduler

#: Checkpoint hook: (monitor, completed logical op ids) -> True to replan.
CheckpointHook = Callable[[Monitor, set[int]], bool]


def _sniffable(payload: Any) -> Any:
    """Plain records for sniffer callbacks, whatever the representation.

    Vectorized channels carry a :class:`RecordBatch` (or one per
    partition); sniffers were written against the per-record engines and
    must keep seeing the same record lists.
    """
    from .batch import RecordBatch

    if isinstance(payload, RecordBatch):
        return payload.to_records()
    if (isinstance(payload, list) and payload
            and all(isinstance(b, RecordBatch) for b in payload)):
        return [r for b in payload for r in b.to_records()]
    return payload


class JobCancelled(RuntimeError):
    """Raised by a cancellation hook to abandon a job between stages.

    The executor calls its ``cancel_check`` at every stage boundary (top
    level and inside loop bodies) — *outside* any attempt's buffered
    scratch state, so a cancelled job leaves every committed stage intact
    and nothing half-done behind: the shared plan cache, metrics and
    monitor stay consistent.  The job server maps this to the ``timeout``
    (deadline exceeded) job state.
    """


class ReplanRequested(Exception):
    """Raised when a checkpoint decides the remainder must be re-optimized.

    Carries everything the progressive optimizer needs to resume.
    """

    def __init__(self, state: "PausedExecution") -> None:
        super().__init__("progressive re-optimization requested")
        self.state = state


@dataclass
class PausedExecution:
    """Materialized state of a paused job."""

    materialized: dict[int, Channel]  # logical op id -> output channel
    completed_logical_ids: set[int]
    tracker: CriticalPathTracker
    monitor: Monitor
    started_platforms: set[str]


@dataclass
class Sniffer:
    """Exploratory-mode tap on a logical operator's output.

    The callback receives the operator's output payload each time it is
    produced; the multiplexing/socket work is charged at ``cost_factor``
    times the platform's per-record cost.
    """

    logical_id: int
    callback: Callable[[Any], None]
    cost_factor: float = 0.5


@dataclass
class ExecutionResult:
    """Outcome of a job."""

    outputs: list[Any]
    runtime: float
    tracker: CriticalPathTracker
    monitor: Monitor
    stage_count: int
    platforms: set[str] = field(default_factory=set)
    #: Static-analysis findings for the plan that produced this result
    #: (:class:`repro.analysis.Diagnostic` objects; empty when analysis
    #: was disabled).
    diagnostics: list = field(default_factory=list)
    #: Whether this run's stage observations may feed online cost-model
    #: calibration.  Mirrors the result-store bypass: sniffer and
    #: fault-injection runs measure exploratory or perturbed executions,
    #: not production cost truth.
    calibration_ok: bool = False

    @property
    def output(self) -> Any:
        return self.outputs[0]


class _StageRecorder:
    """Buffers critical-path records until the owning stage commits.

    A stage's wasted retry attempts and its loop-body stages must appear
    on the simulated critical path — but only if the stage commits.  The
    recorder resolves dependency end times from its own buffered records
    first, then (under the job lock) from the already committed tracker,
    so the timings it hands back during compute are numerically identical
    to what :meth:`replay` later inserts for real.
    """

    __slots__ = ("_base", "_lock", "_local", "_records")

    def __init__(self, base: CriticalPathTracker, lock: OrderedLock) -> None:
        self._base = base
        self._lock = lock
        self._local: dict[str, float] = {}
        self._records: list[tuple[str, list[str], CostMeter]] = []

    def seed(self, stage_id: str, end: float) -> None:
        """Pre-resolve a producer's end time (its outcome's ``sim_end``).

        A stage may compute before its producers *commit*; seeding makes
        the producers' (deterministic) simulated end times resolvable
        without consulting the shared tracker.
        """
        self._local[stage_id] = end

    def _end_of(self, dep: str) -> float | None:
        end = self._local.get(dep)
        if end is None:
            with self._lock:
                end = self._base.end_of(dep)
        return end

    def end_for(self, dependencies: list[str], meter: CostMeter) -> float:
        """The end time :meth:`CriticalPathTracker.record` will compute
        for a stage with these dependencies — without buffering it."""
        start = 0.0
        for dep in dependencies:
            end = self._end_of(dep)
            if end is not None:
                start = max(start, end)
        return start + meter.total

    def record(self, stage_id: str, dependencies: list[str],
               meter: CostMeter):
        from ..simulation.clock import StageTiming

        start = 0.0
        for dep in dependencies:
            end = self._end_of(dep)
            if end is not None:
                start = max(start, end)
        timing = StageTiming(stage_id, start, meter.total, meter)
        self._local[stage_id] = timing.end
        self._records.append((stage_id, list(dependencies), meter))
        return timing

    def replay(self, tracker: CriticalPathTracker) -> None:
        """Insert the buffered records for real (caller holds the lock)."""
        for stage_id, dependencies, meter in self._records:
            tracker.record(stage_id, dependencies, meter)


@dataclass
class _StageOutcome:
    """Everything one stage's surviving attempt buffered for commit."""

    label: str
    platform: str
    span: Span
    env: dict[int, Channel]
    cache: dict[tuple, Channel]
    completed: set[int]
    scratch: Monitor | None
    pending_sniffs: list[tuple[list[Sniffer], Any, Channel]]
    observations: list[OperatorObservation]
    memory_demands: list[tuple[str, float]]
    started: set[str]
    final_deps: list[str]
    meter: CostMeter
    attempts: int
    recorder: _StageRecorder
    #: Simulated end time the tracker will assign at commit — seeds the
    #: recorders of dependents that compute before this stage commits.
    sim_end: float = 0.0


class Executor:
    """Runs execution plans on the registered platforms."""

    def __init__(
        self,
        cluster: VirtualCluster,
        conversion_graph: ChannelConversionGraph,
        pgres: Any = None,
        config: dict[str, Any] | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        cancel_check: Callable[[], None] | None = None,
        result_store: IntermediateResultStore | None = None,
    ) -> None:
        self.cluster = cluster
        self.graph = conversion_graph
        self.pgres = pgres
        self.config = dict(config or {})
        #: Cross-job intermediate-result store; committed stage outputs
        #: are offered to it when ``execute(publish_results=True)``.
        self.result_store = result_store
        self.tracer = tracer or NO_TRACER
        self.metrics = metrics or MetricsRegistry()
        #: Cooperative cancellation hook, called at every stage boundary;
        #: raises (e.g. :class:`JobCancelled`) to abandon the job cleanly.
        self.cancel_check = cancel_check
        #: Wall-clock seconds to dwell per executed stage *attempt*,
        #: emulating the driver-to-platform round trip a real deployment
        #: waits through (``config["stage_wall_s"]``; concurrent stage
        #: lanes overlap it, which is what the stage-parallelism
        #: benchmark measures).
        self._stage_wall_s = float(self.config.get("stage_wall_s", 0.0))
        #: descriptor name -> (graph version, driver-collection path); loop
        #: conditions materialize the loop variable every iteration, so the
        #: path is resolved once per descriptor instead of per check.
        #: Benign under concurrency: a race recomputes the same path.
        self._collect_paths: dict[str, tuple[int, ConversionPath]] = {}

    # ----------------------------------------------------------- execution
    def execute(
        self,
        plan: ExecutionPlan,
        estimates: dict[int, CardinalityEstimate] | None = None,
        monitor: Monitor | None = None,
        tracker: CriticalPathTracker | None = None,
        checkpoint: CheckpointHook | None = None,
        sniffers: Sequence[Sniffer] = (),
        started_platforms: set[str] | None = None,
        initial_env: dict[int, Channel] | None = None,
        fault_injector=None,
        max_stage_retries: int = 2,
        stage_breaks: set[int] = frozenset(),
        parallelize_stages: bool = True,
        publish_results: bool = False,
    ) -> ExecutionResult:
        """Run ``plan`` to completion (or to a checkpoint pause).

        Ready stages (all producers computed) are dispatched onto up
        to ``config["stage_parallelism"]`` worker lanes (default: the
        stage DAG's critical-path width, capped by the server's
        ``stage_parallelism_cap`` thread budget).  Commits are applied in
        stage-list order, so every observable effect — outputs, monitor
        contents, sniffer delivery, checkpoint barriers, the simulated
        makespan — matches the serial run exactly; only wall-clock time
        changes.  ``parallelize_stages=False`` keeps the paper's serial
        baseline, additionally chaining each stage after its predecessor
        on the simulated critical path.

        Failed stages (simulated crashes from ``fault_injector``) are re-run
        from their materialized inputs up to ``max_stage_retries`` times —
        the cross-platform fault tolerance of :mod:`repro.core.faults`.
        The injector and retry bound live only on this call's stack: a
        raised :class:`PlatformFailure` or :class:`ReplanRequested` cannot
        leave a stale injector armed for a later ``execute()`` on the same
        executor (the progressive-optimizer resume path reuses it).

        Raises:
            ReplanRequested: If the ``checkpoint`` hook asks for
                re-optimization after some stage.
            PlatformFailure: If a stage keeps crashing past the retry
                bound.  Dependent stages that were not yet dispatched are
                cancelled; in-flight lanes drain and their buffered
                outcomes are discarded.
        """
        max_retries = max_stage_retries if fault_injector else 0
        monitor = monitor or Monitor(estimates=dict(estimates or {}),
                                     metrics=self.metrics)
        tracker = tracker or CriticalPathTracker()
        started = started_platforms if started_platforms is not None else set()
        env: dict[int, Channel] = dict(initial_env or {})
        conversion_cache: dict[tuple, Channel] = {}
        sniffer_map: dict[int, list[Sniffer]] = {}
        for sniffer in sniffers:
            sniffer_map.setdefault(sniffer.logical_id, []).append(sniffer)

        stages = plan.build_stages(break_after=stage_breaks)
        crossing = self._crossing_ids(plan, stages)
        completed_logical: set[int] = set()
        deps_of: dict[str, list[str]] = {}
        previous_stage_id: str | None = None
        for stage in stages:
            deps = sorted(stage.dependencies)
            if not parallelize_stages and previous_stage_id is not None:
                # The paper's "stage parallelization" switch: with it
                # off, stages run strictly one after another (used for
                # the single-platform baseline measurements).
                deps = sorted(set(deps) | {previous_stage_id})
            deps_of[stage.id] = deps
            previous_stage_id = stage.id
        parallelism = (1 if not parallelize_stages
                       else self._stage_parallelism(plan, stages))
        # Deterministic charge owners, frozen before anything runs: the
        # stage that would pay in a serial run pays in every run.
        startup_owners = self._startup_owners(stages, started)
        conversion_owners = (self._conversion_owners(stages)
                             if parallelism > 1 else None)
        offers = (self._publish_offers(plan, stages, crossing)
                  if publish_results else {})
        job_lock = OrderedLock("executor.job", self.metrics)

        with self.tracer.span("executor.run", stages=len(stages),
                              parallelism=parallelism) as run_span:

            def compute(index: int, stage: ExecutionStage, lane: int,
                        producers: Sequence[_StageOutcome]):
                recorder = _StageRecorder(tracker, job_lock)
                for producer in producers:
                    recorder.seed(producer.label, producer.sim_end)
                return self._compute_stage(
                    stage, stage.id, deps_of[stage.id], env, conversion_cache,
                    monitor_present=True, sniffer_map=sniffer_map,
                    crossing=crossing, recorder=recorder,
                    stage_started=set(), startup_owners=startup_owners,
                    owner_key=stage.id, conversion_owners=conversion_owners,
                    producers=producers,
                    injector=fault_injector, max_retries=max_retries,
                    job_lock=job_lock, lane=lane, parent_span=run_span)

            def commit(index: int, stage: ExecutionStage,
                       outcome: _StageOutcome) -> None:
                with job_lock:
                    outcome.recorder.replay(tracker)
                    self._apply_outcome(outcome, env, conversion_cache,
                                        monitor, completed_logical, tracker)
                    started.update(outcome.started)
                # Publication happens only here, at the top-level commit
                # cursor — loop-body stages commit through _apply_outcome
                # directly and never publish; crashed attempts were
                # discarded before reaching a commit.  ``sim_end`` is the
                # stage's simulated critical-path end: the cumulative cost
                # of (re)computing the published data.
                if outcome.label in offers:
                    store = self.result_store
                    for task_id, key in offers[outcome.label]:
                        channel = outcome.env.get(task_id)
                        if (store is not None and channel is not None
                                and channel.actual_count is not None):
                            store.offer(key, channel,
                                        recompute_s=outcome.sim_end)
                # Checkpoint barrier: evaluated at the commit cursor, i.e.
                # in deterministic stage order, with every earlier stage
                # committed and no later one.
                if checkpoint is not None and index < len(stages) - 1:
                    if checkpoint(monitor, set(completed_logical)):
                        run_span.set("paused_after", stage.id)
                        raise ReplanRequested(PausedExecution(
                            materialized=self._materialized(plan, env),
                            completed_logical_ids=set(completed_logical),
                            tracker=tracker,
                            monitor=monitor,
                            started_platforms=started,
                        ))

            StageScheduler(stages, deps_of, parallelism, compute, commit,
                           metrics=self.metrics).run()
            run_span.set("sim_makespan", tracker.makespan)

        outputs = [env[t.id].payload for t in plan.sink_tasks]
        return ExecutionResult(
            outputs=outputs,
            runtime=tracker.makespan,
            tracker=tracker,
            monitor=monitor,
            stage_count=len(stages),
            platforms=set(started),
            # The calibration hygiene predicate, mirrored from the
            # result-store bypass: exploratory (sniffed) and perturbed
            # (fault-injected) runs must never teach the cost model.
            calibration_ok=(not sniffers and fault_injector is None),
        )

    # ------------------------------------------------------- result reuse
    def _publish_offers(self, plan: ExecutionPlan,
                        stages: list[ExecutionStage],
                        crossing: set[int]) -> dict[str, list[tuple]]:
        """stage id -> ``[(task id, store key), ...]`` to offer at commit.

        Candidates are the *final* task of each reuse-keyed logical
        operator (an operator may map to a chain of execution tasks; only
        the chain's last output is the operator's result).  Per stage we
        offer every candidate materialized at a stage boundary plus the
        stage's last in-stage candidate — the output downstream jobs are
        most likely to reuse (typically the channel feeding a sink).
        Outputs of :class:`~repro.core.optimizer.CachedResultExec` tasks
        are offered too, but the store only refreshes their recency (the
        key is already resident).
        """
        store = self.result_store
        reuse_keys = getattr(plan, "reuse_keys", {})
        if store is None or not store.enabled or not reuse_keys:
            return {}
        final: dict[int, int] = {}
        for task in plan.tasks:
            lid = task.logical_id
            if lid is not None and lid in reuse_keys:
                final[lid] = task.id
        keyed = {task_id: reuse_keys[lid] for lid, task_id in final.items()}
        offers: dict[str, list[tuple]] = {}
        for stage in stages:
            per: list[tuple] = []
            tail: tuple | None = None
            for task in stage.tasks:
                key = keyed.get(task.id)
                if key is None:
                    continue
                if task.id in crossing:
                    per.append((task.id, key))
                else:
                    tail = (task.id, key)
            if tail is not None and tail not in per:
                per.append(tail)
            if per:
                offers[stage.id] = per
        return offers

    # ------------------------------------------------------------ topology
    @staticmethod
    def _crossing_ids(plan: ExecutionPlan,
                      stages: list[ExecutionStage]) -> set[int]:
        """Task ids whose outputs are materialized at a stage boundary."""
        stage_of = {task.id: stage.id
                    for stage in stages for task in stage.tasks}
        crossing: set[int] = set(t.id for t in plan.sink_tasks)
        for task in plan.tasks:
            for ti in task.inputs + task.broadcast_inputs:
                if stage_of.get(ti.producer.id) != stage_of.get(task.id):
                    crossing.add(ti.producer.id)
        return crossing

    #: Ceiling on the adaptive lane default: beyond this, extra threads
    #: only add hand-off latency on commodity hosts (explicit
    #: ``stage_parallelism`` config is not subject to it).
    ADAPTIVE_LANE_CEILING = 8

    def _stage_parallelism(self, plan: ExecutionPlan,
                           stages: list[ExecutionStage]) -> int:
        """Resolve the lane count for this plan.

        ``config["stage_parallelism"]`` wins; otherwise the lane count
        adapts to the stage DAG itself: the maximum width of its
        critical-path levels (:meth:`_dag_width`) — how many stages can
        ever be ready simultaneously.  A linear chain gets one lane
        (threads would only add hand-off latency), a wide fan-in gets
        one lane per concurrent branch.  The adaptive default is capped
        at :attr:`ADAPTIVE_LANE_CEILING`; the server's thread budget
        (``stage_parallelism_cap``) bounds both paths.
        """
        requested = self.config.get("stage_parallelism")
        if requested is None:
            requested = min(self._dag_width(stages),
                            self.ADAPTIVE_LANE_CEILING)
        requested = max(1, int(requested))
        cap = self.config.get("stage_parallelism_cap")
        if cap is not None:
            requested = min(requested, max(1, int(cap)))
        return min(requested, max(1, len(stages)))

    @staticmethod
    def _dag_width(stages: list[ExecutionStage]) -> int:
        """Maximum number of stages sharing a critical-path level.

        Level of a stage = 1 + the deepest of its dependencies' levels
        (computed in one pass — ``build_stages`` emits topological
        order).  The widest level is an upper estimate of how many lanes
        the scheduler can ever keep busy at once.
        """
        level: dict[str, int] = {}
        width: dict[int, int] = {}
        for stage in stages:
            lvl = 1 + max((level.get(dep, 0) for dep in stage.dependencies),
                          default=0)
            level[stage.id] = lvl
            width[lvl] = width.get(lvl, 0) + 1
        return max(width.values(), default=1)

    @staticmethod
    def _stage_platforms(stage: ExecutionStage) -> list[str]:
        """Non-driver platforms a stage touches (loop bodies included)."""
        platforms: list[str] = []
        if stage.platform != DRIVER_PLATFORM:
            platforms.append(stage.platform)
        for task in stage.tasks:
            if isinstance(task.operator, LoopImplementation):
                platforms.extend(sorted(task.operator.body_plan.platforms()))
        return platforms

    def _startup_owners(self, stages: list[ExecutionStage],
                        already_started: set[str]) -> dict[str, str]:
        """platform -> id of the stage that pays its startup cost.

        The owner is the first stage in list order that uses the platform
        (directly or via a loop body) — exactly the stage that paid in
        the serial executor — so the charge lands on the same stage's
        meter no matter how computes interleave.
        """
        owners: dict[str, str] = {}
        for stage in stages:
            for platform in self._stage_platforms(stage):
                if platform not in already_started:
                    owners.setdefault(platform, stage.id)
        return owners

    @staticmethod
    def _conversion_owners(stages: list[ExecutionStage]
                           ) -> dict[tuple, str]:
        """conversion-cache key -> id of the stage that pays for it.

        Shared conversion prefixes (one producer feeding several stages)
        are charged to the first consumer in stage-list order — the stage
        that would miss the cache in a serial run.  Later consumers reuse
        the committed cache entry, or recompute it *uncharged* when the
        owner has not committed yet.
        """
        owners: dict[tuple, str] = {}
        for stage in stages:
            for task in stage.tasks:
                for ti in task.inputs + task.broadcast_inputs:
                    key: tuple = (ti.producer.id,)
                    for step in ti.conversion.steps:
                        key = key + (step.name,)
                        owners.setdefault(key, stage.id)
        return owners

    # -------------------------------------------------------------- stages
    def _compute_stage(self, stage, label, deps, env, cache, *,
                       monitor_present, sniffer_map, crossing, recorder,
                       stage_started, startup_owners, owner_key,
                       conversion_owners, injector, max_retries, job_lock,
                       producers=(), lane=0, epoch=0,
                       parent_span=None) -> _StageOutcome:
        """Run one stage's attempts against buffered scratch state.

        Retries on injected platform failures up to ``max_retries``;
        wasted attempts are buffered on ``recorder`` (the cluster paid
        for them) and the successful attempt chains after the last
        failure.  Nothing shared is touched except read-only snapshots
        taken under ``job_lock`` — the returned outcome is applied by
        :meth:`_apply_outcome` when the stage commits.  The
        ``stage_wall_s`` dwell is charged per *attempt* (a crashed
        dispatch still pays the round trip).
        """
        from .faults import PlatformFailure

        if self.cancel_check is not None:
            # Stage boundary: the only cancellation point, deliberately
            # outside the attempt scratch state below — a cancelled job
            # keeps every committed stage and abandons nothing half-done.
            self.cancel_check()
        attempt = 0
        previous_attempt_id = None
        handle = (self.tracer.span_under(parent_span, f"stage:{label}",
                                         platform=stage.platform, lane=lane)
                  if parent_span is not None
                  else self.tracer.span(f"stage:{label}",
                                        platform=stage.platform))
        with handle as stage_span:
            while True:
                meter = CostMeter()
                with job_lock:
                    attempt_env = dict(env)
                    attempt_cache = dict(cache)
                # Producers that computed but have not committed yet are
                # not in the shared snapshot; overlay their buffered
                # outcomes (idempotent for committed ones — commit applies
                # the same values).
                for producer in producers:
                    attempt_env.update(producer.env)
                    attempt_cache.update(producer.cache)
                attempt_completed: set[int] = set()
                memory_demands: list[tuple[str, float]] = []
                pending_sniffs: list[tuple[list[Sniffer], Any, Channel]] = []
                observations: list[OperatorObservation] = []
                paid_conversions: set[tuple] = set()
                scratch = Monitor() if monitor_present else None
                # A fresh context per attempt: concurrent stages must not
                # share a mutable meter/monitor pair.
                ctx = ExecutionContext(cluster=self.cluster, meter=meter,
                                       pgres=self.pgres, monitor=scratch,
                                       config=dict(self.config), epoch=epoch)
                with self.tracer.span(f"attempt{attempt}") as attempt_span:
                    self._charge_stage_overheads(stage, meter, stage_started,
                                                 startup_owners, owner_key)
                    for task in stage.tasks:
                        self._execute_task(
                            task, attempt_env, ctx, attempt_cache,
                            sniffer_map, parent_stage=stage,
                            observations=observations,
                            pending_sniffs=pending_sniffs,
                            completed=attempt_completed,
                            recorder=recorder, stage_started=stage_started,
                            startup_owners=startup_owners,
                            owner_key=owner_key,
                            conversion_owners=conversion_owners,
                            paid=paid_conversions,
                            injector=injector, max_retries=max_retries,
                            job_lock=job_lock)
                        if task.logical_id is not None:
                            attempt_completed.add(task.logical_id)
                        # Within-stage outputs are pipelined; only data
                        # materialized at a stage boundary occupies the
                        # platform's memory.
                        out = attempt_env[task.id]
                        if (task.id in crossing
                                and out.actual_count is not None
                                and out.descriptor.in_memory
                                and task.platform in self.cluster.profiles):
                            memory_demands.append(
                                (task.platform, out.sim_mb))
                    attempt_deps = (list(deps) if previous_attempt_id is None
                                    else [previous_attempt_id])
                    failed = (injector is not None
                              and injector.should_fail(label, attempt))
                    attempt_span.set("failed", failed)
                    attempt_span.set("sim_seconds", meter.total)
                self.metrics.counter("executor.attempts").inc()
                if self._stage_wall_s > 0.0:
                    # The driver waits out the platform round trip whether
                    # or not the attempt survives.
                    time.sleep(self._stage_wall_s)
                if failed:
                    if attempt >= max_retries:
                        raise PlatformFailure(label, attempt)
                    # Discard the attempt's buffered state; only the
                    # critical-path charge survives.
                    self.metrics.counter("executor.retries_wasted").inc()
                    previous_attempt_id = f"{label}.attempt{attempt}"
                    recorder.record(previous_attempt_id, attempt_deps, meter)
                    attempt += 1
                    continue
                return _StageOutcome(
                    label=label, platform=stage.platform, span=stage_span,
                    env=attempt_env, cache=attempt_cache,
                    completed=attempt_completed, scratch=scratch,
                    pending_sniffs=pending_sniffs,
                    observations=observations,
                    memory_demands=memory_demands,
                    started=stage_started, final_deps=attempt_deps,
                    meter=meter, attempts=attempt + 1, recorder=recorder,
                    sim_end=recorder.end_for(attempt_deps, meter))

    def _apply_outcome(self, outcome: _StageOutcome, env, cache, monitor,
                       completed, record_via):
        """Commit one stage's buffered outcome (the serial commit order).

        ``record_via`` is the shared tracker for top-level stages (the
        caller holds the job lock and has already replayed the stage's
        buffered recorder) and the parent stage's recorder for loop-body
        stages (which commit into their parent's scratch state).
        """
        for platform, needed_mb in outcome.memory_demands:
            self.cluster.check_memory(platform, needed_mb)
        env.update(outcome.env)
        cache.update(outcome.cache)
        if completed is not None:
            completed |= outcome.completed
        if monitor is not None and outcome.scratch is not None:
            monitor.absorb(outcome.scratch)
        for sniffers, op, out in outcome.pending_sniffs:
            self._sniff(sniffers, op, out, outcome.meter)
        timing = record_via.record(outcome.label, outcome.final_deps,
                                   outcome.meter)
        outcome.span.set("attempts", outcome.attempts)
        outcome.span.set("sim_seconds", outcome.meter.total)
        self.metrics.counter("executor.stages").inc()
        if monitor is not None:
            monitor.record_stage(timing, outcome.platform,
                                 outcome.observations,
                                 vectorize=bool(
                                     self.config.get("vectorize", False)))
        return timing

    # --------------------------------------------------------------- tasks
    def _execute_task(self, task, env, ctx, cache, sniffer_map,
                      parent_stage, *, observations, pending_sniffs,
                      completed, recorder, stage_started, startup_owners,
                      owner_key, conversion_owners, paid,
                      injector=None, max_retries=0, job_lock=None) -> None:
        op = task.operator
        if isinstance(op, LoopBodySource):
            if task.id not in env:
                raise RuntimeError(f"loop input {task} was never primed")
            return
        inputs = [self._convert(env[ti.producer.id], ti.conversion, ctx,
                                cache, ti.producer.id,
                                owners=conversion_owners,
                                owner_key=owner_key, paid=paid)
                  for ti in task.inputs]
        broadcasts = [self._convert(env[ti.producer.id], ti.conversion, ctx,
                                    cache, ti.producer.id,
                                    owners=conversion_owners,
                                    owner_key=owner_key, paid=paid)
                      for ti in task.broadcast_inputs]
        if isinstance(op, LoopImplementation):
            out = self._run_loop(op, inputs, ctx, parent_stage,
                                 recorder=recorder, sniffer_map=sniffer_map,
                                 completed=completed,
                                 stage_started=stage_started,
                                 startup_owners=startup_owners,
                                 owner_key=owner_key,
                                 injector=injector, max_retries=max_retries,
                                 job_lock=job_lock)
        else:
            out = op.execute(inputs, broadcasts, ctx)
            ctx.record_output(op, out)
            if observations is not None:
                cin = sum(ch.sim_cardinality for ch in inputs
                          if ch.actual_count is not None)
                cout = (out.sim_cardinality
                        if out.actual_count is not None else 0.0)
                observations.append(OperatorObservation(
                    op.platform, op.observed_op_kind(inputs, ctx), op.work(),
                    cin, cout))
            logical_id = task.logical_id
            if logical_id in sniffer_map and out.actual_count is not None:
                # Deferred to commit time: a crashed attempt never produced
                # observable data, so its sniffers must stay silent.
                if pending_sniffs is not None:
                    pending_sniffs.append((sniffer_map[logical_id], op, out))
                else:
                    self._sniff(sniffer_map[logical_id], op, out, ctx.meter)
        env[task.id] = out

    def _sniff(self, sniffers, op, channel: Channel, meter: CostMeter) -> None:
        platform = op.platform
        profile = (self.cluster.profile(platform)
                   if platform in self.cluster.profiles else None)
        payload = _sniffable(channel.payload)
        for sniffer in sniffers:
            sniffer.callback(payload)
            if profile is not None:
                meter.charge(
                    profile.cpu_seconds(channel.sim_cardinality,
                                        sniffer.cost_factor),
                    f"sniffer[{op.name}]", category="cpu")

    def _convert(self, channel: Channel, path: ConversionPath, ctx,
                 cache, producer_id: int, owners=None, owner_key=None,
                 paid: set | None = None) -> Channel:
        """Apply a conversion path, reusing shared cache entries.

        Serially (``owners is None``) the first consumer pays on miss.
        Under stage parallelism the precomputed *owner* always pays —
        even when a sibling's commit already cached the step — and
        non-owners either reuse the cache or recompute the step against
        a throwaway meter, so simulated charges are independent of
        commit timing.
        """
        current = channel
        key: tuple = (producer_id,)
        for step in path.steps:
            key = key + (step.name,)
            if owners is None:
                if key in cache:
                    current = cache[key]
                else:
                    with self.tracer.span(f"convert:{step.name}"):
                        current = step.apply(current, ctx)
                    self.metrics.counter("executor.conversions").inc()
                    cache[key] = current
                continue
            if owners.get(key) == owner_key:
                if paid is not None and key in paid:
                    current = cache[key]
                    continue
                with self.tracer.span(f"convert:{step.name}"):
                    current = step.apply(current, ctx)
                self.metrics.counter("executor.conversions").inc()
                cache[key] = current
                if paid is not None:
                    paid.add(key)
            elif key in cache:
                current = cache[key]
            else:
                # The owner has not committed yet; rebuild the channel
                # without charging anyone (the owner's meter carries the
                # canonical cost).
                current = step.apply(current, self._uncharged(ctx))
                cache[key] = current
        return current

    def _uncharged(self, ctx: ExecutionContext) -> ExecutionContext:
        """A context whose charges and observations go nowhere."""
        return ExecutionContext(cluster=ctx.cluster, meter=CostMeter(),
                                pgres=ctx.pgres, monitor=None,
                                config=ctx.config, epoch=ctx.epoch)

    def _charge_stage_overheads(self, stage: ExecutionStage, meter: CostMeter,
                                stage_started: set[str],
                                startup_owners: dict[str, str],
                                owner_key: str) -> None:
        if stage.platform == DRIVER_PLATFORM:
            return
        # ``stage_started`` doubles as the "platforms actually started"
        # report (ExecutionResult.platforms) and the per-stage dedup for
        # the startup charge across retries and loop iterations.
        first_use = stage.platform not in stage_started
        stage_started.add(stage.platform)
        if stage.platform not in self.cluster.profiles:
            return
        profile = self.cluster.profile(stage.platform)
        if first_use and startup_owners.get(stage.platform) == owner_key:
            meter.charge(profile.startup_s, f"{stage.platform}.startup",
                         category="overhead")
            self.metrics.counter("executor.platform_startups").inc()
        fraction = max((t.operator.tasks_fraction(profile)
                        for t in stage.tasks
                        if not isinstance(t.operator, LoopImplementation)),
                       default=1.0)
        meter.charge(profile.stage_overhead_s * fraction,
                     f"{stage.platform}.dispatch", category="overhead")

    # --------------------------------------------------------------- loops
    def _run_loop(self, impl: LoopImplementation, inputs: list[Channel],
                  ctx, parent_stage, *, recorder, sniffer_map, completed,
                  stage_started, startup_owners, owner_key,
                  injector=None, max_retries=0, job_lock=None) -> Channel:
        loop = impl.logical
        channels = list(inputs)
        body_stages = impl.body_plan.build_stages()
        # Loop-body stages materialize channels at their boundaries just
        # like top-level stages, so they face the same memory checks.
        body_crossing = self._crossing_ids(impl.body_plan, body_stages)
        iteration = 0
        # The parent (driver) stage is recorded only after the loop ends, so
        # the first iteration chains off the loop's producer stages instead.
        initial_deps = sorted(parent_stage.dependencies)
        last_tail: str | None = None
        max_iterations = (loop.iterations if isinstance(loop, RepeatLoop)
                          else loop.max_iterations)
        lock = (job_lock if job_lock is not None
                else OrderedLock("executor.job", self.metrics))
        while iteration < max_iterations:
            env: dict[int, Channel] = {}
            cache: dict[tuple, Channel] = {}
            for k, task in enumerate(impl.body_input_tasks):
                if task is not None:
                    env[task.id] = channels[k]
            prefix = f"{parent_stage.id}.loop{impl.id}.it{iteration}"
            for stage in body_stages:
                deps = [f"{prefix}.{d}" for d in sorted(stage.dependencies)]
                deps.extend([last_tail] if last_tail is not None
                            else initial_deps)
                # Body stages run serially inside the parent's attempt (on
                # its lane) and commit into the parent's scratch state:
                # the parent's recorder, scratch monitor and completed
                # buffer — so a crashed parent attempt discards them too.
                outcome = self._compute_stage(
                    stage, f"{prefix}.{stage.id}", deps, env, cache,
                    monitor_present=ctx.monitor is not None,
                    sniffer_map=sniffer_map, crossing=body_crossing,
                    recorder=recorder, stage_started=stage_started,
                    startup_owners=startup_owners, owner_key=owner_key,
                    conversion_owners=None, injector=injector,
                    max_retries=max_retries, job_lock=lock,
                    epoch=iteration)
                self._apply_outcome(outcome, env, cache, ctx.monitor,
                                    completed, recorder)
            if body_stages:
                last_tail = f"{prefix}.{body_stages[-1].id}"
            loop_var = env[impl.body_plan.sink_tasks[0].id]
            iteration += 1
            done = iteration >= max_iterations
            if isinstance(loop, DoWhileLoop) and not done:
                values = self._materialize_payload(loop_var, ctx)
                done = not loop.condition(values)
            if done:
                # The loop's external output keeps the body's channel type;
                # the feedback conversion only runs between iterations.
                return loop_var
            channels[0] = impl.feedback_conversion.apply(loop_var, ctx)
        return channels[0]

    def _materialize_payload(self, channel: Channel, ctx) -> list[Any]:
        """Driver-side view of a channel's records (for loop conditions)."""
        from ..platforms.pystreams.channels import PY_COLLECTION

        if channel.descriptor == PY_COLLECTION:
            return channel.payload
        name = channel.descriptor.name
        cached = self._collect_paths.get(name)
        if cached is None or cached[0] != self.graph.version:
            path = self.graph.cheapest_path(
                channel.descriptor, PY_COLLECTION,
                channel.sim_cardinality if channel.actual_count is not None
                else 0,
                channel.bytes_per_record)
            self._collect_paths[name] = (self.graph.version, path)
        else:
            path = cached[1]
        return path.apply(channel, ctx).payload

    # ---------------------------------------------------------- checkpoint
    @staticmethod
    def _materialized(plan: ExecutionPlan, env: dict[int, Channel]
                      ) -> dict[int, Channel]:
        """Latest materialized channel per completed logical operator."""
        out: dict[int, Channel] = {}
        for task in plan.tasks:
            if task.id in env and task.logical_id is not None:
                out[task.logical_id] = env[task.id]
        return out
