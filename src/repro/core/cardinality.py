"""Interval-based cardinality estimates (Section 4.1 of the paper).

Rheem represents cardinalities (and costs) as intervals with a confidence
value; wide or low-confidence estimates trigger optimization checkpoints for
the progressive optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CardinalityEstimate:
    """An estimated number of data quanta crossing a plan edge.

    Attributes:
        lower: Lower bound (simulated records).
        upper: Upper bound (simulated records).
        confidence: Probability mass the optimizer assigns to the interval
            actually containing the true cardinality, in ``[0, 1]``.
    """

    lower: float
    upper: float
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper < self.lower:
            raise ValueError(f"invalid interval [{self.lower}, {self.upper}]")
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0,1], got {self.confidence}")

    @classmethod
    def exact(cls, value: float) -> "CardinalityEstimate":
        """A measured (fully confident, zero-width) cardinality."""
        return cls(value, value, 1.0)

    @property
    def geometric_mean(self) -> float:
        """Point estimate used for cost comparisons."""
        if self.lower <= 0:
            return (self.lower + self.upper) / 2
        return math.sqrt(self.lower * self.upper)

    @property
    def is_exact(self) -> bool:
        return self.lower == self.upper and self.confidence >= 1.0

    @property
    def spread(self) -> float:
        """Relative interval width; 0 for exact estimates."""
        if self.upper == 0:
            return 0.0
        return (self.upper - self.lower) / self.upper

    def scale(self, factor: float, confidence_decay: float = 1.0) -> "CardinalityEstimate":
        """Multiply the interval by ``factor``, optionally decaying confidence."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return CardinalityEstimate(
            self.lower * factor,
            self.upper * factor,
            self.confidence * confidence_decay,
        )

    def widen(self, lower_factor: float, upper_factor: float,
              confidence: float | None = None) -> "CardinalityEstimate":
        """Stretch the interval asymmetrically (uncertain selectivities)."""
        return CardinalityEstimate(
            self.lower * lower_factor,
            self.upper * upper_factor,
            self.confidence if confidence is None else confidence,
        )

    def plus(self, other: "CardinalityEstimate") -> "CardinalityEstimate":
        """Interval sum (e.g. for Union)."""
        return CardinalityEstimate(
            self.lower + other.lower,
            self.upper + other.upper,
            min(self.confidence, other.confidence),
        )

    def times(self, other: "CardinalityEstimate") -> "CardinalityEstimate":
        """Interval product (e.g. for joins before selectivity)."""
        return CardinalityEstimate(
            self.lower * other.lower,
            self.upper * other.upper,
            min(self.confidence, other.confidence),
        )

    def mismatches(self, actual: float, tolerance: float = 2.0) -> bool:
        """Whether a measured cardinality is badly outside this estimate.

        The progressive optimizer re-plans when the truth lies more than a
        ``tolerance`` factor outside the interval.
        """
        lo = self.lower / tolerance
        hi = self.upper * tolerance
        return not (lo <= actual <= hi)

    def __str__(self) -> str:
        return f"[{self.lower:.0f}..{self.upper:.0f}]@{self.confidence:.0%}"


#: Default selectivities used when the application supplies none (the paper:
#: "Rheem comes with default selectivity values in case they are not
#: provided").
DEFAULT_FILTER_SELECTIVITY = 0.5
DEFAULT_FLATMAP_EXPANSION = 1.0
DEFAULT_JOIN_SELECTIVITY = 1e-4
DEFAULT_DISTINCT_RATIO = 0.7
DEFAULT_GROUP_RATIO = 0.1
#: Confidence attached to estimates derived from default selectivities.
DEFAULT_CONFIDENCE = 0.5
