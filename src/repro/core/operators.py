"""Platform-agnostic Rheem operators (Section 3 of the paper).

A Rheem plan is a directed data-flow graph whose vertices are the operators
defined here and whose edges carry *data quanta*.  Operators are platform
agnostic; the optimizer maps them to platform-specific execution operators
via the mappings in :mod:`repro.core.mappings` and the per-platform mapping
modules.

Broadcast edges (dotted edges in the paper's Figure 3) are modelled as
*side inputs*: the UDF of the consuming operator receives the materialized
broadcast value as extra positional arguments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .cardinality import (
    CardinalityEstimate,
    DEFAULT_CONFIDENCE,
    DEFAULT_DISTINCT_RATIO,
    DEFAULT_FILTER_SELECTIVITY,
    DEFAULT_FLATMAP_EXPANSION,
    DEFAULT_GROUP_RATIO,
    DEFAULT_JOIN_SELECTIVITY,
)
from .udf import Udf, as_udf

_id_counter = itertools.count(1)


@dataclass(frozen=True)
class InputRef:
    """A reference to one output slot of an upstream operator."""

    op: "Operator"
    output_index: int = 0


@dataclass
class EstimationContext:
    """What cardinality estimators may consult.

    Attributes:
        vfs: Virtual file system, for source record counts ("sampling").
        table_cardinalities: Known relation sizes (Postgres catalog analog).
        table_bytes: Known per-row byte widths per relation.
        overrides: Measured cardinalities pinned by the progressive
            optimizer, keyed by operator id.
    """

    vfs: Any = None
    table_cardinalities: dict[str, float] = field(default_factory=dict)
    table_bytes: dict[str, float] = field(default_factory=dict)
    overrides: dict[int, CardinalityEstimate] = field(default_factory=dict)


class Operator:
    """Base class of all Rheem operators.

    Subclasses define ``num_inputs`` (arity) and implement
    :meth:`estimate_cardinality`.  All operators currently have exactly one
    output slot; sinks have zero.
    """

    num_inputs: int = 1
    num_outputs: int = 1
    is_source = False
    is_sink = False

    def __init__(self, name: str) -> None:
        self.id: int = next(_id_counter)
        self.name = name
        self.inputs: list[InputRef | None] = [None] * self.num_inputs
        self.side_inputs: list[InputRef] = []
        #: Force execution on a specific platform (``withTargetPlatform``).
        self.target_platform: str | None = None
        #: Downstream back-references recorded by :meth:`connect` /
        #: :meth:`broadcast`; the static analyzer walks these to find work
        #: hanging off a plan that no sink can reach (may hold stale
        #: entries after rewiring — always verify against ``inputs``).
        self.downstream: list["Operator"] = []
        #: Lint rule ids silenced for this operator (``suppress_lint``).
        self.lint_suppressions: set[str] = set()

    # ------------------------------------------------------------------ DAG
    def connect(self, input_index: int, upstream: "Operator",
                output_index: int = 0) -> "Operator":
        """Wire ``upstream``'s output into this operator's ``input_index``."""
        if not 0 <= input_index < self.num_inputs:
            raise ValueError(f"{self} has no input slot {input_index}")
        if not 0 <= output_index < upstream.num_outputs:
            raise ValueError(f"{upstream} has no output slot {output_index}")
        self.inputs[input_index] = InputRef(upstream, output_index)
        upstream.downstream.append(self)
        return self

    def broadcast(self, upstream: "Operator", output_index: int = 0) -> "Operator":
        """Attach a broadcast (side) input; its materialized value is passed
        to this operator's UDF as an extra positional argument."""
        self.side_inputs.append(InputRef(upstream, output_index))
        upstream.downstream.append(self)
        return self

    def with_target_platform(self, platform: str) -> "Operator":
        """Pin this operator to one platform (escape hatch, Section 5)."""
        self.target_platform = platform
        return self

    def suppress_lint(self, *rule_ids: str) -> "Operator":
        """Silence the given lint rules for this operator only."""
        self.lint_suppressions.update(rule_ids)
        return self

    @property
    def upstream_ops(self) -> list["Operator"]:
        """All producers feeding this operator (data + broadcast edges)."""
        ops = [ref.op for ref in self.inputs if ref is not None]
        ops.extend(ref.op for ref in self.side_inputs)
        return ops

    # ----------------------------------------------------------- estimation
    def estimate_cardinality(
        self,
        inputs: Sequence[CardinalityEstimate],
        ctx: EstimationContext,
    ) -> CardinalityEstimate:
        """Estimate this operator's output cardinality from its inputs."""
        raise NotImplementedError

    def work_factor(self) -> float:
        """Relative per-record CPU work (drives cost estimation)."""
        return 1.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}#{self.id}({self.name})"


def _passthrough(inputs: Sequence[CardinalityEstimate]) -> CardinalityEstimate:
    return inputs[0]


# --------------------------------------------------------------------------
# Sources
# --------------------------------------------------------------------------
class SourceOperator(Operator):
    """Base class for operators with no data inputs."""

    num_inputs = 0
    is_source = True


class TextFileSource(SourceOperator):
    """Reads lines from a (virtual) file; quanta are strings."""

    def __init__(self, path: str, name: str = "textfile-source") -> None:
        super().__init__(name)
        self.path = path

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if ctx.vfs is not None and ctx.vfs.exists(self.path):
            return CardinalityEstimate.exact(ctx.vfs.read(self.path).sim_record_count)
        return CardinalityEstimate(0, 1e9, 0.1)


class CollectionSource(SourceOperator):
    """Wraps a driver-side collection (paper: Collection source)."""

    def __init__(self, data: Iterable[Any], sim_factor: float = 1.0,
                 bytes_per_record: float = 100.0,
                 name: str = "collection-source") -> None:
        super().__init__(name)
        self.data = list(data)
        self.sim_factor = sim_factor
        self.bytes_per_record = bytes_per_record

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        return CardinalityEstimate.exact(len(self.data) * self.sim_factor)


class TableSource(SourceOperator):
    """Reads a relation that lives inside the relational platform."""

    def __init__(self, table: str, projection: list[str] | None = None,
                 name: str | None = None) -> None:
        super().__init__(name or f"table-source({table})")
        self.table = table
        self.projection = projection

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if self.table in ctx.table_cardinalities:
            return CardinalityEstimate.exact(ctx.table_cardinalities[self.table])
        return CardinalityEstimate(0, 1e9, 0.1)


class ChannelSource(SourceOperator):
    """A source bound to an already materialized channel.

    The progressive optimizer uses these to splice the results a paused job
    already produced into the residual plan it re-optimizes.
    """

    def __init__(self, channel, name: str = "channel-source") -> None:
        super().__init__(name)
        self.channel = channel

    def estimate_cardinality(self, inputs, ctx):
        if self.channel.actual_count is not None:
            return CardinalityEstimate.exact(self.channel.sim_cardinality)
        return CardinalityEstimate(0, 1e9, 0.1)


# --------------------------------------------------------------------------
# Unary operators
# --------------------------------------------------------------------------
class Map(Operator):
    """Transforms each data quantum with a UDF (1-to-1).

    ``bytes_per_record`` optionally declares the simulated size of the
    OUTPUT quanta (e.g. a projection shrinking wide rows); by default the
    input's record size is carried through.

    ``batch_udf`` optionally declares a vectorized twin of the UDF for the
    batch engines: it receives a whole :class:`~repro.core.batch.RecordBatch`
    (plus broadcast values) and returns the transformed batch.  It MUST be
    record-wise equivalent to ``udf``; without it, batch engines fall back
    to applying ``udf`` per record.
    """

    def __init__(self, udf: Callable[..., Any] | Udf, name: str = "map",
                 bytes_per_record: float | None = None,
                 batch_udf: Callable[..., Any] | None = None) -> None:
        super().__init__(name)
        self.udf = as_udf(udf)
        self.bytes_per_record = bytes_per_record
        self.batch_udf = batch_udf

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))

    def work_factor(self) -> float:
        return self.udf.cpu_weight


class FlatMap(Operator):
    """Transforms each quantum into zero or more quanta.

    ``bytes_per_record`` optionally declares the simulated size of the
    OUTPUT quanta (words are smaller than the lines they come from).
    ``batch_udf`` optionally maps a whole record batch to the flattened
    output batch (see :class:`Map`).
    """

    def __init__(self, udf: Callable[..., Any] | Udf, name: str = "flatmap",
                 bytes_per_record: float | None = None,
                 batch_udf: Callable[..., Any] | None = None) -> None:
        super().__init__(name)
        self.udf = as_udf(udf)
        self.bytes_per_record = bytes_per_record
        self.batch_udf = batch_udf

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        sel = self.udf.selectivity
        if sel is None:
            return inputs[0].scale(DEFAULT_FLATMAP_EXPANSION).widen(
                0.5, 4.0, DEFAULT_CONFIDENCE)
        return inputs[0].scale(sel)

    def work_factor(self) -> float:
        return self.udf.cpu_weight


class MapPartitions(Operator):
    """Transforms whole partitions with a UDF ``list -> list``.

    The single-node platforms see one partition (the whole collection);
    the distributed ones apply the UDF per partition — useful for
    amortizing per-chunk setup (compiled regexes, model weights).
    """

    def __init__(self, udf: Callable[..., Any] | Udf,
                 name: str = "map-partitions",
                 bytes_per_record: float | None = None) -> None:
        super().__init__(name)
        self.udf = as_udf(udf)
        self.bytes_per_record = bytes_per_record

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        sel = self.udf.selectivity
        if sel is None:
            return inputs[0].widen(0.5, 2.0, DEFAULT_CONFIDENCE)
        return inputs[0].scale(sel)

    def work_factor(self) -> float:
        return self.udf.cpu_weight


class ZipWithId(Operator):
    """Attaches a unique id to each quantum: output ``(id, quantum)``.

    Ids are unique but not necessarily dense nor ordered across partitions
    (matching the distributed engines' cheap id assignment).
    """

    def __init__(self, name: str = "zipwithid") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))


class Filter(Operator):
    """Keeps quanta satisfying a predicate UDF.

    ``column``/``low``/``high`` optionally describe the predicate as a range
    over one attribute of dict-shaped quanta; the relational platform uses
    this to run an index scan instead of a sequential scan, and the batch
    engines auto-vectorize it into one columnar comparison.  ``batch_udf``
    optionally computes the keep-mask for a whole record batch.
    """

    def __init__(self, udf: Callable[..., Any] | Udf, name: str = "filter",
                 column: str | None = None, low: Any = None,
                 high: Any = None,
                 batch_udf: Callable[..., Any] | None = None) -> None:
        super().__init__(name)
        self.udf = as_udf(udf)
        self.column = column
        self.low = low
        self.high = high
        self.batch_udf = batch_udf

    @classmethod
    def from_range(cls, column: str, low: Any = None, high: Any = None,
                   selectivity: float | None = None,
                   name: str | None = None) -> "Filter":
        """A filter over a range of one attribute of dict-shaped quanta."""

        def in_range(row: dict) -> bool:
            value = row[column]
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
            return True

        udf = Udf(in_range, selectivity=selectivity, name=f"range({column})")
        return cls(udf, name=name or f"filter({column})",
                   column=column, low=low, high=high)

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        sel = self.udf.selectivity
        if sel is None:
            return inputs[0].scale(DEFAULT_FILTER_SELECTIVITY).widen(
                0.1, 2.0, DEFAULT_CONFIDENCE)
        return inputs[0].scale(sel)

    def work_factor(self) -> float:
        return self.udf.cpu_weight


class Sample(Operator):
    """Draws a sample of the input (fixed size or fraction).

    ``method`` selects the execution strategy; ML4all's efficient sampling
    operators (random-jump / shuffled-partition) map to cheap execution
    operators on the distributed platforms.
    """

    METHODS = ("random", "random_jump", "shuffled_partition", "first")

    def __init__(self, size: int | None = None, fraction: float | None = None,
                 method: str = "random", seed: int | None = 42,
                 name: str = "sample") -> None:
        super().__init__(name)
        if (size is None) == (fraction is None):
            raise ValueError("exactly one of size / fraction is required")
        if method not in self.METHODS:
            raise ValueError(f"unknown sample method {method!r}")
        self.size = size
        self.fraction = fraction
        self.method = method
        self.seed = seed

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if self.size is not None:
            upper = min(self.size, inputs[0].upper) if inputs[0].upper else self.size
            return CardinalityEstimate(min(self.size, inputs[0].lower), upper, 1.0)
        return inputs[0].scale(self.fraction)


class Distinct(Operator):
    """Removes duplicate quanta (optionally by key)."""

    def __init__(self, key: Callable[..., Any] | Udf | None = None,
                 name: str = "distinct") -> None:
        super().__init__(name)
        self.key = as_udf(key) if key is not None else None

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        return inputs[0].scale(DEFAULT_DISTINCT_RATIO).widen(
            0.01, 1.0 / DEFAULT_DISTINCT_RATIO, DEFAULT_CONFIDENCE)


class Sort(Operator):
    """Sorts quanta by a key UDF.

    ``batch_key`` optionally computes the whole sort-key column for a
    record batch in one call (must agree with ``key`` per record).
    """

    def __init__(self, key: Callable[..., Any] | Udf | None = None,
                 descending: bool = False, name: str = "sort",
                 batch_key: Callable[..., Any] | None = None) -> None:
        super().__init__(name)
        self.key = as_udf(key) if key is not None else None
        self.descending = descending
        self.batch_key = batch_key

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))

    def work_factor(self) -> float:
        return 3.0  # n log n, flattened into a constant factor


class GroupBy(Operator):
    """Groups quanta by key; output quanta are ``(key, [members])`` pairs.

    ``sim_groups`` optionally declares the TRUE number of distinct keys at
    simulated scale (e.g. 25 nations regardless of the scale factor); it
    pins both the cardinality estimate and the output's simulated count.
    """

    def __init__(self, key: Callable[..., Any] | Udf, name: str = "groupby",
                 sim_groups: float | None = None) -> None:
        super().__init__(name)
        self.key = as_udf(key)
        self.sim_groups = sim_groups

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if self.sim_groups is not None:
            return CardinalityEstimate.exact(self.sim_groups)
        return inputs[0].scale(DEFAULT_GROUP_RATIO).widen(
            0.01, 10.0, DEFAULT_CONFIDENCE)


class ReduceBy(Operator):
    """Aggregates quanta per key: output quanta are ``(key, aggregate)``.

    ``reducer(a, b)`` must be associative and commutative.
    """

    def __init__(self, key: Callable[..., Any] | Udf,
                 reducer: Callable[[Any, Any], Any] | Udf,
                 name: str = "reduceby",
                 sim_groups: float | None = None,
                 batch_impl: Callable[..., Any] | None = None) -> None:
        super().__init__(name)
        self.key = as_udf(key)
        self.reducer = as_udf(reducer)
        self.sim_groups = sim_groups
        #: Vectorized twin: maps one record batch to its per-key aggregates
        #: (first-occurrence key order, left-fold accumulation — must match
        #: ``key``/``reducer`` record-for-record).
        self.batch_impl = batch_impl

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if self.sim_groups is not None:
            return CardinalityEstimate.exact(self.sim_groups)
        return inputs[0].scale(DEFAULT_GROUP_RATIO).widen(
            0.01, 10.0, DEFAULT_CONFIDENCE)

    def work_factor(self) -> float:
        return self.reducer.cpu_weight


class GlobalReduce(Operator):
    """Folds ALL quanta into a single one (paper: Reduce).

    ``reducer(a, b)`` must be associative and commutative.
    """

    def __init__(self, reducer: Callable[[Any, Any], Any] | Udf,
                 name: str = "reduce") -> None:
        super().__init__(name)
        self.reducer = as_udf(reducer)

    def estimate_cardinality(self, inputs, ctx):
        return CardinalityEstimate.exact(1)

    def work_factor(self) -> float:
        return self.reducer.cpu_weight


class Count(Operator):
    """Emits a single quantum: the number of input quanta."""

    def __init__(self, name: str = "count") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        return CardinalityEstimate.exact(1)


class Cache(Operator):
    """Marks its input for reuse (e.g. loop-invariant data)."""

    def __init__(self, name: str = "cache") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))


# --------------------------------------------------------------------------
# Binary operators
# --------------------------------------------------------------------------
class Union(Operator):
    """Bag union of two inputs."""

    num_inputs = 2

    def __init__(self, name: str = "union") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        return inputs[0].plus(inputs[1])


class Intersect(Operator):
    """Set intersection of two inputs (by quantum equality)."""

    num_inputs = 2

    def __init__(self, name: str = "intersect") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        upper = min(inputs[0].upper, inputs[1].upper)
        return CardinalityEstimate(0, upper, DEFAULT_CONFIDENCE)


class Join(Operator):
    """Equi-join; output quanta are ``(left, right)`` pairs.

    ``sim_mode`` controls how the simulated cardinality of the output
    scales: ``"linear"`` (default) for foreign-key style joins whose output
    grows with the data, ``"product"`` for many-to-many joins whose output
    grows with the product of the input scales (e.g. joining two tables on
    a low-cardinality attribute).
    """

    num_inputs = 2
    SIM_MODES = ("linear", "product")

    def __init__(self, left_key: Callable[..., Any] | Udf,
                 right_key: Callable[..., Any] | Udf,
                 selectivity: float | None = None,
                 name: str = "join", sim_mode: str = "linear",
                 left_key_column: Any = None,
                 right_key_column: Any = None) -> None:
        super().__init__(name)
        if sim_mode not in self.SIM_MODES:
            raise ValueError(f"unknown sim_mode {sim_mode!r}")
        self.left_key = as_udf(left_key)
        self.right_key = as_udf(right_key)
        self.selectivity = selectivity
        self.sim_mode = sim_mode
        #: Column name (dict layout) or position (tuple layout) the key UDFs
        #: project; declaring both lets the batch engines join columnarly.
        self.left_key_column = left_key_column
        self.right_key_column = right_key_column

    def output_sim_factor(self, left_factor: float,
                          right_factor: float) -> float:
        if self.sim_mode == "product":
            return left_factor * right_factor
        return max(left_factor, right_factor)

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        product = inputs[0].times(inputs[1])
        sel = self.selectivity
        if sel is None:
            return product.scale(DEFAULT_JOIN_SELECTIVITY).widen(0.1, 100.0, 0.3)
        return product.scale(sel)

    def work_factor(self) -> float:
        return 2.0


class CartesianProduct(Operator):
    """Cross product; output quanta are ``(left, right)`` pairs."""

    num_inputs = 2

    def __init__(self, name: str = "cartesian") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        return inputs[0].times(inputs[1])


@dataclass(frozen=True)
class InequalityCondition:
    """One inequality predicate ``left_key(l) <op> right_key(r)``."""

    left_key: Callable[[Any], Any]
    op: str  # one of "<", "<=", ">", ">="
    right_key: Callable[[Any], Any]

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unsupported inequality operator {self.op!r}")

    def holds(self, left: Any, right: Any) -> bool:
        return self._OPS[self.op](self.left_key(left), self.right_key(right))


class IEJoin(Operator):
    """Inequality join on one or two inequality conditions.

    This is the extension operator the paper plugs into Rheem for
    BigDansing (the "Lightning Fast and Space Efficient Inequality Joins"
    algorithm); output quanta are ``(left, right)`` pairs satisfying ALL
    conditions.
    """

    num_inputs = 2

    def __init__(self, conditions: Sequence[InequalityCondition],
                 selectivity: float | None = None,
                 name: str = "iejoin") -> None:
        super().__init__(name)
        if not 1 <= len(conditions) <= 2:
            raise ValueError("IEJoin supports one or two inequality conditions")
        self.conditions = list(conditions)
        self.selectivity = selectivity

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        product = inputs[0].times(inputs[1])
        sel = self.selectivity if self.selectivity is not None else 0.25
        return product.scale(sel).widen(0.01, 2.0, 0.3)

    def work_factor(self) -> float:
        return 4.0


# --------------------------------------------------------------------------
# Graph operator
# --------------------------------------------------------------------------
class PageRank(Operator):
    """Computes PageRank over an edge list.

    Input quanta: ``(src, dst)`` pairs.  Output quanta: ``(vertex, rank)``.
    Maps 1-to-1 onto the graph platforms and m-to-n onto the general
    data-flow platforms (join/reduce subplan), exercising the paper's
    flexible operator mappings.
    """

    def __init__(self, iterations: int = 10, damping: float = 0.85,
                 name: str = "pagerank") -> None:
        super().__init__(name)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.damping = damping

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        # ~one rank per vertex; vertices estimated as a fraction of edges.
        return inputs[0].scale(0.2).widen(0.05, 5.0, DEFAULT_CONFIDENCE)

    def work_factor(self) -> float:
        return 2.0 * self.iterations


# --------------------------------------------------------------------------
# Loops
# --------------------------------------------------------------------------
class LoopInput(SourceOperator):
    """Placeholder source inside a loop body.

    ``index`` 0 is the loop variable; higher indices are the loop-invariant
    side inputs of the enclosing loop operator.
    """

    def __init__(self, index: int, name: str | None = None) -> None:
        super().__init__(name or f"loop-input[{index}]")
        self.index = index
        #: Filled in by the loop's cardinality estimation.
        self.pinned_estimate: CardinalityEstimate | None = None
        #: Filled in by the optimizer's record-size estimation.
        self.pinned_bytes: float | None = None

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        if self.pinned_estimate is not None:
            return self.pinned_estimate
        return CardinalityEstimate(0, 1e9, 0.1)


@dataclass
class SubPlan:
    """A loop body: placeholder inputs plus designated output slots."""

    inputs: list[LoopInput]
    outputs: list[InputRef]

    def __post_init__(self) -> None:
        indices = [inp.index for inp in self.inputs]
        if indices != list(range(len(indices))):
            raise ValueError(f"loop inputs must be indexed 0..k, got {indices}")

    def operators(self) -> list[Operator]:
        """All body operators in topological order.

        Declared inputs are always included, even if the body does not
        consume one of them (the enumerator still needs a channel decision
        for it)."""
        from .plan import topological_order  # local import to avoid a cycle

        roots = [ref.op for ref in self.outputs] + list(self.inputs)
        return topological_order(roots)


class LoopOperator(Operator):
    """Base for loop operators: drives a body sub-plan to convergence.

    Input 0 is the initial loop variable; inputs 1..k are loop-invariant
    datasets the body may read each iteration (the paper's broadcast edges
    into the loop).  Output 0 is the final loop variable.
    """

    def __init__(self, body: SubPlan, num_invariant_inputs: int, name: str) -> None:
        self.num_inputs = 1 + num_invariant_inputs
        super().__init__(name)
        if len(body.inputs) != self.num_inputs:
            raise ValueError(
                f"body declares {len(body.inputs)} inputs, loop has {self.num_inputs}")
        if len(body.outputs) != 1:
            raise ValueError("loop bodies must have exactly one output (the loop var)")
        self.body = body

    def expected_iterations(self) -> int:
        raise NotImplementedError

    def estimate_cardinality(self, inputs, ctx):
        if self.id in ctx.overrides:
            return ctx.overrides[self.id]
        # Pin body placeholders to the incoming estimates, then estimate the
        # body once; loops are assumed cardinality-stable across iterations.
        from .plan import estimate_subplan  # local import to avoid a cycle

        for loop_input, est in zip(self.body.inputs, inputs):
            loop_input.pinned_estimate = est
        return estimate_subplan(self.body, ctx)


class RepeatLoop(LoopOperator):
    """Runs the body a fixed number of times (paper: RepeatLoop)."""

    def __init__(self, iterations: int, body: SubPlan,
                 num_invariant_inputs: int = 0, name: str = "repeat") -> None:
        super().__init__(body, num_invariant_inputs, name)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def expected_iterations(self) -> int:
        return self.iterations


class DoWhileLoop(LoopOperator):
    """Runs the body until ``condition(loop_var_collection)`` is falsy.

    ``expected_iterations`` is the optimizer's guess; the executor stops on
    the real condition (and a ``max_iterations`` safety bound).
    """

    def __init__(self, condition: Callable[[list[Any]], bool] | Udf,
                 body: SubPlan, num_invariant_inputs: int = 0,
                 expected: int = 10, max_iterations: int = 10_000,
                 name: str = "dowhile") -> None:
        super().__init__(body, num_invariant_inputs, name)
        self.condition = as_udf(condition)
        self.expected = expected
        self.max_iterations = max_iterations

    def expected_iterations(self) -> int:
        return self.expected


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------
class SinkOperator(Operator):
    """Base class for operators that terminate a plan branch."""

    is_sink = True
    num_outputs = 1  # sinks expose their result for the driver to fetch


class CollectionSink(SinkOperator):
    """Materializes the result as a driver-side list."""

    def __init__(self, name: str = "collection-sink") -> None:
        super().__init__(name)

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))


class TextFileSink(SinkOperator):
    """Writes quanta to a (virtual) file, one ``str(quantum)`` per line."""

    def __init__(self, path: str, name: str = "textfile-sink") -> None:
        super().__init__(name)
        self.path = path

    def estimate_cardinality(self, inputs, ctx):
        return ctx.overrides.get(self.id, _passthrough(inputs))
