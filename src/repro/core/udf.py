"""User-defined functions with optimizer-facing annotations.

Rheem operators are refined with UDFs (Section 3 of the paper).  Applications
may optionally attach a *selectivity* and a *CPU weight* to a UDF; the
optimizer falls back to per-operator defaults when they are absent.
"""

from __future__ import annotations

from typing import Any, Callable


class Udf:
    """A callable plus the metadata the cross-platform optimizer consumes.

    Attributes:
        fn: The wrapped callable.
        selectivity: Output-per-input ratio hint.  For ``Filter`` this is the
            retention fraction; for ``FlatMap`` the expansion factor.  ``None``
            means "use the operator default".
        cpu_weight: Relative per-record CPU work of this UDF (1.0 = a plain
            field access / arithmetic map).
        name: Label used in plans, logs and cost reports.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        selectivity: float | None = None,
        cpu_weight: float = 1.0,
        name: str | None = None,
    ) -> None:
        if selectivity is not None and selectivity < 0:
            raise ValueError(f"selectivity must be >= 0, got {selectivity}")
        if cpu_weight <= 0:
            raise ValueError(f"cpu_weight must be > 0, got {cpu_weight}")
        self.fn = fn
        self.selectivity = selectivity
        self.cpu_weight = cpu_weight
        self.name = name or getattr(fn, "__name__", "udf")

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        return f"Udf({self.name})"


def as_udf(fn: Callable[..., Any] | Udf) -> Udf:
    """Wrap a plain callable into a :class:`Udf` (idempotent)."""
    if isinstance(fn, Udf):
        return fn
    return Udf(fn)
