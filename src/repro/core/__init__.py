"""The cross-platform core: plans, optimizer, executor, monitor."""

from .cardinality import CardinalityEstimate
from .channels import (
    Channel,
    ChannelConversionError,
    ChannelConversionGraph,
    ChannelDescriptor,
    Conversion,
    ConversionPath,
    ConversionTree,
    HDFS_FILE,
    LOCAL_FILE,
)
from .context import DataQuanta, RheemContext
from .cost import CostEstimate, CostModel, OperatorCostParams
from .executor import ExecutionResult, Executor, Sniffer
from .faults import FaultInjector, PlatformFailure
from .mappings import ExecutionAlternative, MappingRegistry, OperatorMapping
from .monitor import Monitor
from .objectives import Objective, RUNTIME, monetary, price_of
from .optimizer import OptimizationError, Optimizer
from .plan import PlanValidationError, RheemPlan
from .progressive import (PausedJob, ProgressiveReport,
    execute_progressively, execute_with_pause, resume)
from .udf import Udf, as_udf

__all__ = [
    "CardinalityEstimate",
    "Channel",
    "ChannelConversionError",
    "ChannelConversionGraph",
    "ChannelDescriptor",
    "Conversion",
    "ConversionPath",
    "ConversionTree",
    "HDFS_FILE",
    "LOCAL_FILE",
    "DataQuanta",
    "RheemContext",
    "CostEstimate",
    "CostModel",
    "OperatorCostParams",
    "ExecutionResult",
    "Executor",
    "Sniffer",
    "FaultInjector",
    "PlatformFailure",
    "ExecutionAlternative",
    "MappingRegistry",
    "OperatorMapping",
    "Monitor",
    "Objective",
    "RUNTIME",
    "monetary",
    "price_of",
    "OptimizationError",
    "Optimizer",
    "PlanValidationError",
    "RheemPlan",
    "PausedJob",
    "ProgressiveReport",
    "execute_progressively",
    "execute_with_pause",
    "resume",
    "Udf",
    "as_udf",
]
