"""Execution plans: tasks, stages, and the execution context.

The optimizer turns a Rheem plan into an :class:`ExecutionPlan` — a DAG of
:class:`ExecutionTask` vertices, each wrapping a platform execution operator
(or a :class:`LoopImplementation`), with per-edge conversion paths where the
producing and consuming platforms differ.  The executor cuts the plan into
*stages* (maximal single-platform subplans, Section 4.2) and dispatches them
in dependency order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..simulation.clock import CostMeter
from ..simulation.cluster import VirtualCluster
from .channels import Channel, ConversionPath
from .operators import LoopOperator

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.base import ExecutionOperator
    from .monitor import Monitor

_task_id_counter = itertools.count(1)

#: Pseudo-platform for tasks the Rheem driver itself runs (loop heads).
DRIVER_PLATFORM = "driver"


@dataclass
class ExecutionContext:
    """Everything an execution operator may touch while running.

    The executor swaps :attr:`meter` per stage so charges land on the right
    stage timing.
    """

    cluster: VirtualCluster
    meter: CostMeter = field(default_factory=CostMeter)
    pgres: Any = None
    monitor: "Monitor | None" = None
    config: dict[str, Any] = field(default_factory=dict)
    #: Loop-iteration index of the stage being executed (0 outside loops).
    #: Operators that need per-iteration variation (e.g. sampling) derive it
    #: from here instead of mutating instance state, so crash-retried
    #: attempts of the same iteration see the same value.
    epoch: int = 0

    @property
    def vfs(self):
        return self.cluster.vfs

    def profile(self, platform: str):
        return self.cluster.profile(platform)

    def record_output(self, exec_op: "ExecutionOperator", channel: Channel) -> None:
        """Report a measured operator output to the monitor, if any."""
        if self.monitor is not None and channel.actual_count is not None:
            self.monitor.record_cardinality(exec_op, channel.sim_cardinality)


@dataclass
class TaskInput:
    """One wired input edge of a task.

    Attributes:
        producer: Upstream task whose output feeds this edge.
        conversion: Channel conversions to apply on this edge (empty path
            when producer and consumer speak the same channel).
    """

    producer: "ExecutionTask"
    conversion: ConversionPath


class ExecutionTask:
    """One vertex of an execution plan."""

    def __init__(
        self,
        operator: "ExecutionOperator",
        inputs: list[TaskInput] | None = None,
        broadcast_inputs: list[TaskInput] | None = None,
    ) -> None:
        self.id = next(_task_id_counter)
        self.operator = operator
        self.inputs = list(inputs or [])
        self.broadcast_inputs = list(broadcast_inputs or [])

    @property
    def platform(self) -> str:
        return self.operator.platform

    @property
    def logical_id(self) -> int | None:
        logical = self.operator.logical
        return logical.id if logical is not None else None

    def producers(self) -> list["ExecutionTask"]:
        return [ti.producer for ti in self.inputs + self.broadcast_inputs]

    def __repr__(self) -> str:
        return f"Task#{self.id}({self.operator.name})"


@dataclass
class ExecutionStage:
    """A maximal single-platform subplan dispatched as one unit."""

    id: str
    platform: str
    tasks: list[ExecutionTask]
    dependencies: set[str] = field(default_factory=set)

    def __repr__(self) -> str:
        return (f"Stage({self.id}, {self.platform}, "
                f"{[t.operator.name for t in self.tasks]})")


class ExecutionPlan:
    """A complete executable plan.

    Args:
        tasks: All tasks in topological order.
        sink_tasks: Tasks whose outputs are the job's results, in the order
            of the Rheem plan's sinks.
    """

    def __init__(self, tasks: list[ExecutionTask],
                 sink_tasks: list[ExecutionTask]) -> None:
        self.tasks = list(tasks)
        self.sink_tasks = list(sink_tasks)
        #: Logical operator id -> intermediate-result store key, attached
        #: by :meth:`RheemContext.optimize` for plans whose subplans are
        #: reuse-keyable; the executor publishes committed outputs under
        #: these keys (:mod:`repro.core.resultstore`).
        self.reuse_keys: dict[int, tuple] = {}

    def build_stages(self, break_after: set[int] = frozenset()
                     ) -> list[ExecutionStage]:
        """Cut the plan into stages (Section 4.2).

        A task joins a producer's stage when they share a platform AND all
        of its producers already live in that stage — this keeps the stage
        dependency graph acyclic by construction (every dependency edge
        points to an earlier-created stage), so list order is a valid
        execution order.  Loop implementations always get their own driver
        stage, since the executor must hold the execution control to
        evaluate the loop condition.

        ``break_after`` closes the stage after any task implementing one of
        the given LOGICAL operator ids — exploratory-mode breakpoints are
        materialization points ("data at rest").
        """
        stage_of: dict[int, ExecutionStage] = {}
        closed: set[str] = set()
        stages: list[ExecutionStage] = []
        counter = itertools.count(1)
        for task in self.tasks:
            producer_stages = [stage_of[p.id] for p in task.producers()
                               if p.id in stage_of]
            home: ExecutionStage | None = None
            if task.platform != DRIVER_PLATFORM and producer_stages:
                first = producer_stages[0]
                if (first.platform == task.platform
                        and first.id not in closed
                        and all(ps is first for ps in producer_stages)):
                    home = first
            if home is None:
                home = ExecutionStage(f"stage{next(counter)}", task.platform, [])
                stages.append(home)
            home.tasks.append(task)
            stage_of[task.id] = home
            for ps in producer_stages:
                if ps is not home:
                    home.dependencies.add(ps.id)
            if task.logical_id is not None and task.logical_id in break_after:
                closed.add(home.id)
        return stages

    def platforms(self) -> set[str]:
        """All real platforms this plan touches (loop bodies included)."""
        out: set[str] = set()
        for task in self.tasks:
            op = task.operator
            if isinstance(op, LoopImplementation):
                out |= op.body_plan.platforms()
            elif op.platform != DRIVER_PLATFORM:
                out.add(op.platform)
        return out

    def __repr__(self) -> str:
        return f"ExecutionPlan({len(self.tasks)} tasks)"


class LoopImplementation:
    """The driver-side implementation of a loop operator.

    It owns an execution plan for the loop body; the executor runs that body
    plan once per iteration, feeding output 0 back into body input 0 (via
    ``feedback_conversion`` when the channel types differ between the body's
    output and its input).
    """

    platform = DRIVER_PLATFORM
    op_kind = "loop"

    def __init__(
        self,
        logical: LoopOperator,
        body_plan: ExecutionPlan,
        body_input_tasks: list["ExecutionTask"],
        feedback_conversion: ConversionPath,
    ) -> None:
        self.id = next(_task_id_counter)
        self.logical = logical
        self.body_plan = body_plan
        self.body_input_tasks = list(body_input_tasks)
        self.feedback_conversion = feedback_conversion

    def work(self) -> float:
        return 0.0

    @property
    def name(self) -> str:
        return f"driver.loop[{self.logical.name}]"

    def __repr__(self) -> str:
        return f"<{self.name}#{self.id}>"
