"""The cross-job intermediate-result store (result reuse, ROADMAP item 3).

Many submitted plans share sources and cleaning/join prefixes; past
per-plan optimization (the plan cache replays *decisions*) the remaining
win is skipping the *work*.  This store keeps committed stage outputs of
finished jobs and offers them to the optimizer as zero-cost source
alternatives: a hit prunes the whole upstream cone from enumeration AND
from execution.

Entries are keyed by

``(subplan fingerprint, source-cardinality bands, cost-model version)``

* the **subplan fingerprint**
  (:func:`~repro.core.fingerprint.subplan_fingerprints`) is a Merkle
  digest of the computation rooted at the operator — structure, every
  parameter including UDF bytecode, and the whole upstream cone; unstable
  attributes poison the digest transitively, so an unkeyable subplan can
  only miss, never collide;
* the **source-cardinality bands** (quarter-octave, one per source in the
  cone, tagged by the source's own digest) re-key the store when the
  underlying data grows;
* the **cost-model version** ties an entry to the parameters it was
  produced under; :meth:`RheemContext.publish_cost_params` additionally
  flushes the store outright, exactly like the plan cache.

Admission is cost-aware: an output is materialized only when its
*benefit* — simulated recompute seconds per simulated megabyte — clears
``min_benefit`` (cheap-to-recompute or enormous outputs are not worth
the memory), and the store evicts the lowest-benefit entry (LRU within
equal benefit) whenever the configured byte budget overflows.

Thread safety: the store is shared by every worker of the job server;
all entry/stat mutation happens under one re-entrant lock, rank 55 in
the lock registry (:data:`repro.concurrency.order.LOCK_ORDER`) — above
the executor's per-job commit lock (publication happens at stage
commit), below the scheduler/tracer/metrics locks it may take inside.
Stats mirror into the shared metrics registry as ``intermediate.*``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..concurrency import OrderedRLock

if TYPE_CHECKING:
    from ..trace import MetricsRegistry
    from .channels import Channel

#: Statistic names mirrored into the registry as ``intermediate.<name>``.
INTERMEDIATE_STAT_NAMES = (
    "hits", "misses", "admissions", "rejections", "evictions", "flushes")


class StoredResult:
    """One admitted intermediate: a detached channel plus its economics."""

    __slots__ = ("key", "channel", "recompute_s", "mb", "benefit", "last_use")

    def __init__(self, key: tuple, channel: "Channel", recompute_s: float,
                 mb: float, benefit: float, last_use: int) -> None:
        self.key = key
        self.channel = channel
        self.recompute_s = recompute_s
        self.mb = mb
        self.benefit = benefit
        self.last_use = last_use


class IntermediateResultStore:
    """Bounded, benefit-ranked store of committed stage outputs.

    Args:
        budget_mb: Total simulated megabytes the store may hold; the
            lowest-benefit entries are evicted past it.
        min_benefit: Admission threshold in simulated recompute seconds
            per simulated megabyte — outputs cheaper to recompute than to
            hold are rejected.
        metrics: Shared registry receiving ``intermediate.*`` counters
            and the ``intermediate.bytes`` gauge.
    """

    def __init__(self, budget_mb: float = 256.0,
                 min_benefit: float = 0.005,
                 metrics: "MetricsRegistry | None" = None) -> None:
        self.budget_mb = budget_mb
        self.min_benefit = min_benefit
        self.metrics = metrics
        self.enabled = True
        self.stats: dict[str, int] = dict.fromkeys(
            INTERMEDIATE_STAT_NAMES, 0)
        self.bytes_mb = 0.0
        self._entries: dict[tuple, StoredResult] = {}
        self._tick = 0
        self._lock = OrderedRLock("intermediate_store", metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _stat(self, name: str) -> None:
        with self._lock:
            self.stats[name] += 1
        if self.metrics is not None:
            self.metrics.counter(f"intermediate.{name}").inc()

    def _publish_bytes_locked(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("intermediate.bytes").set(
                self.bytes_mb * 1e6)

    # ------------------------------------------------------------- access
    def get(self, key: tuple) -> StoredResult | None:
        """Look up one subplan key; counts a hit or a miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stat("misses")
                return None
            self._tick += 1
            entry.last_use = self._tick
            self._stat("hits")
            return entry

    def offer(self, key: tuple, channel: "Channel",
              recompute_s: float) -> bool:
        """Offer a committed stage output for admission.

        Returns ``True`` when the output was materialized into the store.
        Already-present keys only refresh their recency (the resident
        entry was produced by an identical computation).  Admission
        requires a known cardinality, a benefit ratio of at least
        ``min_benefit`` simulated seconds per simulated MB, and fitting
        the byte budget at all (single outputs larger than the whole
        budget are rejected, not admitted-then-evicted).
        """
        if not self.enabled:
            return False
        if channel.actual_count is None:
            return False
        mb = channel.sim_mb
        benefit = recompute_s / max(mb, 1e-9)
        with self._lock:
            resident = self._entries.get(key)
            if resident is not None:
                self._tick += 1
                resident.last_use = self._tick
                return False
            if benefit < self.min_benefit or mb > self.budget_mb:
                self._stat("rejections")
                return False
            self._tick += 1
            self._entries[key] = StoredResult(
                key, channel.detached(), recompute_s, mb, benefit,
                self._tick)
            self.bytes_mb += mb
            self._stat("admissions")
            while self.bytes_mb > self.budget_mb and len(self._entries) > 1:
                victim = min(self._entries.values(),
                             key=lambda e: (e.benefit, e.last_use))
                del self._entries[victim.key]
                self.bytes_mb -= victim.mb
                self._stat("evictions")
            self._publish_bytes_locked()
        return True

    def flush(self) -> None:
        """Drop every entry (cost-model parameters changed)."""
        with self._lock:
            if self._entries:
                self._stat("flushes")
                self._entries.clear()
                self.bytes_mb = 0.0
                self._publish_bytes_locked()

    def snapshot(self) -> dict[str, Any]:
        """Stats plus current size/bytes, for profile/REST surfaces."""
        with self._lock:
            return {**self.stats, "size": len(self._entries),
                    "bytes_mb": self.bytes_mb}
