"""Execution monitoring (Section 4.3 of the paper).

The monitor collects light-weight statistics while a plan runs — true
output cardinalities per logical operator and per-stage timings — and
checks the health of the execution: a large mismatch between measured and
estimated cardinalities pauses the plan and hands control to the
progressive optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulation.clock import StageTiming
from ..trace import MetricsRegistry
from .cardinality import CardinalityEstimate


@dataclass(frozen=True)
class OperatorObservation:
    """One execution operator's measured behaviour within a stage."""

    platform: str
    op_kind: str
    work: float
    cin: float
    cout: float


@dataclass
class StageObservation:
    """A stage-level execution log record (what the cost learner consumes).

    The paper's learner sees only stage runtimes, never isolated operator
    timings; ``known_seconds`` carries the directly metered non-CPU parts
    (I/O, network, dispatch) so the regression solves for the CPU model.
    """

    stage_id: str
    platform: str
    duration_s: float
    known_seconds: float
    operators: list[OperatorObservation]
    #: Whether the stage ran under the vectorized batch engines.  The two
    #: modes are genuinely different cost regimes (batch kernels amortize
    #: per-record interpreter cost), so the calibration corpus keys on
    #: this flag — blending them into one fit would poison both.
    vectorize: bool = False


@dataclass
class CardinalityMismatch:
    """One operator whose estimate missed the measured truth."""

    logical_id: int
    operator_name: str
    estimate: CardinalityEstimate
    actual: float


@dataclass
class Monitor:
    """Collects execution statistics for one job.

    Attributes:
        estimates: The optimizer's cardinality estimates per logical
            operator id (installed when the job starts).
        actuals: Measured simulated cardinalities per logical operator id
            (the latest measurement wins, e.g. across loop iterations).
    """

    estimates: dict[int, CardinalityEstimate] = field(default_factory=dict)
    actuals: dict[int, float] = field(default_factory=dict)
    operator_names: dict[int, str] = field(default_factory=dict)
    stage_timings: list[StageTiming] = field(default_factory=list)
    stage_observations: list[StageObservation] = field(default_factory=list)
    metrics: MetricsRegistry | None = field(default=None, repr=False)

    def record_cardinality(self, exec_op, sim_cardinality: float) -> None:
        """Called by the execution context after each operator output."""
        logical = exec_op.logical
        if logical is None:
            return
        self.actuals[logical.id] = sim_cardinality
        self.operator_names[logical.id] = logical.name
        if self.metrics is not None:
            self.metrics.counter("monitor.cardinalities").inc()

    def record_stage(self, timing: StageTiming,
                     platform: str = "",
                     operators: list[OperatorObservation] | None = None,
                     vectorize: bool = False) -> None:
        """Log one executed stage.

        Conversion-only stages (no operator observations) are recorded
        with an empty operator list so their directly metered
        ``known_seconds`` still reach the cost learner's calibration —
        dropping them would silently bias the fit.  ``vectorize`` tags
        the observation with the engine mode it was measured under.
        """
        self.stage_timings.append(timing)
        known = sum(e.seconds for e in timing.meter.events
                    if e.category != "cpu")
        self.stage_observations.append(StageObservation(
            timing.stage_id, platform, timing.duration, known,
            list(operators or []), vectorize=vectorize))
        if self.metrics is not None:
            self.metrics.counter("monitor.stages").inc()
            self.metrics.histogram("monitor.stage_sim_seconds").observe(
                timing.duration)

    def absorb(self, other: "Monitor") -> None:
        """Fold a committed per-attempt buffer into this monitor.

        The executor runs every stage attempt against a scratch monitor
        and absorbs it only on success, so crashed attempts never leak
        observations into the progressive optimizer's view.
        """
        self.actuals.update(other.actuals)
        self.operator_names.update(other.operator_names)
        self.stage_timings.extend(other.stage_timings)
        self.stage_observations.extend(other.stage_observations)

    def mismatches(self, tolerance: float = 2.0) -> list[CardinalityMismatch]:
        """Operators whose measured cardinality falls badly outside the
        estimated interval (the health check that triggers re-optimization).
        """
        out = []
        for logical_id, actual in self.actuals.items():
            estimate = self.estimates.get(logical_id)
            if estimate is None:
                continue
            if estimate.mismatches(actual, tolerance):
                out.append(CardinalityMismatch(
                    logical_id,
                    self.operator_names.get(logical_id, f"op#{logical_id}"),
                    estimate,
                    actual,
                ))
        return out

    def is_healthy(self, tolerance: float = 2.0) -> bool:
        """Whether every measured cardinality is within tolerance."""
        return not self.mismatches(tolerance)

    def report(self) -> str:
        """A human-readable execution profile: per-stage timings with their
        dominant charges, plus any cardinality surprises."""
        lines = ["stage timeline (simulated seconds):"]
        for timing in self.stage_timings:
            top = max(timing.meter.events, key=lambda e: e.seconds,
                      default=None)
            dominant = (f"  [dominated by {top.label}: {top.seconds:.2f}s]"
                        if top and top.seconds > 0 else "")
            lines.append(f"  {timing.stage_id:<28} start={timing.start:8.2f} "
                         f"dur={timing.duration:8.2f}{dominant}")
        surprises = self.mismatches()
        if surprises:
            lines.append("cardinality surprises:")
            for m in surprises:
                lines.append(f"  {m.operator_name}: expected {m.estimate}, "
                             f"measured {m.actual:,.0f}")
        return "\n".join(lines)
