"""Communication channels and the channel conversion graph (Section 3).

Data flows between execution operators via typed *channels* (an in-memory
collection, an RDD, a relation, a file...).  When adjacent operators run on
different platforms, *conversion operators* translate one channel into
another.  The space of conversions forms the **channel conversion graph**:
channels are vertices, conversions are directed edges.  The optimizer finds
minimum-cost conversion paths (and multicast trees, when one producer feeds
consumers on several platforms) over this graph — the paper proves the
multicast variant NP-hard and solves it exactly on the small graph via a
Steiner-tree style dynamic program, which we implement here
(Dreyfus-Wagner with a reusability constraint on branching nodes).

Adding a platform only requires conversions to/from ONE existing channel;
the graph supplies the rest.  This is the paper's O(n) vs O(n*m)
extensibility argument, exercised by an ablation benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .execution import ExecutionContext


class ChannelConversionError(RuntimeError):
    """Raised when no conversion path/tree connects the requested channels."""


@dataclass(frozen=True)
class ChannelDescriptor:
    """A channel *type*.

    Attributes:
        name: Unique key, e.g. ``"sparklite.rdd"``.
        platform: Owning platform name, or ``None`` for platform-neutral
            channels (files).
        reusable: Whether the channel can feed several consumers without
            being re-materialized (paper: RDDs are not, collections and
            files are).
        in_memory: Whether the channel occupies the platform's memory
            (files and disk-backed relations do not; the executor's memory
            checks skip them).
    """

    name: str
    platform: str | None
    reusable: bool
    in_memory: bool = True

    def __str__(self) -> str:
        return self.name


# Platform-neutral channels.
HDFS_FILE = ChannelDescriptor("vfs.hdfs", None, True, in_memory=False)
LOCAL_FILE = ChannelDescriptor("vfs.local", None, True, in_memory=False)


@dataclass
class Channel:
    """A channel *instance*: a descriptor plus a concrete payload.

    Attributes:
        descriptor: The channel type.
        payload: Engine-specific data (list, RDD, relation name, path...).
        sim_factor: Simulated records per actual record (see
            :mod:`repro.simulation.vfs`).
        bytes_per_record: Simulated bytes per simulated record.
        actual_count: Number of actual records, when known (lazy payloads
            may not know until materialized).
    """

    descriptor: ChannelDescriptor
    payload: Any
    sim_factor: float = 1.0
    bytes_per_record: float = 100.0
    actual_count: int | None = None

    @property
    def sim_cardinality(self) -> float:
        """Simulated record count, if the actual count is known."""
        if self.actual_count is None:
            raise ValueError(f"cardinality of {self.descriptor} not yet measured")
        return self.actual_count * self.sim_factor

    @property
    def sim_mb(self) -> float:
        """Simulated payload size in MB."""
        return self.sim_cardinality * self.bytes_per_record / 1e6

    def with_payload(self, payload: Any, descriptor: ChannelDescriptor | None = None,
                     actual_count: int | None = None) -> "Channel":
        """A sibling channel carrying ``payload`` (metadata preserved)."""
        return Channel(
            descriptor or self.descriptor,
            payload,
            self.sim_factor,
            self.bytes_per_record,
            actual_count,
        )


class Conversion:
    """A directed edge of the channel conversion graph.

    Concrete conversions supply a payload translation plus a cost model.
    They are "regular execution operators" in the paper's terms; the
    executor interleaves them with platform operators.
    """

    def __init__(
        self,
        source: ChannelDescriptor,
        target: ChannelDescriptor,
        convert_payload: Callable[[Channel, "ExecutionContext"], Channel],
        mb_per_s: float,
        overhead_s: float = 0.0,
        name: str | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self._convert_payload = convert_payload
        self.mb_per_s = mb_per_s
        self.overhead_s = overhead_s
        self.name = name or f"{source.name}->{target.name}"

    def estimate_cost(self, sim_records: float, bytes_per_record: float) -> float:
        """Estimated simulated seconds to move the given data volume."""
        mb = sim_records * bytes_per_record / 1e6
        return self.overhead_s + mb / self.mb_per_s

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> Channel:
        """Execute the conversion, charging the stage meter."""
        if channel.descriptor != self.source:
            raise ChannelConversionError(
                f"{self.name} cannot convert a {channel.descriptor} channel")
        out = self._convert_payload(channel, ctx)
        if out.actual_count is not None:
            ctx.meter.charge(
                self.estimate_cost(out.sim_cardinality, out.bytes_per_record),
                f"convert:{self.name}",
                category="net",
            )
        else:
            ctx.meter.charge(self.overhead_s, f"convert:{self.name}", category="net")
        return out

    def __repr__(self) -> str:
        return f"Conversion({self.name})"


@dataclass
class ConversionPath:
    """A source-to-target chain of conversions."""

    steps: list[Conversion]
    cost: float

    @property
    def target(self) -> ChannelDescriptor | None:
        return self.steps[-1].target if self.steps else None

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> Channel:
        for step in self.steps:
            channel = step.apply(channel, ctx)
        return channel


@dataclass
class ConversionTree:
    """A multicast conversion tree rooted at the produced channel.

    ``paths`` maps each requested target descriptor to the conversion chain
    reaching it; shared prefixes are stored once in ``shared_steps`` order
    so execution does not repeat work.
    """

    root: ChannelDescriptor
    paths: dict[str, ConversionPath]
    cost: float

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> dict[str, Channel]:
        """Convert ``channel`` once per shared edge; return per-target channels."""
        produced: dict[str, Channel] = {self.root.name: channel}
        out: dict[str, Channel] = {}
        for target_name, path in self.paths.items():
            current = channel
            key = self.root.name
            for step in path.steps:
                key = key + "|" + step.target.name
                if key in produced:
                    current = produced[key]
                else:
                    current = step.apply(current, ctx)
                    produced[key] = current
            out[target_name] = current
        return out


class ChannelConversionGraph:
    """Registry of channels and conversions with path/tree search."""

    def __init__(self) -> None:
        self._descriptors: dict[str, ChannelDescriptor] = {}
        self._edges: dict[str, list[Conversion]] = {}
        self.register_channel(HDFS_FILE)
        self.register_channel(LOCAL_FILE)

    # ------------------------------------------------------------- registry
    def register_channel(self, desc: ChannelDescriptor) -> None:
        existing = self._descriptors.get(desc.name)
        if existing is not None and existing != desc:
            raise ValueError(f"conflicting descriptor registration for {desc.name}")
        self._descriptors[desc.name] = desc
        self._edges.setdefault(desc.name, [])

    def register_conversion(self, conv: Conversion) -> None:
        self.register_channel(conv.source)
        self.register_channel(conv.target)
        self._edges[conv.source.name].append(conv)

    def descriptor(self, name: str) -> ChannelDescriptor:
        try:
            return self._descriptors[name]
        except KeyError:
            raise ChannelConversionError(f"unknown channel {name!r}") from None

    def descriptors(self) -> list[ChannelDescriptor]:
        return list(self._descriptors.values())

    def conversions_from(self, name: str) -> list[Conversion]:
        return list(self._edges.get(name, []))

    # ------------------------------------------------------------ searching
    def cheapest_path(
        self,
        source: ChannelDescriptor,
        target: ChannelDescriptor,
        sim_records: float,
        bytes_per_record: float = 100.0,
    ) -> ConversionPath:
        """Dijkstra over the conversion graph for a single consumer.

        Raises:
            ChannelConversionError: If the target is unreachable.
        """
        if source.name == target.name:
            return ConversionPath([], 0.0)
        dist: dict[str, float] = {source.name: 0.0}
        back: dict[str, tuple[str, Conversion]] = {}
        heap: list[tuple[float, str]] = [(0.0, source.name)]
        visited: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target.name:
                break
            for conv in self._edges.get(node, []):
                weight = conv.estimate_cost(sim_records, bytes_per_record)
                nd = d + weight
                if nd < dist.get(conv.target.name, float("inf")):
                    dist[conv.target.name] = nd
                    back[conv.target.name] = (node, conv)
                    heapq.heappush(heap, (nd, conv.target.name))
        if target.name not in visited:
            raise ChannelConversionError(
                f"no conversion path from {source.name} to {target.name}")
        steps: list[Conversion] = []
        node = target.name
        while node != source.name:
            prev, conv = back[node]
            steps.append(conv)
            node = prev
        steps.reverse()
        return ConversionPath(steps, dist[target.name])

    def multicast_tree(
        self,
        source: ChannelDescriptor,
        targets: list[ChannelDescriptor],
        sim_records: float,
        bytes_per_record: float = 100.0,
    ) -> ConversionTree:
        """Minimum-cost conversion tree reaching all ``targets``.

        Exact Steiner-tree dynamic program (Dreyfus-Wagner) over the small
        conversion graph, with the constraint that branching may only happen
        at *reusable* channels.  Single-target requests reduce to
        :meth:`cheapest_path`.

        Raises:
            ChannelConversionError: If some target is unreachable.
        """
        unique = {t.name: t for t in targets}
        names = sorted(unique)
        if not names:
            return ConversionTree(source, {}, 0.0)
        if len(names) == 1:
            path = self.cheapest_path(source, unique[names[0]], sim_records,
                                      bytes_per_record)
            return ConversionTree(source, {names[0]: path}, path.cost)

        # All-pairs shortest paths among relevant nodes via repeated Dijkstra.
        nodes = list(self._descriptors)
        paths: dict[str, dict[str, ConversionPath]] = {}
        for start in nodes:
            paths[start] = {}
            for end in nodes:
                try:
                    paths[start][end] = self.cheapest_path(
                        self._descriptors[start], self._descriptors[end],
                        sim_records, bytes_per_record)
                except ChannelConversionError:
                    continue

        full = (1 << len(names)) - 1
        index = {name: i for i, name in enumerate(names)}
        inf = float("inf")
        # dp[mask][node] = min cost of a tree rooted at node covering mask.
        dp: list[dict[str, float]] = [dict() for _ in range(full + 1)]
        choice: list[dict[str, tuple]] = [dict() for _ in range(full + 1)]
        for name in names:
            mask = 1 << index[name]
            for node in nodes:
                if name in paths.get(node, {}):
                    dp[mask][node] = paths[node][name].cost
                    choice[mask][node] = ("path", name)
        for mask in range(1, full + 1):
            if mask & (mask - 1) == 0:
                continue  # singletons done above
            # Merge two sub-trees at a reusable node.
            sub = (mask - 1) & mask
            while sub:
                rest = mask ^ sub
                if sub < rest:  # avoid symmetric duplicates
                    for node in nodes:
                        if not self._descriptors[node].reusable:
                            continue
                        a = dp[sub].get(node, inf)
                        b = dp[rest].get(node, inf)
                        if a + b < dp[mask].get(node, inf):
                            dp[mask][node] = a + b
                            choice[mask][node] = ("merge", sub, rest)
                sub = (sub - 1) & mask
            # Extend: reach the merge node from elsewhere.
            for node in nodes:
                base = dp[mask].get(node)
                if base is None:
                    continue
                for start in nodes:
                    if node in paths.get(start, {}):
                        cost = paths[start][node].cost + base
                        if cost < dp[mask].get(start, inf):
                            dp[mask][start] = cost
                            choice[mask][start] = ("via", node)
        total = dp[full].get(source.name)
        if total is None:
            missing = [n for n in names
                       if n not in paths.get(source.name, {})]
            raise ChannelConversionError(
                f"no conversion tree from {source.name} to {names}"
                + (f" (unreachable: {missing})" if missing else ""))

        # Reconstruct per-target conversion chains.
        target_paths: dict[str, ConversionPath] = {}

        def build(mask: int, node: str, prefix: list[Conversion],
                  prefix_cost: float) -> None:
            what = choice[mask][node]
            if what[0] == "path":
                name = what[1]
                p = paths[node][name]
                target_paths[name] = ConversionPath(
                    prefix + p.steps, prefix_cost + p.cost)
            elif what[0] == "merge":
                __, sub, rest = what
                build(sub, node, list(prefix), prefix_cost)
                build(rest, node, list(prefix), prefix_cost)
            else:  # via
                mid = what[1]
                p = paths[node][mid]
                build(mask, mid, prefix + p.steps, prefix_cost + p.cost)

        build(full, source.name, [], 0.0)
        return ConversionTree(source, target_paths, total)
