"""Communication channels and the channel conversion graph (Section 3).

Data flows between execution operators via typed *channels* (an in-memory
collection, an RDD, a relation, a file...).  When adjacent operators run on
different platforms, *conversion operators* translate one channel into
another.  The space of conversions forms the **channel conversion graph**:
channels are vertices, conversions are directed edges.  The optimizer finds
minimum-cost conversion paths (and multicast trees, when one producer feeds
consumers on several platforms) over this graph — the paper proves the
multicast variant NP-hard and solves it exactly on the small graph via a
Steiner-tree style dynamic program, which we implement here
(Dreyfus-Wagner with a reusability constraint on branching nodes).

Adding a platform only requires conversions to/from ONE existing channel;
the graph supplies the rest.  This is the paper's O(n) vs O(n*m)
extensibility argument, exercised by an ablation benchmark.

Because the optimizer asks for conversion paths thousands of times per
enumeration (once per candidate edge wiring), the graph memoizes its
searches: path *structure* is cached per ``(source, target, volume band)``
— where a band is a quarter-octave of the simulated data volume — while
costs are always recomputed exactly for the requested volume.  One full
single-source Dijkstra fills the whole cache row for that band, and
``multicast_tree`` reuses the same rows as its Steiner all-pairs table.
Registering a channel or conversion invalidates everything.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Callable, TYPE_CHECKING

from ..concurrency import OrderedRLock

if TYPE_CHECKING:  # pragma: no cover
    from ..trace import MetricsRegistry
    from .execution import ExecutionContext


def volume_band(value: float) -> int:
    """Quantize a positive magnitude into a quarter-octave log2 band.

    Conversion costs are linear in data volume, so the cheapest path can
    only flip where cost lines cross; within a ~19%-wide band the winner is
    stable for every realistic conversion graph, which makes the band a
    safe memo key (costs themselves are never taken from the cache).
    """
    if value <= 1.0:
        return 0
    return int(round(math.log2(value) * 4))


class ChannelConversionError(RuntimeError):
    """Raised when no conversion path/tree connects the requested channels."""


@dataclass(frozen=True)
class ChannelDescriptor:
    """A channel *type*.

    Attributes:
        name: Unique key, e.g. ``"sparklite.rdd"``.
        platform: Owning platform name, or ``None`` for platform-neutral
            channels (files).
        reusable: Whether the channel can feed several consumers without
            being re-materialized (paper: RDDs are not, collections and
            files are).
        in_memory: Whether the channel occupies the platform's memory
            (files and disk-backed relations do not; the executor's memory
            checks skip them).
    """

    name: str
    platform: str | None
    reusable: bool
    in_memory: bool = True

    def __str__(self) -> str:
        return self.name


# Platform-neutral channels.
HDFS_FILE = ChannelDescriptor("vfs.hdfs", None, True, in_memory=False)
LOCAL_FILE = ChannelDescriptor("vfs.local", None, True, in_memory=False)


@dataclass
class Channel:
    """A channel *instance*: a descriptor plus a concrete payload.

    Attributes:
        descriptor: The channel type.
        payload: Engine-specific data (list, RDD, relation name, path...).
        sim_factor: Simulated records per actual record (see
            :mod:`repro.simulation.vfs`).
        bytes_per_record: Simulated bytes per simulated record.
        actual_count: Number of actual records, when known (lazy payloads
            may not know until materialized).
    """

    descriptor: ChannelDescriptor
    payload: Any
    sim_factor: float = 1.0
    bytes_per_record: float = 100.0
    actual_count: int | None = None

    @property
    def sim_cardinality(self) -> float:
        """Simulated record count, if the actual count is known."""
        if self.actual_count is None:
            raise ValueError(f"cardinality of {self.descriptor} not yet measured")
        return self.actual_count * self.sim_factor

    @property
    def sim_mb(self) -> float:
        """Simulated payload size in MB."""
        return self.sim_cardinality * self.bytes_per_record / 1e6

    def with_payload(self, payload: Any, descriptor: ChannelDescriptor | None = None,
                     actual_count: int | None = None) -> "Channel":
        """A sibling channel carrying ``payload`` (metadata preserved)."""
        return Channel(
            descriptor or self.descriptor,
            payload,
            self.sim_factor,
            self.bytes_per_record,
            actual_count,
        )

    def detached(self) -> "Channel":
        """A defensive copy for fan-out points (copy-on-write semantics).

        No-op operators (caches, sinks) that would otherwise return their
        *input* channel object alias the payload container into every
        sibling branch; a downstream operator mutating that container in
        place (e.g. a ``map_partitions`` UDF sorting its partition) would
        silently corrupt the cached/sunk data.  Mutable containers are
        shallow-copied; immutable payloads (record batches, tuples, path
        strings) are shared as-is.
        """
        payload = self.payload
        if isinstance(payload, list):
            payload = list(payload)
        elif isinstance(payload, dict):
            payload = dict(payload)
        return Channel(self.descriptor, payload, self.sim_factor,
                      self.bytes_per_record, self.actual_count)


class Conversion:
    """A directed edge of the channel conversion graph.

    Concrete conversions supply a payload translation plus a cost model.
    They are "regular execution operators" in the paper's terms; the
    executor interleaves them with platform operators.
    """

    def __init__(
        self,
        source: ChannelDescriptor,
        target: ChannelDescriptor,
        convert_payload: Callable[[Channel, "ExecutionContext"], Channel],
        mb_per_s: float,
        overhead_s: float = 0.0,
        name: str | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self._convert_payload = convert_payload
        self.mb_per_s = mb_per_s
        self.overhead_s = overhead_s
        self.name = name or f"{source.name}->{target.name}"

    def estimate_cost(self, sim_records: float, bytes_per_record: float) -> float:
        """Estimated simulated seconds to move the given data volume."""
        mb = sim_records * bytes_per_record / 1e6
        return self.overhead_s + mb / self.mb_per_s

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> Channel:
        """Execute the conversion, charging the stage meter."""
        if channel.descriptor != self.source:
            raise ChannelConversionError(
                f"{self.name} cannot convert a {channel.descriptor} channel")
        out = self._convert_payload(channel, ctx)
        if out.actual_count is not None:
            ctx.meter.charge(
                self.estimate_cost(out.sim_cardinality, out.bytes_per_record),
                f"convert:{self.name}",
                category="net",
            )
        else:
            ctx.meter.charge(self.overhead_s, f"convert:{self.name}", category="net")
        return out

    def __repr__(self) -> str:
        return f"Conversion({self.name})"


@dataclass
class ConversionPath:
    """A source-to-target chain of conversions."""

    steps: list[Conversion]
    cost: float

    @property
    def target(self) -> ChannelDescriptor | None:
        return self.steps[-1].target if self.steps else None

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> Channel:
        for step in self.steps:
            channel = step.apply(channel, ctx)
        return channel


@dataclass
class ConversionTree:
    """A multicast conversion tree rooted at the produced channel.

    ``paths`` maps each requested target descriptor to the conversion chain
    reaching it; shared prefixes are stored once in ``shared_steps`` order
    so execution does not repeat work.
    """

    root: ChannelDescriptor
    paths: dict[str, ConversionPath]
    cost: float

    def apply(self, channel: Channel, ctx: "ExecutionContext") -> dict[str, Channel]:
        """Convert ``channel`` once per shared edge; return per-target channels."""
        produced: dict[str, Channel] = {self.root.name: channel}
        out: dict[str, Channel] = {}
        for target_name, path in self.paths.items():
            current = channel
            key = self.root.name
            for step in path.steps:
                key = key + "|" + step.target.name
                if key in produced:
                    current = produced[key]
                else:
                    current = step.apply(current, ctx)
                    produced[key] = current
            out[target_name] = current
        return out


#: Sentinel distinguishing "never solved" from "solved: unreachable".
_UNSOLVED = object()

#: Counter names tracked in :attr:`ChannelConversionGraph.cache_stats`.
CACHE_STAT_NAMES = ("path_hits", "path_misses", "tree_hits", "tree_misses",
                    "dijkstra_runs", "invalidations")


class ChannelConversionGraph:
    """Registry of channels and conversions with memoized path/tree search.

    The graph (edges + memo tables) is shared read-mostly across the job
    server's worker threads; one re-entrant lock serializes registration,
    invalidation and memo-table fills.  Rank 40 in the lock registry
    (:data:`repro.concurrency.order.LOCK_ORDER`): above the metrics lock
    (``_stat`` mirrors counters while holding it), never held while
    calling into the plan cache or the server's job table.

    Args:
        metrics: Optional shared registry mirroring the graph's
            ``conversion_cache.*`` hit/miss counters (see
            :mod:`repro.trace.metrics`).
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._descriptors: dict[str, ChannelDescriptor] = {}
        self._edges: dict[str, list[Conversion]] = {}
        self.metrics = metrics
        #: Set False to disable memoization (ablations / lossless tests).
        self.caching = True
        #: Bumped on every mutation; external caches key off it.
        self.version = 0
        #: Monotonic counters of cache behaviour (cheap test access).
        self.cache_stats: dict[str, int] = dict.fromkeys(CACHE_STAT_NAMES, 0)
        # (source, target, rec_band, bpr_band) -> tuple[Conversion] | None
        # (None = proven unreachable; costs are recomputed on every hit).
        self._path_cache: dict[tuple[str, str, int, int], Any] = {}
        # Rows already filled by a full single-source Dijkstra.
        self._solved_rows: set[tuple[str, int, int]] = set()
        # source -> frozenset of reachable descriptor names.
        self._reachable: dict[str, frozenset[str]] = {}
        # (source, targets, rec_band, bpr_band) -> {target: tuple[Conversion]}
        self._tree_cache: dict[tuple, dict[str, tuple[Conversion, ...]]] = {}
        #: Serializes registration and memo-table mutation (see class doc).
        self._lock = OrderedRLock("conversion_graph", metrics)
        self.register_channel(HDFS_FILE)
        self.register_channel(LOCAL_FILE)

    # ------------------------------------------------------------- registry
    def register_channel(self, desc: ChannelDescriptor) -> None:
        with self._lock:
            existing = self._descriptors.get(desc.name)
            if existing is not None and existing != desc:
                raise ValueError(
                    f"conflicting descriptor registration for {desc.name}")
            if existing is None:
                self._invalidate()
            self._descriptors[desc.name] = desc
            self._edges.setdefault(desc.name, [])

    def register_conversion(self, conv: Conversion) -> None:
        with self._lock:
            self.register_channel(conv.source)
            self.register_channel(conv.target)
            self._edges[conv.source.name].append(conv)
            self._invalidate()

    def _invalidate(self) -> None:
        """Drop every memoized search result (the graph changed)."""
        with self._lock:
            self.version += 1
            if self._path_cache or self._solved_rows or self._tree_cache \
                    or self._reachable:
                self._stat("invalidations")
            self._path_cache.clear()
            self._solved_rows.clear()
            self._reachable.clear()
            self._tree_cache.clear()

    def _stat(self, name: str) -> None:
        with self._lock:
            self.cache_stats[name] += 1
        if self.metrics is not None:
            self.metrics.counter(f"conversion_cache.{name}").inc()

    def descriptor(self, name: str) -> ChannelDescriptor:
        try:
            return self._descriptors[name]
        except KeyError:
            raise ChannelConversionError(f"unknown channel {name!r}") from None

    def descriptors(self) -> list[ChannelDescriptor]:
        return list(self._descriptors.values())

    def conversions_from(self, name: str) -> list[Conversion]:
        return list(self._edges.get(name, []))

    # ------------------------------------------------------------ searching
    def cheapest_path(
        self,
        source: ChannelDescriptor,
        target: ChannelDescriptor,
        sim_records: float,
        bytes_per_record: float = 100.0,
    ) -> ConversionPath:
        """Minimum-cost conversion chain for a single consumer.

        Memoized: one full Dijkstra per (source, volume band) caches the
        path structure to EVERY reachable channel; the returned cost is
        always recomputed exactly for the requested volume.

        Raises:
            ChannelConversionError: If the target is unreachable.
        """
        if source.name == target.name:
            return ConversionPath([], 0.0)
        steps = self._path_steps(source, target, sim_records, bytes_per_record)
        if steps is None:
            raise ChannelConversionError(
                f"no conversion path from {source.name} to {target.name}")
        return ConversionPath(list(steps), sum(
            conv.estimate_cost(sim_records, bytes_per_record)
            for conv in steps))

    def _path_steps(
        self,
        source: ChannelDescriptor,
        target: ChannelDescriptor,
        sim_records: float,
        bytes_per_record: float,
    ) -> tuple[Conversion, ...] | None:
        """Cached conversion chain ``source -> target`` (None: unreachable)."""
        if not self.caching:
            row = self._solve_row(source.name, sim_records, bytes_per_record)
            return row.get(target.name)
        band = (volume_band(sim_records), volume_band(bytes_per_record))
        key = (source.name, target.name, *band)
        with self._lock:
            steps = self._path_cache.get(key, _UNSOLVED)
            if steps is not _UNSOLVED:
                self._stat("path_hits")
                return steps
            self._stat("path_misses")
            row_key = (source.name, *band)
            if row_key not in self._solved_rows:
                row = self._solve_row(source.name, sim_records,
                                      bytes_per_record)
                for name in self._descriptors:
                    self._path_cache[(source.name, name, *band)] = \
                        row.get(name)
                self._solved_rows.add(row_key)
            return self._path_cache[key]

    def _solve_row(self, source_name: str, sim_records: float,
                   bytes_per_record: float) -> dict[str, tuple[Conversion, ...]]:
        """One single-source Dijkstra: cheapest chains to ALL reachable nodes."""
        self._stat("dijkstra_runs")
        dist: dict[str, float] = {source_name: 0.0}
        back: dict[str, tuple[str, Conversion]] = {}
        heap: list[tuple[float, str]] = [(0.0, source_name)]
        visited: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for conv in self._edges.get(node, []):
                weight = conv.estimate_cost(sim_records, bytes_per_record)
                nd = d + weight
                if nd < dist.get(conv.target.name, float("inf")):
                    dist[conv.target.name] = nd
                    back[conv.target.name] = (node, conv)
                    heapq.heappush(heap, (nd, conv.target.name))
        row: dict[str, tuple[Conversion, ...]] = {}
        for name in visited:
            steps: list[Conversion] = []
            node = name
            while node != source_name:
                prev, conv = back[node]
                steps.append(conv)
                node = prev
            steps.reverse()
            row[name] = tuple(steps)
        return row

    def reachable_from(self, name: str) -> frozenset[str]:
        """Descriptor names reachable from ``name`` (BFS, memoized)."""
        with self._lock:
            cached = self._reachable.get(name) if self.caching else None
            if cached is None:
                seen = {name}
                frontier = [name]
                while frontier:
                    node = frontier.pop()
                    for conv in self._edges.get(node, []):
                        if conv.target.name not in seen:
                            seen.add(conv.target.name)
                            frontier.append(conv.target.name)
                cached = frozenset(seen)
                if self.caching:
                    self._reachable[name] = cached
            return cached

    def multicast_tree(
        self,
        source: ChannelDescriptor,
        targets: list[ChannelDescriptor],
        sim_records: float,
        bytes_per_record: float = 100.0,
    ) -> ConversionTree:
        """Minimum-cost conversion tree reaching all ``targets``.

        Exact Steiner-tree dynamic program (Dreyfus-Wagner) over the small
        conversion graph, with the constraint that branching may only happen
        at *reusable* channels.  Single-target requests reduce to
        :meth:`cheapest_path`.

        Raises:
            ChannelConversionError: If some target is unreachable.
        """
        unique = {t.name: t for t in targets}
        names = sorted(unique)
        if not names:
            return ConversionTree(source, {}, 0.0)
        if len(names) == 1:
            path = self.cheapest_path(source, unique[names[0]], sim_records,
                                      bytes_per_record)
            return ConversionTree(source, {names[0]: path}, path.cost)

        # Nodes the source cannot reach can never join the tree: prune them
        # from the Steiner DP up front, and fail fast on unreachable targets
        # instead of silently iterating them through the DP tables.
        reachable = self.reachable_from(source.name)
        missing = [n for n in names if n not in reachable]
        if missing:
            raise ChannelConversionError(
                f"no conversion tree from {source.name} to {names}"
                f" (unreachable: {missing})")

        with self._lock:
            return self._multicast_tree_locked(
                source, unique, names, reachable, sim_records,
                bytes_per_record)

    def _multicast_tree_locked(
        self,
        source: ChannelDescriptor,
        unique: dict[str, ChannelDescriptor],
        names: list[str],
        reachable: frozenset[str],
        sim_records: float,
        bytes_per_record: float,
    ) -> ConversionTree:
        """The Steiner solve, run under the graph lock (memo-table fills)."""
        band = (volume_band(sim_records), volume_band(bytes_per_record))
        tree_key = (source.name, tuple(names), *band)
        if self.caching:
            cached = self._tree_cache.get(tree_key)
            if cached is not None:
                self._stat("tree_hits")
                return self._tree_from_segments(source, cached, sim_records,
                                                bytes_per_record)
            self._stat("tree_misses")

        # The Steiner all-pairs table reuses the memoized Dijkstra rows (one
        # per (node, band), shared with cheapest_path and later calls)
        # instead of recomputing |V|^2 searches per invocation.
        nodes = [n for n in self._descriptors if n in reachable]
        paths: dict[str, dict[str, ConversionPath]] = {}
        for start in nodes:
            start_desc = self._descriptors[start]
            paths[start] = {}
            for end in nodes:
                if start == end:
                    paths[start][end] = ConversionPath([], 0.0)
                    continue
                steps = self._path_steps(start_desc, self._descriptors[end],
                                         sim_records, bytes_per_record)
                if steps is not None:
                    paths[start][end] = ConversionPath(list(steps), sum(
                        conv.estimate_cost(sim_records, bytes_per_record)
                        for conv in steps))

        full = (1 << len(names)) - 1
        index = {name: i for i, name in enumerate(names)}
        inf = float("inf")
        # dp[mask][node] = min cost of a tree rooted at node covering mask.
        dp: list[dict[str, float]] = [dict() for _ in range(full + 1)]
        choice: list[dict[str, tuple]] = [dict() for _ in range(full + 1)]
        for name in names:
            mask = 1 << index[name]
            for node in nodes:
                if name in paths.get(node, {}):
                    dp[mask][node] = paths[node][name].cost
                    choice[mask][node] = ("path", name)
        for mask in range(1, full + 1):
            if mask & (mask - 1) == 0:
                continue  # singletons done above
            # Merge two sub-trees at a reusable node.
            sub = (mask - 1) & mask
            while sub:
                rest = mask ^ sub
                if sub < rest:  # avoid symmetric duplicates
                    for node in nodes:
                        if not self._descriptors[node].reusable:
                            continue
                        a = dp[sub].get(node, inf)
                        b = dp[rest].get(node, inf)
                        if a + b < dp[mask].get(node, inf):
                            dp[mask][node] = a + b
                            choice[mask][node] = ("merge", sub, rest)
                sub = (sub - 1) & mask
            # Extend: reach the merge node from elsewhere.
            for node in nodes:
                base = dp[mask].get(node)
                if base is None:
                    continue
                for start in nodes:
                    if node in paths.get(start, {}):
                        cost = paths[start][node].cost + base
                        if cost < dp[mask].get(start, inf):
                            dp[mask][start] = cost
                            choice[mask][start] = ("via", node)
        total = dp[full].get(source.name)
        if total is None:
            raise ChannelConversionError(
                f"no conversion tree from {source.name} to {names}"
                " (no reusable branching channel connects them)")

        # Reconstruct per-target conversion chains.  Each chain is kept as a
        # list of *segments*: a shared "via"/merge prefix carries the same
        # segment id across every target below it, so a cached tree can be
        # re-costed later charging each shared segment exactly once (the
        # same accounting as the DP total).
        segments_by_target: dict[str, tuple[tuple[int, tuple[Conversion, ...]],
                                            ...]] = {}
        next_segment = itertools.count().__next__

        def build(mask: int, node: str,
                  prefix: tuple[tuple[int, tuple[Conversion, ...]], ...]
                  ) -> None:
            what = choice[mask][node]
            if what[0] == "path":
                name = what[1]
                segments_by_target[name] = prefix + (
                    (next_segment(), tuple(paths[node][name].steps)),)
            elif what[0] == "merge":
                __, sub, rest = what
                build(sub, node, prefix)
                build(rest, node, prefix)
            else:  # via
                mid = what[1]
                build(mask, mid, prefix + (
                    (next_segment(), tuple(paths[node][mid].steps)),))

        build(full, source.name, ())
        if self.caching:
            self._tree_cache[tree_key] = segments_by_target
        tree = self._tree_from_segments(source, segments_by_target,
                                        sim_records, bytes_per_record)
        assert abs(tree.cost - total) <= 1e-9 + 1e-9 * abs(total)
        return tree

    def _tree_from_segments(
        self,
        source: ChannelDescriptor,
        segments_by_target: dict[str, tuple],
        sim_records: float,
        bytes_per_record: float,
    ) -> ConversionTree:
        """Re-cost a (possibly cached) tree structure for the given volume.

        Segments shared between targets (same segment id) are charged once
        in the tree total, matching the Steiner DP's accounting; per-target
        path costs sum their own full chains, matching ``cheapest_path``.
        """
        target_paths: dict[str, ConversionPath] = {}
        charged: set[int] = set()
        total = 0.0
        for name, segments in segments_by_target.items():
            steps: list[Conversion] = []
            cost = 0.0
            for segment_id, segment_steps in segments:
                segment_cost = sum(
                    conv.estimate_cost(sim_records, bytes_per_record)
                    for conv in segment_steps)
                steps.extend(segment_steps)
                cost += segment_cost
                if segment_id not in charged:
                    charged.add(segment_id)
                    total += segment_cost
            target_paths[name] = ConversionPath(steps, cost)
        return ConversionTree(source, target_paths, total)
