"""Cross-platform fault tolerance (the paper's Section 7 future work).

The paper notes RHEEM "relies on the fault-tolerance of the underlying
platforms and is thus susceptible to failures while moving data across
platforms", planning a basic cross-platform mechanism.  This module
implements that mechanism for the reproduction: because every stage
boundary materializes its channels, a failed stage can simply be re-run
from its inputs.  The executor retries failed stages up to a bound,
charging the wasted attempts to the simulated clock.

Failures are injected deterministically (specific stages) or
probabilistically (seeded), so tests can exercise recovery paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class PlatformFailure(RuntimeError):
    """A (simulated) platform crash while executing a stage."""

    def __init__(self, stage_id: str, attempt: int) -> None:
        super().__init__(f"stage {stage_id} failed (attempt {attempt})")
        self.stage_id = stage_id
        self.attempt = attempt


@dataclass
class FaultInjector:
    """Decides which stage attempts crash.

    Attributes:
        failures: Explicit plan: stage id -> number of consecutive failures
            to inject (deterministic tests).
        probability: Additionally, each attempt fails with this probability
            (chaos testing), drawn from a seeded RNG.
        seed: RNG seed for the probabilistic part.
    """

    failures: dict[str, int] = field(default_factory=dict)
    probability: float = 0.0
    seed: int = 13

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        self._rng = random.Random(self.seed)
        self.injected = 0

    def should_fail(self, stage_id: str, attempt: int) -> bool:
        """Whether this attempt of ``stage_id`` crashes."""
        planned = self.failures.get(stage_id, 0)
        if attempt < planned:
            self.injected += 1
            return True
        if self.probability and self._rng.random() < self.probability:
            self.injected += 1
            return True
        return False
