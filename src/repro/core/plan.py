"""Rheem plans: data-flow DAGs of platform-agnostic operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .cardinality import CardinalityEstimate
from .operators import (
    EstimationContext,
    InputRef,
    LoopOperator,
    Operator,
    SinkOperator,
    SubPlan,
)


class PlanValidationError(ValueError):
    """Raised when a plan is structurally broken."""


def topological_order(roots: Sequence[Operator]) -> list[Operator]:
    """Operators reachable upstream from ``roots``, producers first.

    Loop bodies are NOT traversed: a loop operator is a single vertex of the
    outer plan.  Broadcast (side) inputs count as edges.

    Raises:
        PlanValidationError: If a cycle is detected (feedback edges are only
            legal inside loop bodies, which are separate sub-plans).
    """
    order: list[Operator] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(op: Operator) -> None:
        mark = state.get(op.id)
        if mark == 1:
            return
        if mark == 0:
            raise PlanValidationError(f"cycle detected at {op}")
        state[op.id] = 0
        for ref in list(op.inputs) + list(op.side_inputs):
            if ref is not None:
                visit(ref.op)
        state[op.id] = 1
        order.append(op)

    for root in roots:
        visit(root)
    return order


@dataclass(frozen=True)
class Consumer:
    """One downstream attachment point of an operator output."""

    op: Operator
    input_index: int
    is_broadcast: bool


class RheemPlan:
    """A complete Rheem plan, anchored at its sink operators.

    Args:
        sinks: One sink per plan branch (paper: "at least one source operator
            and one sink operator per branch").
    """

    def __init__(self, sinks: Iterable[Operator]) -> None:
        self.sinks = list(sinks)
        if not self.sinks:
            raise PlanValidationError("a plan needs at least one sink")
        self._topo = topological_order(self.sinks)
        self.validate()

    # ------------------------------------------------------------ structure
    def operators(self, include_loop_bodies: bool = False) -> list[Operator]:
        """All plan operators in topological order."""
        if not include_loop_bodies:
            return list(self._topo)
        out: list[Operator] = []
        for op in self._topo:
            if isinstance(op, LoopOperator):
                out.extend(op.body.operators())
            out.append(op)
        return out

    def sources(self) -> list[Operator]:
        return [op for op in self._topo if op.is_source]

    def consumers(self) -> dict[int, list[Consumer]]:
        """Map from producer operator id to its downstream consumers."""
        cons: dict[int, list[Consumer]] = {op.id: [] for op in self._topo}
        for op in self._topo:
            for idx, ref in enumerate(op.inputs):
                if ref is not None:
                    cons[ref.op.id].append(Consumer(op, idx, False))
            for ref in op.side_inputs:
                cons[ref.op.id].append(Consumer(op, -1, True))
        return cons

    def operator_count(self, include_loop_bodies: bool = True) -> int:
        """Number of operators (Table 1 reports these per task)."""
        return len(self.operators(include_loop_bodies))

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            PlanValidationError: On unwired inputs, non-sink roots, or broken
                loop bodies.
        """
        for sink in self.sinks:
            if not isinstance(sink, SinkOperator):
                raise PlanValidationError(f"plan root {sink} is not a sink")
        for op in self._topo:
            for idx, ref in enumerate(op.inputs):
                if ref is None:
                    raise PlanValidationError(f"{op} input {idx} is not connected")
            if isinstance(op, LoopOperator):
                _validate_body(op.body)
        if not any(op.is_source for op in self._topo):
            raise PlanValidationError("a plan needs at least one source")

    # ----------------------------------------------------------- estimation
    def estimate_cardinalities(
        self, ctx: EstimationContext | None = None
    ) -> dict[int, CardinalityEstimate]:
        """Bottom-up interval cardinality estimation (Section 4.1).

        Returns a map from operator id to its output-cardinality estimate.
        Loop bodies are estimated too (one representative iteration), keyed
        by the body operators' ids.
        """
        ctx = ctx or EstimationContext()
        estimates: dict[int, CardinalityEstimate] = {}
        _estimate_operators(self._topo, ctx, estimates)
        # Surface loop-body estimates as well (the loop estimator pinned the
        # placeholders while estimating the loop's own output above).
        for op in self._topo:
            if isinstance(op, LoopOperator):
                _estimate_operators(op.body.operators(), ctx, estimates)
        return estimates

    def __repr__(self) -> str:
        return f"RheemPlan({len(self._topo)} operators, {len(self.sinks)} sinks)"


def _validate_body(body: SubPlan) -> None:
    body_ops = set(op.id for op in body.operators())
    for ref in body.outputs:
        if ref.op.id not in body_ops:
            raise PlanValidationError(f"body output {ref.op} unreachable")
    for inp in body.inputs:
        if inp.num_inputs != 0:
            raise PlanValidationError("loop inputs must be sources")


def _estimate_operators(
    ops_in_topo_order: Sequence[Operator],
    ctx: EstimationContext,
    out: dict[int, CardinalityEstimate],
) -> None:
    for op in ops_in_topo_order:
        if op.id in out:
            continue
        input_estimates = [
            out[ref.op.id] for ref in op.inputs if ref is not None
        ]
        out[op.id] = op.estimate_cardinality(input_estimates, ctx)


def estimate_subplan(
    body: SubPlan, ctx: EstimationContext
) -> CardinalityEstimate:
    """Estimate a loop body's output cardinality for one iteration.

    Assumes the body's :class:`LoopInput` placeholders have been pinned by
    the enclosing loop operator.
    """
    estimates: dict[int, CardinalityEstimate] = {}
    _estimate_operators(body.operators(), ctx, estimates)
    return estimates[body.outputs[0].op.id]
