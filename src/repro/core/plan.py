"""Rheem plans: data-flow DAGs of platform-agnostic operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..analysis.collector import notify_plan
from ..analysis.diagnostics import Diagnostic, Severity
from .cardinality import CardinalityEstimate
from .operators import (
    EstimationContext,
    InputRef,
    LoopOperator,
    Operator,
    SinkOperator,
    SubPlan,
)


class PlanValidationError(ValueError):
    """Raised when a plan is structurally broken.

    Carries ALL structural violations found (not just the first) as a list
    of :class:`~repro.analysis.diagnostics.Diagnostic` objects, so users
    can fix a broken plan in one pass.
    """

    def __init__(self, message: str,
                 diagnostics: Sequence[Diagnostic] = ()) -> None:
        super().__init__(message)
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    @classmethod
    def from_diagnostics(cls, diagnostics: Sequence[Diagnostic]
                         ) -> "PlanValidationError":
        message = "; ".join(d.message for d in diagnostics)
        return cls(message, diagnostics)


def _structural(rule_id: str, message: str, op: Operator | None = None,
                hint: str | None = None) -> Diagnostic:
    return Diagnostic(
        rule_id=rule_id, severity=Severity.ERROR, message=message,
        op_id=op.id if op is not None else 0,
        op_name=op.name if op is not None else "",
        hint=hint)


def topological_order(roots: Sequence[Operator]) -> list[Operator]:
    """Operators reachable upstream from ``roots``, producers first.

    Loop bodies are NOT traversed: a loop operator is a single vertex of the
    outer plan.  Broadcast (side) inputs count as edges.  The walk is
    iterative (an explicit DFS stack), so plans thousands of operators deep
    do not overflow the Python call stack.

    Raises:
        PlanValidationError: If a cycle is detected (feedback edges are only
            legal inside loop bodies, which are separate sub-plans).
    """
    order: list[Operator] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    for root in roots:
        if state.get(root.id) == 1:
            continue
        if state.get(root.id) == 0:
            raise PlanValidationError(
                f"cycle detected at {root}",
                [_structural("RP102", f"cycle detected at {root}", root)])
        state[root.id] = 0
        stack: list[tuple[Operator, Iterator[InputRef | None]]] = [
            (root, iter(list(root.inputs) + list(root.side_inputs)))]
        while stack:
            op, edges = stack[-1]
            advanced = False
            for ref in edges:
                if ref is None:
                    continue
                mark = state.get(ref.op.id)
                if mark == 1:
                    continue
                if mark == 0:
                    raise PlanValidationError(
                        f"cycle detected at {ref.op}",
                        [_structural("RP102",
                                     f"cycle detected at {ref.op}", ref.op)])
                state[ref.op.id] = 0
                stack.append((ref.op, iter(list(ref.op.inputs)
                                           + list(ref.op.side_inputs))))
                advanced = True
                break
            if not advanced:
                state[op.id] = 1
                order.append(op)
                stack.pop()
    return order


@dataclass(frozen=True)
class Consumer:
    """One downstream attachment point of an operator output."""

    op: Operator
    input_index: int
    is_broadcast: bool


class RheemPlan:
    """A complete Rheem plan, anchored at its sink operators.

    Args:
        sinks: One sink per plan branch (paper: "at least one source operator
            and one sink operator per branch").
    """

    def __init__(self, sinks: Iterable[Operator]) -> None:
        self.sinks = list(sinks)
        if not self.sinks:
            raise PlanValidationError(
                "a plan needs at least one sink",
                [_structural("RP101", "a plan needs at least one sink")])
        self._topo = topological_order(self.sinks)
        #: Analyzer findings attached by the last static-analysis run
        #: (:mod:`repro.analysis`); empty until a pass runs.
        self.diagnostics = []
        self.validate()
        notify_plan(self)

    # ------------------------------------------------------------ structure
    def operators(self, include_loop_bodies: bool = False) -> list[Operator]:
        """All plan operators in topological order."""
        if not include_loop_bodies:
            return list(self._topo)
        out: list[Operator] = []
        for op in self._topo:
            if isinstance(op, LoopOperator):
                out.extend(op.body.operators())
            out.append(op)
        return out

    def sources(self) -> list[Operator]:
        return [op for op in self._topo if op.is_source]

    def consumers(self) -> dict[int, list[Consumer]]:
        """Map from producer operator id to its downstream consumers."""
        cons: dict[int, list[Consumer]] = {op.id: [] for op in self._topo}
        for op in self._topo:
            for idx, ref in enumerate(op.inputs):
                if ref is not None:
                    cons[ref.op.id].append(Consumer(op, idx, False))
            for ref in op.side_inputs:
                cons[ref.op.id].append(Consumer(op, -1, True))
        return cons

    def operator_count(self, include_loop_bodies: bool = True) -> int:
        """Number of operators (Table 1 reports these per task)."""
        return len(self.operators(include_loop_bodies))

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural well-formedness.

        ALL violations are collected before raising, so one pass over the
        error fixes every unwired input, non-sink root and broken loop body
        at once.

        Raises:
            PlanValidationError: Carrying the full diagnostics list.
        """
        diagnostics: list[Diagnostic] = []
        for sink in self.sinks:
            if not isinstance(sink, SinkOperator):
                diagnostics.append(_structural(
                    "RP101", f"plan root {sink} is not a sink", sink,
                    hint="terminate every branch with a sink operator"))
        for op in self._topo:
            for idx, ref in enumerate(op.inputs):
                if ref is None:
                    diagnostics.append(_structural(
                        "RP100", f"{op} input {idx} is not connected", op,
                        hint=f"wire a producer into input slot {idx}"))
            if isinstance(op, LoopOperator):
                diagnostics.extend(_body_diagnostics(op))
        if not any(op.is_source for op in self._topo):
            diagnostics.append(_structural(
                "RP103", "a plan needs at least one source",
                hint="start every branch from a source operator"))
        if diagnostics:
            raise PlanValidationError.from_diagnostics(diagnostics)

    # ----------------------------------------------------------- estimation
    def estimate_cardinalities(
        self, ctx: EstimationContext | None = None
    ) -> dict[int, CardinalityEstimate]:
        """Bottom-up interval cardinality estimation (Section 4.1).

        Returns a map from operator id to its output-cardinality estimate.
        Loop bodies are estimated too (one representative iteration), keyed
        by the body operators' ids.
        """
        ctx = ctx or EstimationContext()
        estimates: dict[int, CardinalityEstimate] = {}
        _estimate_operators(self._topo, ctx, estimates)
        # Surface loop-body estimates as well (the loop estimator pinned the
        # placeholders while estimating the loop's own output above).
        for op in self._topo:
            if isinstance(op, LoopOperator):
                _estimate_operators(op.body.operators(), ctx, estimates)
        return estimates

    def __repr__(self) -> str:
        return f"RheemPlan({len(self._topo)} operators, {len(self.sinks)} sinks)"


def _body_diagnostics(loop: LoopOperator) -> list[Diagnostic]:
    body = loop.body
    diagnostics: list[Diagnostic] = []
    body_ops = set(op.id for op in body.operators())
    for ref in body.outputs:
        if ref.op.id not in body_ops:
            diagnostics.append(_structural(
                "RP104", f"body output {ref.op} unreachable", loop,
                hint="loop outputs must be produced inside the body"))
    for inp in body.inputs:
        if inp.num_inputs != 0:
            diagnostics.append(_structural(
                "RP104", "loop inputs must be sources", loop,
                hint="use LoopInput placeholders as the body's sources"))
    return diagnostics


def _estimate_operators(
    ops_in_topo_order: Sequence[Operator],
    ctx: EstimationContext,
    out: dict[int, CardinalityEstimate],
) -> None:
    for op in ops_in_topo_order:
        if op.id in out:
            continue
        input_estimates = [
            out[ref.op.id] for ref in op.inputs if ref is not None
        ]
        out[op.id] = op.estimate_cardinality(input_estimates, ctx)


def estimate_subplan(
    body: SubPlan, ctx: EstimationContext
) -> CardinalityEstimate:
    """Estimate a loop body's output cardinality for one iteration.

    Assumes the body's :class:`LoopInput` placeholders have been pinned by
    the enclosing loop operator.
    """
    estimates: dict[int, CardinalityEstimate] = {}
    _estimate_operators(body.operators(), ctx, estimates)
    return estimates[body.outputs[0].op.id]
