"""Optimization objectives beyond runtime (Section 3/4: "the cost can be
any user-specified cost, e.g., runtime or monetary cost").

An objective is a per-platform weight applied to every second the
optimizer attributes to that platform: all-ones minimizes runtime; dollar
rates minimize money.  The same weights can price a finished execution
from its stage timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Illustrative on-demand prices, dollars per cluster-hour.  The in-process
#: platforms run on the (already paid) driver node; the distributed ones
#: bill all ten workers.
DEFAULT_HOURLY_RATES: dict[str, float] = {
    "pystreams": 0.40,
    "jgraph": 0.40,
    "pgres": 1.20,
    "sparklite": 9.60,
    "flinklite": 9.60,
    "graphlite": 9.60,
}


@dataclass(frozen=True)
class Objective:
    """What a unit of platform time costs, per platform.

    Attributes:
        name: Label for reports.
        platform_weights: Multiplier applied to each simulated second spent
            on a platform (missing platforms default to 1.0).
    """

    name: str
    platform_weights: dict[str, float] = field(default_factory=dict)

    def weight(self, platform: str) -> float:
        return self.platform_weights.get(platform, 1.0)


#: Minimize end-to-end runtime — the default behaviour.
RUNTIME = Objective("runtime")


def monetary(hourly_rates: dict[str, float] | None = None) -> Objective:
    """An objective minimizing dollars instead of seconds.

    Args:
        hourly_rates: Dollars per hour per platform;
            :data:`DEFAULT_HOURLY_RATES` if omitted.
    """
    rates = hourly_rates or DEFAULT_HOURLY_RATES
    return Objective("monetary",
                     {p: rate / 3600.0 for p, rate in rates.items()})


def price_of(result, hourly_rates: dict[str, float] | None = None) -> float:
    """Dollar cost of a finished execution, from its stage observations.

    Stage time on unknown platforms (the driver) is free.
    """
    rates = hourly_rates or DEFAULT_HOURLY_RATES
    total = 0.0
    for record in result.monitor.stage_observations:
        rate = rates.get(record.platform)
        if rate is not None:
            total += record.duration_s * rate / 3600.0
    return total
