"""The cost-based cross-platform optimizer (Section 4.1 of the paper).

Pipeline:

1. **Inflation** — every logical operator is annotated with all its
   execution alternatives (:func:`repro.core.mappings.inflate`).
2. **Cardinality and cost annotation** — interval estimates, bottom-up.
3. **Data movement planning** — per plan edge, the channel conversion graph
   supplies minimum-cost conversion paths between the producing and the
   required channel types.
4. **Plan enumeration** — a dynamic program over the plan in topological
   order.  Partial plans covering the same prefix are *pruned losslessly*:
   only the cheapest survives per signature ``(open output channels,
   platforms already started)`` — the paper's lemma that a dominated
   subplan with identical boundary channels can never be part of the
   optimum (platform start-up costs are in the signature, so they cannot
   break dominance).

Loops are enumerated recursively: the loop body is itself enumerated (its
placeholder inputs may materialize as any data channel), and each surviving
body frontier becomes one execution alternative of the loop operator, costed
at ``iterations x body cost`` plus per-iteration feedback conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..platforms.base import ExecutionOperator
from ..trace import NO_TRACER, MetricsRegistry
from .cardinality import CardinalityEstimate
from .channels import (
    Channel,
    ChannelConversionError,
    ChannelConversionGraph,
    ChannelDescriptor,
    ConversionPath,
    volume_band,
)
from .cost import CostEstimate, CostModel
from .execution import (
    DRIVER_PLATFORM,
    ExecutionPlan,
    ExecutionTask,
    LoopImplementation,
    TaskInput,
)
from .mappings import ExecutionAlternative, MappingRegistry, inflate
from .operators import (
    CartesianProduct,
    ChannelSource,
    CollectionSource,
    EstimationContext,
    FlatMap,
    IEJoin,
    Join,
    LoopInput,
    LoopOperator,
    Map,
    Operator,
    SinkOperator,
    TableSource,
    TextFileSource,
    Union,
)
from .plan import RheemPlan
from .resultstore import IntermediateResultStore, StoredResult


class OptimizationError(RuntimeError):
    """Raised when no executable plan exists (e.g. unreachable channels)."""


class PlanAnalysisError(OptimizationError):
    """Raised when static analysis finds error-level defects in a plan.

    The optimizer refuses to enumerate such plans: the defects (type
    mismatches, impossible platform pins, unreachable channels) guarantee
    a worse failure later.  ``report`` carries the full diagnostics.
    """

    def __init__(self, report) -> None:
        lines = "; ".join(d.render() for d in report.errors)
        super().__init__(f"static analysis rejected the plan: {lines}")
        self.report = report


#: Default bytes/record assumed when planning data movement.
PLANNING_BYTES_PER_RECORD = 100.0


@dataclass
class ChannelSourceDecision:
    """Decision for placeholder sources (loop inputs, materialized channels)."""

    descriptor: ChannelDescriptor


@dataclass
class CachedResultDecision(ChannelSourceDecision):
    """Reuse a stored intermediate: a zero-cost source alternative.

    Enumeration treats it exactly like a materialized-channel source (the
    ``ChannelSourceDecision`` base), so a store hit contributes no
    operator, conversion, startup or dispatch cost — pruning the whole
    upstream cone out of the plan space.  Plan construction turns it into
    a :class:`CachedResultExec` task that re-emits the stored channel.
    """

    channel: Channel


@dataclass
class ReuseProbe:
    """Outcome of probing the intermediate-result store for one plan.

    Attributes:
        keys: Operator id -> store key, for every reusable-keyed operator
            (stable subplan fingerprint, sinks excluded).  The executor
            publishes committed outputs under these keys.
        roots: Operator id -> stored entry, for the hits chosen as reuse
            roots (the ones closest to the sinks).
        needed: Ids of the operators that still require enumeration and
            execution (the roots themselves included; everything strictly
            above a root is pruned).
    """

    keys: dict[int, tuple]
    roots: dict[int, StoredResult]
    needed: set[int]


@dataclass
class LoopDecision:
    """A chosen implementation of a loop operator."""

    loop: LoopOperator
    body: "PartialPlan"
    input_descriptors: list[ChannelDescriptor]
    output_descriptor: ChannelDescriptor
    feedback: ConversionPath
    platforms: frozenset[str]
    cost: CostEstimate


Decision = ExecutionAlternative | ChannelSourceDecision | LoopDecision


class PartialPlan:
    """A costed assignment of decisions to a prefix of the plan.

    Stored as a *delta chain*: each extension records only the decision and
    conversions it added over ``parent``, so the enumeration's hot loop
    never copies dictionaries.  The full ``decisions``/``conversions``
    mappings materialize lazily — in practice only for the handful of
    winners that reach plan construction.  ``open_channels`` stays a real
    dict (it is read on every extension) but is shared with the parent
    whenever an operator neither closes nor opens a channel.
    """

    __slots__ = ("cost", "gm", "open_channels", "platforms", "parent",
                 "_decision_delta", "_conversion_delta", "_decisions",
                 "_conversions", "_signature")

    def __init__(
        self,
        cost: CostEstimate | None = None,
        decisions: dict[int, Decision] | None = None,
        conversions: dict[tuple[int, int, int], ConversionPath] | None = None,
        open_channels: dict[int, ChannelDescriptor] | None = None,
        platforms: frozenset[str] = frozenset(),
        parent: "PartialPlan | None" = None,
        decision_delta: tuple[int, Decision] | None = None,
        conversion_delta: tuple = (),
    ) -> None:
        self.cost = cost if cost is not None else CostEstimate.zero()
        #: Scalar plan-comparison key, computed once per candidate.
        self.gm = self.cost.geometric_mean
        self.open_channels = open_channels if open_channels is not None else {}
        self.platforms = platforms
        self.parent = parent
        self._decision_delta = decision_delta
        self._conversion_delta = conversion_delta
        # Chain roots (and explicitly-constructed plans) are materialized.
        self._decisions = (dict(decisions) if decisions is not None
                           else {} if parent is None else None)
        self._conversions = (dict(conversions) if conversions is not None
                             else {} if parent is None else None)
        self._signature: tuple | None = None

    def _materialize(self, attr: str) -> dict:
        chain: list[PartialPlan] = []
        node: PartialPlan | None = self
        while getattr(node, attr) is None:
            chain.append(node)  # type: ignore[arg-type]
            node = node.parent  # type: ignore[union-attr]
        merged = dict(getattr(node, attr))
        for part in reversed(chain):
            if attr == "_decisions":
                if part._decision_delta is not None:
                    merged[part._decision_delta[0]] = part._decision_delta[1]
            else:
                for key, path in part._conversion_delta:
                    merged[key] = path
        setattr(self, attr, merged)
        return merged

    @property
    def decisions(self) -> dict[int, Decision]:
        """Operator id -> chosen decision (materialized lazily)."""
        return self._decisions if self._decisions is not None \
            else self._materialize("_decisions")

    @property
    def conversions(self) -> dict[tuple[int, int, int], ConversionPath]:
        """(producer, consumer, slot) -> conversion path (lazy)."""
        return self._conversions if self._conversions is not None \
            else self._materialize("_conversions")

    def signature(self) -> tuple:
        """The lossless-pruning key: (open boundary channels, platforms)."""
        if self._signature is None:
            open_sig = tuple(sorted(
                (op_id, desc.name)
                for op_id, desc in self.open_channels.items()))
            self._signature = (open_sig, self.platforms)
        return self._signature


class Optimizer:
    """Turns Rheem plans into execution plans.

    Args:
        registry: Operator mappings of all registered platforms.
        conversion_graph: The channel conversion graph.
        cost_model: Operator/startup/overhead cost estimation.
        estimation_ctx: Source metadata for cardinality estimation, plus any
            measured cardinalities pinned by the progressive optimizer.
        allowed_platforms: Optional whitelist (used by the single-platform
            baseline runs of the paper's Figure 9).
    """

    def __init__(
        self,
        registry: MappingRegistry,
        conversion_graph: ChannelConversionGraph,
        cost_model: CostModel,
        estimation_ctx: EstimationContext | None = None,
        allowed_platforms: set[str] | None = None,
        objective=None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        from .objectives import RUNTIME

        self.registry = registry
        self.graph = conversion_graph
        self.cost_model = cost_model
        self.estimation_ctx = estimation_ctx or EstimationContext()
        self.allowed_platforms = allowed_platforms
        #: What a second on each platform costs (runtime / monetary / ...).
        self.objective = objective or RUNTIME
        #: Number of partial plans retained across the last enumeration
        #: (exposed for the pruning ablation benchmark).
        self.last_enumeration_size = 0
        self.prune = True
        #: Static analysis gate: lint every plan before enumeration, abort
        #: on error-level findings (set False to optimize unchecked).
        self.analysis = True
        self.tracer = tracer or NO_TRACER
        self.metrics = metrics or MetricsRegistry()
        #: Beam-search engagement threshold (RHEEMix plan-space sampling):
        #: plans with MORE operators than this bound the per-operator
        #: frontier to :attr:`beam_width` cheapest survivors.  At or below
        #: the threshold enumeration is the bit-for-bit identical lossless
        #: DP — the beam path is never entered, so small plans cannot be
        #: affected.  ``None`` disables the beam entirely.
        self.beam_threshold: int | None = 48
        #: Frontier bound once the beam engages.  Survivors are ranked by
        #: (cost gm, signature) so the truncation is deterministic and
        #: ties break exactly like the lossless first-seen rule.
        self.beam_width = 24
        #: Per-phase counters of the last :meth:`pick_best` run.
        self.stats: dict[str, int] = dict.fromkeys(
            ("plans_enumerated", "plans_pruned", "conversion_paths_solved",
             "plans_beam_dropped"), 0)

    # ----------------------------------------------------------- public API
    def optimize(self, plan: RheemPlan) -> ExecutionPlan:
        """Produce the minimum-estimated-cost execution plan."""
        best, cards = self.pick_best(plan)
        return self._build_execution_plan(plan, best)

    def pick_best(self, plan: RheemPlan,
                  reuse: ReuseProbe | None = None
                  ) -> tuple[PartialPlan, dict]:
        """Run static analysis + inflation + enumeration.

        Error-level lint findings abort before enumeration
        (:class:`PlanAnalysisError`); warnings annotate ``plan.diagnostics``
        and decay the confidence of estimates flowing through impure UDFs.

        A ``reuse`` probe with hits (:meth:`probe_reuse`) restricts
        enumeration to the operators below the reuse roots; each root's
        only alternative is its stored intermediate.  If the pruned plan
        space turns out unexecutable (a stored channel unreachable from
        every downstream alternative), enumeration falls back to the full
        plan and clears ``reuse.roots`` so the caller knows no reuse
        happened.
        """
        self.stats = dict.fromkeys(self.stats, 0)
        with self.tracer.span("optimizer.analyze"):
            report = self._analyze(plan)
        with self.tracer.span("optimizer.estimate") as estimate_span:
            cards = plan.estimate_cardinalities(self.estimation_ctx)
            if report is not None:
                for op_id, penalty in report.confidence_penalties.items():
                    est = cards.get(op_id)
                    if est is not None:
                        cards[op_id] = CardinalityEstimate(
                            est.lower, est.upper, est.confidence * penalty)
            estimate_span.set("operators_estimated", len(cards))
        with self.tracer.span("optimizer.inflate") as inflate_span:
            inflated = inflate(plan, self.registry)
            ops = plan.operators()
            inflate_span.set("operators", len(ops))
        with self.tracer.span("optimizer.movement") as movement_span:
            bprs = self._estimate_record_bytes(ops, cards=cards)
            movement_span.set("record_widths_modeled", len(bprs))

        def alternatives(op: Operator):
            if isinstance(op, LoopOperator):
                return self._loop_decisions(op, cards, bprs)
            return self._filter_alternatives(op, inflated.alternatives_for(op))

        enum_ops: Sequence[Operator] = ops
        enum_alts = alternatives
        if reuse is not None and reuse.roots:
            enum_ops = [op for op in ops if op.id in reuse.needed]

            def enum_alts(op: Operator):  # noqa: F811 — reuse-aware shadow
                entry = reuse.roots.get(op.id)
                if entry is not None:
                    return [CachedResultDecision(entry.channel.descriptor,
                                                 entry.channel)]
                return alternatives(op)

        with self.tracer.span("optimizer.enumerate") as enumerate_span:
            try:
                results = self._enumerate_ops(enum_ops, cards, bprs,
                                              enum_alts,
                                              phantom_open=set(),
                                              include_startup=True)
            except OptimizationError:
                if enum_ops is ops:
                    raise
                # A stored intermediate's channel may be unreachable from
                # every downstream alternative; re-enumerate the full plan
                # instead of failing a job that was executable without
                # reuse.  Clearing the roots tells the caller no cached
                # decision made it into the plan.
                self.metrics.counter("optimizer.reuse_fallbacks").inc()
                assert reuse is not None
                reuse.roots.clear()
                results = self._enumerate_ops(ops, cards, bprs, alternatives,
                                              phantom_open=set(),
                                              include_startup=True)
            for key, value in self.stats.items():
                enumerate_span.set(key, value)
                self.metrics.counter(f"optimizer.{key}").inc(value)
        # Conversion paths are solved while enumerating, so the movement
        # phase's headline counter is only known after the fact.
        movement_span.set("conversion_paths_solved",
                          self.stats["conversion_paths_solved"])
        if not results:
            raise OptimizationError("enumeration produced no executable plan")
        best = min(results, key=lambda p: p.cost.geometric_mean)
        return best, cards

    # -------------------------------------------------------- result reuse
    def probe_reuse(self, plan: RheemPlan, store: IntermediateResultStore,
                    cost_model_version: int,
                    lookup: bool = True) -> ReuseProbe:
        """Probe the intermediate-result store for ``plan``'s subplans.

        Walks from the sinks toward the sources, looking each operator's
        ``(subplan fingerprint, source bands, cost-model version)`` key up
        in the store and stopping the descent at the first hit — so the
        chosen reuse roots are the ones closest to the sinks (maximal
        pruning).  Sinks themselves are never reuse roots: their side
        effects (writing files, delivering the result collection) must
        re-run on every submission.

        ``lookup=False`` computes the keys only (for publication after a
        plan-cache miss) without touching the store — probing a store
        known to hold nothing would count meaningless misses.
        """
        from .fingerprint import subplan_fingerprints

        with self.tracer.span("optimizer.reuse_probe") as span:
            fps = subplan_fingerprints(plan)
            bands = self._reuse_bands(plan, fps)
            keys = {op.id: (fps[op.id], bands[op.id], cost_model_version)
                    for op in plan.operators()
                    if op.id in fps and not isinstance(op, SinkOperator)}
            roots: dict[int, StoredResult] = {}
            needed: set[int] = set()
            stack: list[Operator] = list(plan.sinks)
            while stack:
                op = stack.pop()
                if op.id in needed:
                    continue
                needed.add(op.id)
                key = keys.get(op.id)
                entry = (store.get(key)
                         if lookup and key is not None else None)
                if entry is not None:
                    roots[op.id] = entry
                    continue
                for ref in list(op.inputs) + list(op.side_inputs):
                    if ref is not None:
                        stack.append(ref.op)
            span.set("subplans_keyed", len(keys))
            span.set("reuse_hits", len(roots))
        return ReuseProbe(keys=keys, roots=roots, needed=needed)

    def _reuse_bands(self, plan: RheemPlan,
                     fps: dict[int, str]) -> dict[int, tuple]:
        """Per-operator source-cardinality band signature.

        An operator's signature covers every source in its upstream cone:
        sorted ``(source subplan digest, quarter-octave band)`` pairs —
        the digest disambiguates which source a band belongs to, so the
        signature is stable across submissions while re-keying the store
        when any contributing source grows.
        """
        cones: dict[int, frozenset] = {}
        bands: dict[int, tuple] = {}
        for op in plan.operators():
            cone: frozenset = frozenset()
            for ref in list(op.inputs) + list(op.side_inputs):
                if ref is not None:
                    cone |= cones.get(ref.op.id, frozenset())
            if op.is_source and op.id in fps:
                band = volume_band(op.estimate_cardinality(
                    [], self.estimation_ctx).geometric_mean)
                cone |= {(fps[op.id], band)}
            cones[op.id] = cone
            if op.id in fps:
                bands[op.id] = tuple(sorted(cone))
        return bands

    # ------------------------------------------------------ static analysis
    def _analyze(self, plan: RheemPlan):
        """Lint ``plan`` pre-enumeration; None when analysis is disabled."""
        if not self.analysis:
            return None
        from ..analysis.collector import notify_report
        from ..analysis.engine import PlanAnalyzer

        analyzer = PlanAnalyzer(
            registry=self.registry,
            conversion_graph=self.graph,
            estimation_ctx=self.estimation_ctx,
        )
        report = analyzer.analyze(plan)
        notify_report(plan, report)
        if not report.ok:
            raise PlanAnalysisError(report)
        return report

    # -------------------------------------------------- record-size model
    def _estimate_record_bytes(
        self, ops_seq: Sequence[Operator],
        out: dict[int, float] | None = None,
        cards: dict[int, CardinalityEstimate] | None = None,
    ) -> dict[int, float]:
        """Per-operator output record width, for movement-cost planning.

        ``cards`` (when available) weights multi-input widths by branch
        cardinality — a union of a wide trickle and a narrow torrent is
        mostly narrow.
        """
        out = out if out is not None else {}
        vfs = self.estimation_ctx.vfs
        for op in ops_seq:
            if op.id in out:
                continue
            ins = [out[ref.op.id] for ref in op.inputs
                   if ref is not None and ref.op.id in out]
            if isinstance(op, TextFileSource):
                if vfs is not None and vfs.exists(op.path):
                    b = vfs.read(op.path).bytes_per_record
                else:
                    b = PLANNING_BYTES_PER_RECORD
            elif isinstance(op, CollectionSource):
                b = op.bytes_per_record
            elif isinstance(op, TableSource):
                b = self.estimation_ctx.table_bytes.get(
                    op.table, PLANNING_BYTES_PER_RECORD)
            elif isinstance(op, ChannelSource):
                b = op.channel.bytes_per_record
            elif isinstance(op, (Map, FlatMap)) and op.bytes_per_record:
                b = op.bytes_per_record
            elif isinstance(op, (Join, CartesianProduct, IEJoin)):
                b = sum(ins) if ins else PLANNING_BYTES_PER_RECORD
            elif isinstance(op, Union) and len(ins) == 2:
                b = self._weighted_union_bytes(op, ins, cards)
            elif isinstance(op, LoopInput):
                b = (op.pinned_bytes if op.pinned_bytes is not None
                     else PLANNING_BYTES_PER_RECORD)
            elif isinstance(op, LoopOperator):
                for loop_input, ref in zip(op.body.inputs, op.inputs):
                    loop_input.pinned_bytes = out.get(
                        ref.op.id, PLANNING_BYTES_PER_RECORD)
                self._estimate_record_bytes(op.body.operators(), out, cards)
                b = out[op.body.outputs[0].op.id]
            elif ins:
                b = ins[0]
            else:
                b = PLANNING_BYTES_PER_RECORD
            out[op.id] = b
        return out

    @staticmethod
    def _weighted_union_bytes(op: Operator, ins: list[float], cards) -> float:
        """Cardinality-weighted width of a two-input union (not ``ins[0]``:
        the left branch alone misprices movement when the branches differ)."""
        if cards is not None:
            weights = [cards[ref.op.id].geometric_mean
                       for ref in op.inputs
                       if ref is not None and ref.op.id in cards]
            if len(weights) == 2 and sum(weights) > 0:
                total = sum(weights)
                return (weights[0] * ins[0] + weights[1] * ins[1]) / total
        return (ins[0] + ins[1]) / 2.0

    # -------------------------------------------------------- alternatives
    def _filter_alternatives(self, op: Operator,
                             alts: list[ExecutionAlternative]):
        if self.allowed_platforms is not None:
            alts = [a for a in alts if a.platform in self.allowed_platforms]
        if op.side_inputs:
            alts = [a for a in alts if a.broadcast_descriptor() is not None]
        if not alts:
            raise OptimizationError(f"no usable execution alternative for {op}")
        return alts

    def _data_channel_descriptors(self) -> list[ChannelDescriptor]:
        return [d for d in self.graph.descriptors()
                if "broadcast" not in d.name]

    # --------------------------------------------------------------- loops
    def _loop_decisions(self, loop: LoopOperator, cards,
                        bprs) -> list[LoopDecision]:
        body_ops = loop.body.operators()
        output_op = loop.body.outputs[0].op
        phantom = {inp.id for inp in loop.body.inputs}
        phantom.add(output_op.id)
        body_bprs = self._estimate_record_bytes(body_ops, dict(bprs),
                                                cards=cards)

        def body_alternatives(op: Operator):
            if isinstance(op, LoopInput):
                descs = self._data_channel_descriptors()
                if op.index > 0:
                    # Loop-invariant inputs are converted once, outside the
                    # loop, so they must land on a reusable channel.
                    descs = [d for d in descs if d.reusable]
                return [ChannelSourceDecision(d) for d in descs]
            if isinstance(op, LoopOperator):
                return self._loop_decisions(op, cards, body_bprs)
            return self._filter_alternatives(
                op, self.registry.alternatives_for(op))

        # Platform start-up is a once-per-job cost: exclude it from the body
        # cost (which gets multiplied by the iteration count); the outer
        # enumeration charges it when the loop's platform set first appears.
        results = self._enumerate_ops(body_ops, cards, body_bprs,
                                      body_alternatives,
                                      phantom_open=phantom,
                                      include_startup=False)

        iterations = loop.expected_iterations()
        card_out = cards[output_op.id]
        decisions: list[LoopDecision] = []
        for partial in results:
            input_descs = [
                partial.open_channels[inp.id] for inp in loop.body.inputs]
            out_desc = partial.open_channels[output_op.id]
            try:
                feedback = self.graph.cheapest_path(
                    out_desc, input_descs[0], card_out.geometric_mean,
                    body_bprs[output_op.id])
            except ChannelConversionError:
                continue
            cost = partial.cost.times(iterations).plus(
                CostEstimate.fixed(feedback.cost * iterations))
            decisions.append(LoopDecision(
                loop=loop,
                body=partial,
                input_descriptors=input_descs,
                output_descriptor=out_desc,
                feedback=feedback,
                platforms=partial.platforms,
                cost=cost,
            ))
        if not decisions:
            raise OptimizationError(f"no executable body plan for {loop}")
        return decisions

    # ------------------------------------------------------------- the DP
    def _enumerate_ops(
        self,
        ops: Sequence[Operator],
        cards: dict[int, CardinalityEstimate],
        bprs: dict[int, float],
        alternatives: Callable[[Operator], list],
        phantom_open: set[int],
        include_startup: bool = True,
    ) -> list[PartialPlan]:
        """Enumerate execution plans for ``ops`` (topologically ordered).

        Returns the surviving partial plans covering ALL operators; with
        pruning enabled, one per boundary signature (lossless).  Operators
        in ``phantom_open`` keep their output channel in the signature even
        with no uncovered consumer (loop inputs/outputs).

        Above :attr:`beam_threshold` operators the lossless frontier is
        additionally bounded to the :attr:`beam_width` cheapest signatures
        after each operator step (beam search): on 100+-operator plans the
        signature space — open channels × touched-platform subsets — grows
        past what per-signature pruning alone can contain, and RHEEMix's
        answer is to sample the plan space rather than enumerate it.  The
        truncation order is deterministic (cost, then signature), so
        repeated optimizations of the same plan pick the same winner.
        """
        beam = (self.beam_width
                if (self.prune and self.beam_threshold is not None
                    and len(ops) > self.beam_threshold)
                else None)
        consumer_counts = self._consumer_counts(ops)
        remaining = dict(consumer_counts)
        frontier: list[PartialPlan] = [PartialPlan()]
        self.last_enumeration_size = 1
        # Signature tuples recur across every operator step; interning them
        # makes the dict probes below mostly pointer comparisons.
        intern: dict[tuple, tuple] = {}

        for op in ops:
            options = alternatives(op)
            to_close = set()
            consumed: dict[int, int] = {}
            for ref in list(op.inputs) + list(op.side_inputs):
                if ref is not None and ref.op.id in remaining:
                    consumed[ref.op.id] = consumed.get(ref.op.id, 0) + 1
            for pid, k in consumed.items():
                remaining[pid] -= k
                if remaining[pid] <= 0 and pid not in phantom_open:
                    to_close.add(pid)
            keep_open = (consumer_counts.get(op.id, 0) > 0
                         or op.id in phantom_open)

            # With pruning on, dominated candidates are dropped before a
            # PartialPlan is even constructed (_apply_decision consults
            # best_by_key); only per-signature winners ever materialize.
            best_by_key: dict[tuple, PartialPlan] | None = \
                {} if self.prune else None
            candidates: list[PartialPlan] = []
            for partial in frontier:
                for option in options:
                    extended = self._apply_decision(
                        op, option, partial, cards, bprs, to_close,
                        keep_open, include_startup, best_by_key, intern)
                    if extended is not None and best_by_key is None:
                        candidates.append(extended)
            if best_by_key is not None:
                if not best_by_key:
                    raise OptimizationError(
                        f"no executable plan at operator {op}")
                frontier = list(best_by_key.values())
                if beam is not None and len(frontier) > beam:
                    frontier.sort(key=self._beam_rank)
                    self.stats["plans_beam_dropped"] += len(frontier) - beam
                    del frontier[beam:]
            else:
                if not candidates:
                    raise OptimizationError(
                        f"no executable plan at operator {op}")
                frontier = candidates
            self.last_enumeration_size += len(frontier)
        return frontier

    @staticmethod
    def _beam_rank(partial: PartialPlan) -> tuple:
        """Deterministic beam order: cheapest first, signature-tie-broken.

        The signature tail makes equal-cost survivors sort identically
        across runs and cache states (frozensets have no stable iteration
        order, so platforms are sorted into a tuple)."""
        open_sig, platforms = partial.signature()
        return (partial.gm, open_sig, tuple(sorted(platforms)))

    @staticmethod
    def _consumer_counts(ops: Sequence[Operator]) -> dict[int, int]:
        counts: dict[int, int] = {op.id: 0 for op in ops}
        for op in ops:
            for ref in list(op.inputs) + list(op.side_inputs):
                if ref is not None and ref.op.id in counts:
                    counts[ref.op.id] += 1
        return counts

    def _apply_decision(
        self,
        op: Operator,
        option: Decision,
        partial: PartialPlan,
        cards: dict[int, CardinalityEstimate],
        bprs: dict[int, float],
        to_close: set[int],
        keep_open: bool,
        include_startup: bool,
        best_by_key: dict[tuple, PartialPlan] | None = None,
        intern: dict[tuple, tuple] | None = None,
    ) -> PartialPlan | None:
        """Extend ``partial`` with ``option`` for ``op``.

        When ``best_by_key`` is given (pruning enabled), the candidate is
        checked against the per-signature incumbent *before* any
        ``PartialPlan`` is built; dominated candidates cost only a tuple
        sort.  Survivors are registered in ``best_by_key`` and returned.
        """
        cost = partial.cost
        platforms = partial.platforms
        open_channels = partial.open_channels
        conv_delta: list[tuple[tuple[int, int, int], ConversionPath]] = []

        if isinstance(option, ChannelSourceDecision):
            out_desc = option.descriptor
        else:
            if isinstance(option, LoopDecision):
                in_descs = option.input_descriptors
                out_desc = option.output_descriptor
                option_platforms = option.platforms
                option_cost = option.cost
                bcast_desc = None
            else:
                in_descs = option.input_descriptors()
                out_desc = option.output_descriptor()
                option_platforms = frozenset({option.platform})
                cins = [cards[ref.op.id] for ref in op.inputs]
                bytes_in = (bprs.get(op.inputs[0].op.id,
                                     PLANNING_BYTES_PER_RECORD)
                            if op.inputs else PLANNING_BYTES_PER_RECORD)
                bytes_out = bprs.get(op.id, PLANNING_BYTES_PER_RECORD)
                # Memory feasibility: never plan onto a platform that cannot
                # hold the operator's estimated footprint (pessimistically,
                # on the upper cardinality bounds).  An explicit user pin
                # overrides the check — and may fail at runtime, like the
                # paper's killed JGraph runs.
                cap = self.cost_model.cluster.profile(
                    option.platform).memory_cap_mb
                demand = max(
                    o.memory_demand_mb([c.upper for c in cins],
                                       cards[op.id].upper,
                                       bytes_in, bytes_out)
                    for o in option.ops)
                if demand > cap and op.target_platform is None:
                    return None
                option_cost = option.cost(
                    self.cost_model, cins, cards[op.id], bytes_in,
                    bytes_out).times(self.objective.weight(option.platform))
                bcast_desc = option.broadcast_descriptor()

            # Wire data inputs, inserting conversions where channels differ.
            same_platform_input = False
            for slot, ref in enumerate(op.inputs):
                have = open_channels.get(ref.op.id)
                if have is None:
                    return None  # producer outside this enumeration scope
                want = in_descs[slot]
                if (not isinstance(option, LoopDecision)
                        and have.platform == option.platform):
                    same_platform_input = True
                path = self._conversion(have, want, cards[ref.op.id],
                                        bprs.get(ref.op.id,
                                                 PLANNING_BYTES_PER_RECORD))
                if path is None:
                    return None
                if path.steps:
                    conv_delta.append(((ref.op.id, op.id, slot), path))
                    cost = cost.plus(CostEstimate.fixed(path.cost))

            # Broadcast side inputs.
            for slot, ref in enumerate(op.side_inputs):
                have = open_channels.get(ref.op.id)
                if have is None or bcast_desc is None:
                    return None
                path = self._conversion(have, bcast_desc, cards[ref.op.id],
                                        bprs.get(ref.op.id,
                                                 PLANNING_BYTES_PER_RECORD))
                if path is None:
                    return None
                if path.steps:
                    conv_delta.append(((ref.op.id, op.id, -(slot + 1)), path))
                    cost = cost.plus(CostEstimate.fixed(path.cost))

            cost = cost.plus(option_cost)

            # Platform start-up: first touch of each platform in the job.
            if include_startup:
                for platform in option_platforms - platforms:
                    cost = cost.plus(CostEstimate.fixed(
                        self.cost_model.platform_startup(platform)
                        * self.objective.weight(platform)))
            platforms = platforms | option_platforms

            # Stage dispatch: a new stage starts when no input arrives from
            # the same platform (approximates the executor's stage cut).
            if not isinstance(option, LoopDecision) and not same_platform_input:
                profile = self.cost_model.cluster.profile(option.platform)
                fraction = max(o.tasks_fraction(profile) for o in option.ops)
                cost = cost.plus(CostEstimate.fixed(
                    profile.stage_overhead_s * fraction
                    * self.objective.weight(option.platform)))

        # Channel bookkeeping — copy-on-write: share the parent's dict when
        # this operator neither closes nor opens a boundary channel.
        if to_close or keep_open:
            open_channels = dict(open_channels)
            for pid in to_close:
                open_channels.pop(pid, None)
            if keep_open:
                open_channels[op.id] = out_desc

        self.stats["plans_enumerated"] += 1

        if best_by_key is not None:
            open_sig = tuple(sorted(
                (op_id, desc.name)
                for op_id, desc in open_channels.items()))
            sig = (open_sig, platforms)
            if intern is not None:
                sig = intern.setdefault(sig, sig)
            incumbent = best_by_key.get(sig)
            gm = cost.geometric_mean
            # First-seen wins ties: replace only on a strictly lower cost,
            # so cache-on/off runs break ties identically (determinism).
            if incumbent is not None and incumbent.gm <= gm:
                self.stats["plans_pruned"] += 1
                return None
            extended = PartialPlan(
                cost=cost,
                open_channels=open_channels,
                platforms=platforms,
                parent=partial,
                decision_delta=(op.id, option),
                conversion_delta=tuple(conv_delta),
            )
            extended._signature = sig
            if incumbent is not None:
                self.stats["plans_pruned"] += 1
            best_by_key[sig] = extended
            return extended

        return PartialPlan(
            cost=cost,
            open_channels=open_channels,
            platforms=platforms,
            parent=partial,
            decision_delta=(op.id, option),
            conversion_delta=tuple(conv_delta),
        )

    def _conversion(self, have: ChannelDescriptor, want: ChannelDescriptor,
                    card: CardinalityEstimate,
                    bytes_per_record: float) -> ConversionPath | None:
        if have.name == want.name:
            return ConversionPath([], 0.0)
        self.stats["conversion_paths_solved"] += 1
        try:
            return self.graph.cheapest_path(
                have, want, card.geometric_mean, bytes_per_record)
        except ChannelConversionError:
            return None

    # --------------------------------------------------- plan construction
    def _build_execution_plan(self, plan: RheemPlan,
                              best: PartialPlan) -> ExecutionPlan:
        tasks: dict[int, ExecutionTask] = {}
        ordered: list[ExecutionTask] = []

        def build(op: Operator) -> ExecutionTask:
            if op.id in tasks:
                return tasks[op.id]
            decision = best.decisions[op.id]
            if isinstance(decision, CachedResultDecision):
                # A reuse root: its upstream cone was pruned out of the
                # enumeration, so there is nothing to build above it.
                task = ExecutionTask(CachedResultExec(op, decision.channel),
                                     [], [])
                ordered.append(task)
                tasks[op.id] = task
                return task
            inputs = [
                TaskInput(build(ref.op),
                          best.conversions.get((ref.op.id, op.id, slot),
                                               ConversionPath([], 0.0)))
                for slot, ref in enumerate(op.inputs)
            ]
            broadcasts = [
                TaskInput(build(ref.op),
                          best.conversions.get((ref.op.id, op.id, -(slot + 1)),
                                               ConversionPath([], 0.0)))
                for slot, ref in enumerate(op.side_inputs)
            ]
            if isinstance(decision, LoopDecision):
                impl = self._build_loop_impl(decision)
                task = ExecutionTask(impl, inputs, broadcasts)
                ordered.append(task)
            else:
                task = self._append_chain(decision, inputs, broadcasts, ordered)
            tasks[op.id] = task
            return task

        sink_tasks = [build(sink) for sink in plan.sinks]
        return ExecutionPlan(ordered, sink_tasks)

    @staticmethod
    def _append_chain(decision: ExecutionAlternative,
                      inputs: list[TaskInput],
                      broadcasts: list[TaskInput],
                      ordered: list[ExecutionTask]) -> ExecutionTask:
        task = ExecutionTask(decision.ops[0], inputs, broadcasts)
        ordered.append(task)
        for extra in decision.ops[1:]:
            task = ExecutionTask(extra,
                                 [TaskInput(task, ConversionPath([], 0.0))], [])
            ordered.append(task)
        return task

    def _build_loop_impl(self, decision: LoopDecision) -> LoopImplementation:
        loop = decision.loop
        body_partial = decision.body
        tasks: dict[int, ExecutionTask] = {}
        ordered: list[ExecutionTask] = []
        input_tasks: list[ExecutionTask | None] = [None] * len(loop.body.inputs)

        def build(op: Operator) -> ExecutionTask:
            if op.id in tasks:
                return tasks[op.id]
            d = body_partial.decisions[op.id]
            if isinstance(d, ChannelSourceDecision):
                task = ExecutionTask(LoopBodySource(op, d.descriptor), [], [])
                ordered.append(task)
                tasks[op.id] = task
                input_tasks[op.index] = task
                return task
            inputs = [
                TaskInput(build(ref.op),
                          body_partial.conversions.get(
                              (ref.op.id, op.id, slot),
                              ConversionPath([], 0.0)))
                for slot, ref in enumerate(op.inputs)
            ]
            broadcasts = [
                TaskInput(build(ref.op),
                          body_partial.conversions.get(
                              (ref.op.id, op.id, -(slot + 1)),
                              ConversionPath([], 0.0)))
                for slot, ref in enumerate(op.side_inputs)
            ]
            if isinstance(d, LoopDecision):
                task = ExecutionTask(self._build_loop_impl(d), inputs,
                                     broadcasts)
                ordered.append(task)
            else:
                task = self._append_chain(d, inputs, broadcasts, ordered)
            tasks[op.id] = task
            return task

        output_task = build(loop.body.outputs[0].op)
        for inp in loop.body.inputs:
            build(inp)
        body_plan = ExecutionPlan(ordered, [output_task])
        return LoopImplementation(loop, body_plan, input_tasks,
                                  decision.feedback)


class CachedResultExec(ExecutionOperator):
    """Re-emits a stored intermediate result at zero cost (result reuse).

    ``logical`` is the reuse-root operator of the submitted plan, so the
    task reports the right logical id to the monitor and completion
    tracking; the payload comes from the intermediate-result store.
    """

    op_kind = "cached_result"

    def __init__(self, logical: Operator, channel: Channel) -> None:
        super().__init__(logical)
        self.channel = channel
        self.platform = channel.descriptor.platform or DRIVER_PLATFORM

    def input_descriptors(self):
        return []

    def output_descriptor(self):
        return self.channel.descriptor

    def tasks_fraction(self, profile) -> float:
        return 0.0

    def cost_estimate(self, model, cins, cout):
        return CostEstimate.zero()

    def execute(self, inputs, broadcasts, ctx):
        # Detach: the stored channel stays resident and may be re-emitted
        # into several jobs, whose branches must not share mutable payloads.
        return self.channel.detached()


class LoopBodySource(ExecutionOperator):
    """Placeholder task primed by the loop driver each iteration."""

    platform = DRIVER_PLATFORM
    op_kind = "loop_input"

    def __init__(self, logical: LoopInput, descriptor: ChannelDescriptor) -> None:
        super().__init__(logical)
        self.descriptor = descriptor

    def input_descriptors(self):
        return []

    def output_descriptor(self):
        return self.descriptor

    def execute(self, inputs, broadcasts, ctx):  # pragma: no cover
        raise RuntimeError("LoopBodySource channels are primed by the executor")
