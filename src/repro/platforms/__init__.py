"""Simulated data processing platforms.

Each subpackage is one platform: its engine, channel types, conversions and
operator mappings.  ``builtin_platforms`` returns one instance of each,
ready to be registered with a :class:`~repro.core.context.RheemContext`.
"""

from .base import ExecutionOperator, Platform, charge_operator
from .distributed import PartitionedDataset


def builtin_platforms() -> list[Platform]:
    """Fresh instances of every bundled platform."""
    from .flinklite import FlinkLitePlatform
    from .graphchi import GraphChiPlatform
    from .graphlite import GraphLitePlatform
    from .jgraph import JGraphPlatform
    from .pgres import PgresPlatform
    from .pystreams import PyStreamsPlatform
    from .sparklite import SparkLitePlatform

    return [
        PyStreamsPlatform(),
        SparkLitePlatform(),
        FlinkLitePlatform(),
        PgresPlatform(),
        GraphLitePlatform(),
        GraphChiPlatform(),
        JGraphPlatform(),
    ]


__all__ = [
    "ExecutionOperator",
    "Platform",
    "charge_operator",
    "PartitionedDataset",
    "builtin_platforms",
]
