"""Platform and execution-operator abstractions.

A *platform* bundles: the engine that does the work, the channel types it
speaks, the conversions in/out of those channels, and the operator mappings
from Rheem operators to its execution operators.  Plugging a new platform
into the reproduction means implementing exactly these pieces — mirroring
the paper's extensibility story (Section 3, "Extensibility").
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence, TYPE_CHECKING

from ..core.channels import Channel, ChannelDescriptor, Conversion
from ..core.operators import Operator

if TYPE_CHECKING:  # pragma: no cover
    from ..core.execution import ExecutionContext
    from ..core.mappings import OperatorMapping

_exec_id_counter = itertools.count(1)


class ExecutionOperator:
    """A platform-specific implementation of one (or more) Rheem operators.

    Class attributes set by subclasses:

    * ``platform`` — owning platform name;
    * ``op_kind`` — cost-parameter key (``map``, ``filter``, ``join``...).

    Instances wrap the logical operator they implement so they can reach its
    UDFs and report monitoring data against it.
    """

    platform: str = ""
    op_kind: str = ""

    def __init__(self, logical: Operator | None = None) -> None:
        self.id = next(_exec_id_counter)
        self.logical = logical

    # -- channel typing ----------------------------------------------------
    def input_descriptors(self) -> list[ChannelDescriptor]:
        """Required channel type per data input."""
        raise NotImplementedError

    def output_descriptor(self) -> ChannelDescriptor:
        """Produced channel type (single-output model)."""
        raise NotImplementedError

    def broadcast_descriptor(self) -> ChannelDescriptor | None:
        """Channel type required for broadcast side inputs, if supported."""
        return None

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        inputs: Sequence[Channel],
        broadcasts: Sequence[Channel],
        ctx: "ExecutionContext",
    ) -> Channel:
        """Run the operator; charge ``ctx.meter``; return the output channel."""
        raise NotImplementedError

    # -- cost --------------------------------------------------------------
    def work(self) -> float:
        """Per-record work factor for the cost model."""
        return self.logical.work_factor() if self.logical is not None else 1.0

    def overhead_seconds(self, profile) -> float:
        """Cardinality-independent extra cost (e.g. per-iteration job
        scheduling of an iterative operator).  Charged by the engine and
        predicted identically by the cost model."""
        return 0.0

    def memory_demand_mb(self, cins: list[float], cout: float,
                         bytes_in: float, bytes_out: float) -> float:
        """Estimated resident footprint this operator needs on its platform.

        The optimizer discards alternatives whose demand exceeds the
        platform's memory capacity (so it never *plans* an out-of-memory
        run); the default of 0 leaves feasibility to the runtime
        stage-boundary checks.
        """
        return 0.0

    def shuffled_mb(self, profile, cins: list[float], cout: float,
                    bytes_in: float, bytes_out: float) -> float:
        """Simulated MB this operator moves across the network (shuffles).

        The cost model multiplies this by the platform's per-MB shuffle
        rate; engines charge the same volume at runtime.  Narrow operators
        return 0.
        """
        return 0.0

    def tasks_fraction(self, profile) -> float:
        """Fraction of the platform's parallel lanes this operator schedules.

        Stage dispatch overhead scales with it: an operator touching one
        partition of a cached dataset (e.g. ML4all's efficient samplers)
        costs far less to schedule than a full scan.
        """
        return 1.0

    def cost_estimate(self, model, cins, cout):
        """Operator-specific cost override (e.g. a nested-loop join whose
        cost is the PRODUCT of its input cardinalities, which the generic
        linear alpha/beta parameters cannot express).

        Args:
            model: The :class:`~repro.core.cost.CostModel`.
            cins: Per-input cardinality estimates.
            cout: Output cardinality estimate.

        Returns:
            A :class:`~repro.core.cost.CostEstimate`, or ``None`` to use the
            generic kind-parameter formula.
        """
        return None

    def observed_op_kind(self, inputs, ctx) -> str:
        """Cost-parameter kind this execution actually used.

        Must be a pure function of the inputs and context — never of
        mutable instance state, because cached plans share operator
        instances across concurrently executing jobs.  Operators whose
        kind depends on runtime data (e.g. index vs sequential scan)
        override this; the executor records it post-execute.
        """
        return self.op_kind

    @property
    def name(self) -> str:
        suffix = f"[{self.logical.name}]" if self.logical is not None else ""
        return f"{self.platform}.{self.op_kind}{suffix}"

    def __repr__(self) -> str:
        return f"<{self.name}#{self.id}>"


class Platform:
    """Static description of one registered platform."""

    name: str = ""

    def channels(self) -> list[ChannelDescriptor]:
        """Channel types this platform owns."""
        raise NotImplementedError

    def conversions(self) -> list[Conversion]:
        """Conversions in/out of this platform's channels.

        Only conversions to/from at least one already-known channel are
        required; the channel conversion graph composes the rest.
        """
        raise NotImplementedError

    def mappings(self) -> list["OperatorMapping"]:
        """Operator mappings from Rheem operators to execution operators."""
        raise NotImplementedError

    # -- vectorized (record-batch) execution -------------------------------
    # Registered by the context only when built with ``vectorize`` on.  The
    # batch mappings REPLACE the per-record mappings for their logical
    # operator types; batch channels connect to the platform's own channels
    # through zero-cost conversions, so plan costs (hence plan choice and
    # simulated semantics) are identical with vectorization on or off.

    def batch_channels(self) -> list[ChannelDescriptor]:
        """Channel types carrying record batches (empty: no batch support)."""
        return []

    def batch_conversions(self) -> list[Conversion]:
        """Zero-cost conversions between list and batch payloads."""
        return []

    def batch_mappings(self) -> list["OperatorMapping"]:
        """Batch twins replacing the per-record mappings of the same type."""
        return []

    def __repr__(self) -> str:
        return f"Platform({self.name})"


def charge_cpu(
    ctx: "ExecutionContext",
    platform: str,
    records_sim: float,
    work: float,
    label: str,
) -> None:
    """Charge per-record CPU time for ``records_sim`` simulated records."""
    profile = ctx.cluster.profile(platform)
    ctx.meter.charge(profile.cpu_seconds(records_sim, work), label, category="cpu")


def charge_operator(
    ctx: "ExecutionContext",
    exec_op: "ExecutionOperator",
    cin_sim: float,
    cout_sim: float,
    kind: str | None = None,
) -> None:
    """Charge an operator's simulated time using the shared kind parameters.

    Engines charge exactly what the (default) cost model predicts, so a
    perfectly calibrated optimizer is the baseline and the learned model can
    be evaluated against it.  ``kind`` overrides ``exec_op.op_kind`` when
    the run resolved the kind dynamically (see ``observed_op_kind``).
    """
    from ..core.cost import kind_params  # local import to avoid a cycle

    p = kind_params(kind if kind is not None else exec_op.op_kind)
    profile = ctx.cluster.profile(exec_op.platform)
    units = p.alpha * cin_sim + p.beta * cout_sim
    seconds = p.delta + profile.cpu_seconds(units, exec_op.work())
    ctx.meter.charge(seconds, exec_op.name, category="cpu")


def union_bytes_per_record(a: Channel, b: Channel) -> float:
    """Cardinality-weighted record width of a two-input union.

    A union's output mixes both branches' records, so its ``sim_mb`` (and
    every IO/net cost derived from it) must reflect the branch widths in
    proportion to how many records each contributes — not just the left
    branch's width.
    """
    total = a.sim_cardinality + b.sim_cardinality
    if total <= 0:
        return a.bytes_per_record
    return (a.sim_cardinality * a.bytes_per_record
            + b.sim_cardinality * b.bytes_per_record) / total


def measured(channel: Channel, payload: Any, count: int,
             descriptor: ChannelDescriptor | None = None) -> Channel:
    """Build an output channel with a measured actual count."""
    return channel.with_payload(payload, descriptor, actual_count=count)
