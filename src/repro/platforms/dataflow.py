"""Generic execution operators shared by the distributed dataflow engines.

The Spark analog and the Flink analog execute the same *logic* over
:class:`~repro.platforms.distributed.PartitionedDataset` payloads; they
differ in channel types, performance profiles and a few operators (Spark's
explicit Cache, Flink's pipelined dispatch).  Each engine subclasses these
generic operators and pins its ``platform`` / channel descriptors.

Wide (shuffling) operators really hash-partition the data — co-location is
observable — and charge shuffle time per simulated MB on top of CPU time.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

import numpy as np

from ..algorithms.iejoin import ie_join
from ..algorithms.pagerank import pagerank_edges
from ..core.channels import Channel, ChannelDescriptor
from .base import ExecutionOperator, charge_operator, union_bytes_per_record
from .distributed import PartitionedDataset


def _cin(inputs: Sequence[Channel]) -> float:
    """Simulated input cardinality an operator is charged for."""
    return sum(ch.sim_cardinality for ch in inputs)


class DataflowOperator(ExecutionOperator):
    """Base for distributed execution operators.

    Subclasses (or the per-engine leaf classes) set:

    * ``platform`` — engine name;
    * ``DATASET`` — the engine's distributed channel descriptor;
    * ``BROADCAST`` — the engine's broadcast channel descriptor.
    """

    DATASET: ChannelDescriptor
    BROADCAST: ChannelDescriptor

    def input_descriptors(self):
        arity = self.logical.num_inputs if self.logical is not None else 1
        return [self.DATASET] * arity

    def output_descriptor(self):
        return self.DATASET

    def broadcast_descriptor(self):
        return self.BROADCAST

    # ------------------------------------------------------------- plumbing
    def execute(self, inputs: Sequence[Channel], broadcasts: Sequence[Channel],
                ctx) -> Channel:
        return self._run(inputs, [b.payload for b in broadcasts], ctx)

    def _run(self, inputs: Sequence[Channel], bvals: list[Any], ctx) -> Channel:
        raise NotImplementedError

    def _parallelism(self, ctx) -> int:
        return ctx.profile(self.platform).parallelism

    def _emit(self, template: Channel, dataset: PartitionedDataset, ctx,
              cin: float,
              sim_factor: float | None = None,
              bytes_per_record: float | None = None) -> Channel:
        # ``cin`` is threaded through the call (not instance state): shared
        # operator instances re-execute across loop iterations and
        # concurrent scheduler lanes.
        out = Channel(
            self.DATASET,
            dataset,
            template.sim_factor if sim_factor is None else sim_factor,
            (template.bytes_per_record if bytes_per_record is None
             else bytes_per_record),
            dataset.count(),
        )
        charge_operator(ctx, self, cin, out.sim_cardinality)
        extra = self.overhead_seconds(ctx.profile(self.platform))
        if extra:
            ctx.meter.charge(extra, f"{self.name}.overhead", category="overhead")
        return out

    def _charge_shuffle(self, ctx, channel: Channel) -> None:
        """Charge network time for shuffling one input's simulated volume."""
        profile = ctx.profile(self.platform)
        mb = channel.sim_cardinality * channel.bytes_per_record / 1e6
        ctx.meter.charge(mb * profile.shuffle_cost_s_per_mb,
                         f"{self.name}.shuffle", category="net")


class DFTextFileSource(DataflowOperator):
    """Parallel file read at the engine's aggregate bandwidth."""

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        vf = ctx.vfs.read(self.logical.path)
        ctx.meter.charge(ctx.profile(self.platform).io_seconds(vf.sim_mb),
                         f"{self.name}.read", category="io")
        dataset = PartitionedDataset.from_records(vf.records,
                                                  self._parallelism(ctx))
        template = Channel(self.DATASET, None, vf.sim_factor,
                           vf.bytes_per_record)
        return self._emit(template, dataset, ctx, 0.0)


class DFCollectionSource(DataflowOperator):
    """Parallelize a driver collection into the cluster."""

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        logical = self.logical
        dataset = PartitionedDataset.from_records(logical.data,
                                                  self._parallelism(ctx))
        template = Channel(self.DATASET, None, logical.sim_factor,
                           logical.bytes_per_record)
        out = self._emit(template, dataset, ctx, 0.0)
        ctx.meter.charge(ctx.profile(self.platform).transfer_seconds(out.sim_mb),
                         f"{self.name}.parallelize", category="net")
        return out


class DFMap(DataflowOperator):
    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = inputs[0].payload.map_partitions(
            lambda part: [udf(x, *bvals) for x in part])
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class DFFlatMap(DataflowOperator):
    op_kind = "flatmap"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = inputs[0].payload.map_partitions(
            lambda part: [y for x in part for y in udf(x, *bvals)])
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class DFMapPartitions(DataflowOperator):
    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = inputs[0].payload.map_partitions(
            lambda part: list(udf(list(part), *bvals)))
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class DFZipWithId(DataflowOperator):
    """Unique ids via a per-partition stride (no coordination needed)."""

    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        dataset = inputs[0].payload
        stride = dataset.num_partitions
        parts = [
            [(pid + i * stride, record) for i, record in enumerate(part)]
            for pid, part in enumerate(dataset.partitions)
        ]
        from .distributed import PartitionedDataset
        return self._emit(inputs[0], PartitionedDataset(parts), ctx,
                          _cin(inputs))


class DFFilter(DataflowOperator):
    op_kind = "filter"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = inputs[0].payload.map_partitions(
            lambda part: [x for x in part if udf(x, *bvals)])
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class DFSample(DataflowOperator):
    """Sampling; the method decides whether the engine scans everything.

    ``random`` models a full-scan take-sample (what MLlib does), while
    ``random_jump`` / ``shuffled_partition`` model ML4all's plugged
    IO-efficient samplers that only touch the sample itself.
    """

    @property
    def op_kind(self):
        if self._is_efficient():
            return "sample"
        return "sample_scan"

    def _is_efficient(self) -> bool:
        return self.logical.method in ("random_jump", "shuffled_partition",
                                       "first")

    def tasks_fraction(self, profile) -> float:
        # The plugged-in samplers touch a single partition, so the engine
        # schedules one task instead of a full wave.
        if self._is_efficient():
            return 1.0 / profile.parallelism
        return 1.0

    def _run(self, inputs, bvals, ctx):
        data = inputs[0].payload.to_list()
        logical = self.logical
        if logical.size is not None:
            k = min(logical.size, len(data))
        else:
            k = int(len(data) * logical.fraction)
        if logical.method == "first":
            sample = data[:k]
        else:
            # Retry-deterministic: seeded from the loop-iteration epoch the
            # executor supplies, never from operator-instance state (which
            # would advance on failed attempts and re-runs).
            seed = (f"{ctx.config.get('seed', 42)}|{logical.seed}"
                    f"|{logical.name}|{ctx.epoch}")
            rng = random.Random(seed)
            sample = [data[rng.randrange(len(data))] for __ in range(k)] if data else []
        out = PartitionedDataset([sample])
        return self._emit(inputs[0], out, ctx, _cin(inputs), sim_factor=1.0)


class DFDistinct(DataflowOperator):
    op_kind = "distinct"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return cins[0] * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key

        def dedupe(part: list[Any]) -> list[Any]:
            seen, out = set(), []
            for x in part:
                k = key(x) if key is not None else x
                if k not in seen:
                    seen.add(k)
                    out.append(x)
            return out

        self._charge_shuffle(ctx, inputs[0])
        shuffled = inputs[0].payload.shuffle_by_key(
            key if key is not None else lambda x: x, self._parallelism(ctx))
        return self._emit(inputs[0], shuffled.map_partitions(dedupe), ctx,
                          _cin(inputs))


class DFSort(DataflowOperator):
    """Global sort via range partitioning (modelled as one shuffle)."""

    op_kind = "sort"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return cins[0] * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        records = sorted(inputs[0].payload.records(),
                         key=key if key is not None else None,
                         reverse=self.logical.descending)
        self._charge_shuffle(ctx, inputs[0])
        n = self._parallelism(ctx)
        chunk = max(1, (len(records) + n - 1) // n)
        parts = [records[i:i + chunk] for i in range(0, len(records), chunk)]
        return self._emit(inputs[0], PartitionedDataset(parts or [[]]), ctx,
                          _cin(inputs))


class DFGroupBy(DataflowOperator):
    op_kind = "groupby"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return cins[0] * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        self._charge_shuffle(ctx, inputs[0])
        shuffled = inputs[0].payload.shuffle_by_key(key, self._parallelism(ctx))

        def group(part: list[Any]) -> list[Any]:
            groups: dict[Any, list[Any]] = {}
            for x in part:
                groups.setdefault(key(x), []).append(x)
            return list(groups.items())

        out = shuffled.map_partitions(group)
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, out.count(),
                                                   inputs[0].sim_factor))


class DFReduceBy(DataflowOperator):
    """Combine locally, shuffle the partial aggregates, reduce."""

    op_kind = "reduceby"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        partial = min(cins[0], cout * profile.parallelism)
        return partial * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        reducer = self.logical.reducer

        def combine(part: list[Any]) -> list[Any]:
            acc: dict[Any, Any] = {}
            for x in part:
                k = key(x)
                acc[k] = x if k not in acc else reducer(acc[k], x)
            return list(acc.values())

        combined = inputs[0].payload.map_partitions(combine)
        # Only the locally combined partial aggregates cross the network.
        partial_mb = (combined.count() * inputs[0].sim_factor
                      * inputs[0].bytes_per_record / 1e6)
        profile = ctx.profile(self.platform)
        ctx.meter.charge(partial_mb * profile.shuffle_cost_s_per_mb,
                         f"{self.name}.shuffle", category="net")
        shuffled = combined.shuffle_by_key(key, self._parallelism(ctx))
        out = shuffled.map_partitions(
            lambda part: [v for __, v in _fold_by_key(part, key, reducer)])
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, out.count(),
                                                   inputs[0].sim_factor))


def _group_factor(logical, actual_groups: int, input_factor: float):
    """Honour a declared true group count (see the logical operators)."""
    sim_groups = getattr(logical, "sim_groups", None)
    if sim_groups is not None and actual_groups:
        return sim_groups / actual_groups
    return input_factor


def _fold_by_key(part, key, reducer):
    acc: dict[Any, Any] = {}
    for x in part:
        k = key(x)
        acc[k] = x if k not in acc else reducer(acc[k], x)
    return acc.items()


class DFGlobalReduce(DataflowOperator):
    op_kind = "reduce"

    def _run(self, inputs, bvals, ctx):
        reducer = self.logical.reducer
        records = list(inputs[0].payload.records())
        out: list[Any] = []
        if records:
            acc = records[0]
            for x in records[1:]:
                acc = reducer(acc, x)
            out = [acc]
        return self._emit(inputs[0], PartitionedDataset([out]), ctx,
                          _cin(inputs), sim_factor=1.0)


class DFCount(DataflowOperator):
    op_kind = "count"

    def _run(self, inputs, bvals, ctx):
        n = inputs[0].payload.count()
        return self._emit(inputs[0], PartitionedDataset([[n]]), ctx,
                          _cin(inputs), sim_factor=1.0)


class DFUnion(DataflowOperator):
    op_kind = "union"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        parts = list(a.payload.partitions) + list(b.payload.partitions)
        total_actual = a.payload.count() + b.payload.count()
        total_sim = a.sim_cardinality + b.sim_cardinality
        factor = total_sim / total_actual if total_actual else 1.0
        return self._emit(a, PartitionedDataset(parts), ctx, _cin(inputs),
                          sim_factor=factor,
                          bytes_per_record=union_bytes_per_record(a, b))


class DFIntersect(DataflowOperator):
    op_kind = "intersect"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return sum(cins) * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        n = self._parallelism(ctx)
        self._charge_shuffle(ctx, a)
        self._charge_shuffle(ctx, b)
        sa = a.payload.shuffle_by_key(lambda x: x, n)
        sb = b.payload.shuffle_by_key(lambda x: x, n)

        def intersect(pa: list[Any], pb: list[Any]) -> list[Any]:
            right = set(pb)
            seen: set[Any] = set()
            out = []
            for x in pa:
                if x in right and x not in seen:
                    seen.add(x)
                    out.append(x)
            return out

        return self._emit(a, sa.zip_partitions(sb, intersect), ctx,
                          _cin(inputs))


class DFJoin(DataflowOperator):
    """Shuffle hash join: both sides partitioned by key, joined locally."""

    op_kind = "join"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return sum(cins) * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        lk, rk = self.logical.left_key, self.logical.right_key
        n = self._parallelism(ctx)
        self._charge_shuffle(ctx, a)
        self._charge_shuffle(ctx, b)
        sa = a.payload.shuffle_by_key(lk, n)
        sb = b.payload.shuffle_by_key(rk, n)

        def join(pa: list[Any], pb: list[Any]) -> list[Any]:
            table: dict[Any, list[Any]] = {}
            for r in pb:
                table.setdefault(rk(r), []).append(r)
            return [(l, r) for l in pa for r in table.get(lk(l), ())]

        out = sa.zip_partitions(sb, join)
        factor = self.logical.output_sim_factor(a.sim_factor, b.sim_factor)
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=a.bytes_per_record + b.bytes_per_record)


class DFCartesian(DataflowOperator):
    op_kind = "cartesian"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        replicated = cins[1] if len(cins) > 1 else 0.0
        return replicated * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        right = b.payload.to_list()
        self._charge_shuffle(ctx, b)  # replicate the right side
        out = a.payload.map_partitions(
            lambda part: [(l, r) for l in part for r in right])
        return self._emit(a, out, ctx, _cin(inputs),
                          sim_factor=a.sim_factor * b.sim_factor,
                          bytes_per_record=a.bytes_per_record + b.bytes_per_record)


class DFIEJoin(DataflowOperator):
    """Distributed IEJoin: globally sorted merge via the fast algorithm."""

    op_kind = "iejoin"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return sum(cins) * bytes_in / 1e6

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        conditions = [(c.left_key, c.op, c.right_key)
                      for c in self.logical.conditions]
        self._charge_shuffle(ctx, a)
        self._charge_shuffle(ctx, b)
        pairs = ie_join(a.payload.to_list(), b.payload.to_list(), conditions)
        out = PartitionedDataset.from_records(pairs, self._parallelism(ctx))
        return self._emit(a, out, ctx, _cin(inputs),
                          sim_factor=max(a.sim_factor, b.sim_factor),
                          bytes_per_record=a.bytes_per_record + b.bytes_per_record)


class DFPageRank(DataflowOperator):
    """PageRank as iterated join/aggregate jobs (the m-to-n mapping target).

    Each iteration is a separate distributed job, so the engine pays one
    stage overhead per iteration — exactly why the paper's CrocoPR prefers
    JGraph for small graphs.
    """

    op_kind = "pagerank"

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        return self.logical.iterations * cout * bytes_in / 1e6

    def overhead_seconds(self, profile) -> float:
        return self.logical.iterations * profile.stage_overhead_s

    def _run(self, inputs, bvals, ctx):
        ranks = pagerank_edges(inputs[0].payload.records(),
                               self.logical.iterations, self.logical.damping)
        out = PartitionedDataset.from_records(sorted(ranks.items()),
                                              self._parallelism(ctx))
        # Each iteration shuffles rank contributions (vertex-sized, not
        # edge-sized).
        profile = ctx.profile(self.platform)
        rank_mb = (len(ranks) * inputs[0].sim_factor
                   * inputs[0].bytes_per_record / 1e6)
        ctx.meter.charge(
            self.logical.iterations * rank_mb * profile.shuffle_cost_s_per_mb,
            f"{self.name}.rank-shuffles", category="net")
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class DFTextFileSink(DataflowOperator):
    op_kind = "sink"

    def _run(self, inputs, bvals, ctx):
        ch = inputs[0]
        records = [str(x) for x in ch.payload.records()]
        ctx.vfs.write(self.logical.path, records, ch.sim_factor,
                      ch.bytes_per_record)
        ctx.meter.charge(ctx.profile(self.platform).io_seconds(ch.sim_mb),
                         f"{self.name}.write", category="io")
        # Detach: the sunk channel must not alias a dataset a sibling
        # branch may mutate through (partition lists are mutable).
        copied = PartitionedDataset([list(p) for p in ch.payload.partitions])
        return ch.with_payload(copied, actual_count=ch.actual_count)


# --------------------------------------------------------------------------
# Vectorized (record-batch) twins.  Registered only when the context is
# built with ``vectorize`` on; they REPLACE the per-record mappings of the
# same logical types.  The payload is one :class:`RecordBatch` per
# partition, so partitioning — and therefore every shuffle, chunking and
# co-location decision — is observably identical to the per-record path.
# Each twin inherits its scalar class's ``op_kind`` / ``shuffled_mb`` /
# overheads, so it is charged exactly the same simulated time.

class BatchDataflowOperator(DataflowOperator):
    """Base for the batch twins.  Subclasses also set ``BATCH``."""

    BATCH: ChannelDescriptor

    def input_descriptors(self):
        arity = self.logical.num_inputs if self.logical is not None else 1
        return [self.BATCH] * arity

    def output_descriptor(self):
        return self.BATCH

    def _emit_batches(self, template: Channel, batches, ctx, cin: float,
                      sim_factor: float | None = None,
                      bytes_per_record: float | None = None) -> Channel:
        # Mirrors ``_emit`` with a list-of-batches payload.
        out = Channel(
            self.BATCH,
            batches,
            template.sim_factor if sim_factor is None else sim_factor,
            (template.bytes_per_record if bytes_per_record is None
             else bytes_per_record),
            sum(len(b) for b in batches),
        )
        charge_operator(ctx, self, cin, out.sim_cardinality)
        extra = self.overhead_seconds(ctx.profile(self.platform))
        if extra:
            ctx.meter.charge(extra, f"{self.name}.overhead", category="overhead")
        return out

    def _shuffle(self, batches, n: int, key_fn, key_col=None):
        """Hash-partition batches by key, exactly like ``shuffle_by_key``.

        The legacy shuffle appends records to ``parts[hash(key) % n]`` while
        scanning partitions in order, so target partition ``t`` holds — in
        source order — every record whose key hashes to ``t``.  Selecting
        each source batch's matching rows (order-preserving) and
        concatenating over source batches reproduces that exactly.
        """
        from ..core.batch import RecordBatch, batch_keys

        assigns = []
        for b in batches:
            keys = batch_keys(b, key_col, key_fn)
            assigns.append(np.array([hash(k) % n for k in keys],
                                    dtype=np.int64))
        return [
            RecordBatch.concat([
                b.take(np.flatnonzero(a == t))
                for b, a in zip(batches, assigns) if len(b)
            ])
            for t in range(n)
        ]


class DFBatchMap(BatchDataflowOperator, DFMap):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import apply_map
        out = [apply_map(self.logical, b, bvals) for b in inputs[0].payload]
        return self._emit_batches(inputs[0], out, ctx, _cin(inputs),
                                  bytes_per_record=self.logical.bytes_per_record)


class DFBatchFlatMap(BatchDataflowOperator, DFFlatMap):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import apply_flatmap
        out = [apply_flatmap(self.logical, b, bvals)
               for b in inputs[0].payload]
        return self._emit_batches(inputs[0], out, ctx, _cin(inputs),
                                  bytes_per_record=self.logical.bytes_per_record)


class DFBatchFilter(BatchDataflowOperator, DFFilter):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import apply_filter
        out = [apply_filter(self.logical, b, bvals)
               for b in inputs[0].payload]
        return self._emit_batches(inputs[0], out, ctx, _cin(inputs))


class DFBatchDistinct(BatchDataflowOperator, DFDistinct):
    def _run(self, inputs, bvals, ctx):
        key = self.logical.key

        def dedupe(batch):
            seen, keep = set(), []
            for i, x in enumerate(batch.to_records()):
                k = key(x) if key is not None else x
                if k not in seen:
                    seen.add(k)
                    keep.append(i)
            return batch.take(np.array(keep, dtype=np.int64))

        self._charge_shuffle(ctx, inputs[0])
        shuffled = self._shuffle(inputs[0].payload, self._parallelism(ctx),
                                 key if key is not None else lambda x: x)
        return self._emit_batches(inputs[0], [dedupe(b) for b in shuffled],
                                  ctx, _cin(inputs))


class DFBatchSort(BatchDataflowOperator, DFSort):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import RecordBatch, apply_sort
        merged = apply_sort(self.logical, RecordBatch.concat(inputs[0].payload))
        self._charge_shuffle(ctx, inputs[0])
        n = self._parallelism(ctx)
        rows = len(merged)
        chunk = max(1, (rows + n - 1) // n)
        parts = [merged.take(np.arange(i, min(i + chunk, rows)))
                 for i in range(0, rows, chunk)]
        return self._emit_batches(
            inputs[0], parts or [RecordBatch.from_records([])], ctx,
            _cin(inputs))


class DFBatchGroupBy(BatchDataflowOperator, DFGroupBy):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import RecordBatch
        key = self.logical.key
        self._charge_shuffle(ctx, inputs[0])
        shuffled = self._shuffle(inputs[0].payload, self._parallelism(ctx),
                                 key)

        def group(batch):
            groups: dict[Any, list[Any]] = {}
            for x in batch.to_records():
                groups.setdefault(key(x), []).append(x)
            return RecordBatch.from_records(list(groups.items()))

        out = [group(b) for b in shuffled]
        count = sum(len(b) for b in out)
        return self._emit_batches(inputs[0], out, ctx, _cin(inputs),
                                  sim_factor=_group_factor(self.logical, count,
                                                           inputs[0].sim_factor))


class DFBatchReduceBy(BatchDataflowOperator, DFReduceBy):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import apply_reduce
        logical = self.logical
        # Local combine, exactly as the per-record engine: each partition
        # collapses to its key-wise partial aggregates (apply_reduce emits
        # the fold dict's VALUES in first-occurrence key order — the same
        # records ``combine`` produces).
        combined = [apply_reduce(logical, b) for b in inputs[0].payload]
        partial_mb = (sum(len(b) for b in combined) * inputs[0].sim_factor
                      * inputs[0].bytes_per_record / 1e6)
        profile = ctx.profile(self.platform)
        ctx.meter.charge(partial_mb * profile.shuffle_cost_s_per_mb,
                         f"{self.name}.shuffle", category="net")
        shuffled = self._shuffle(combined, self._parallelism(ctx),
                                 logical.key)
        out = [apply_reduce(logical, b) for b in shuffled]
        count = sum(len(b) for b in out)
        return self._emit_batches(inputs[0], out, ctx, _cin(inputs),
                                  sim_factor=_group_factor(logical, count,
                                                           inputs[0].sim_factor))


class DFBatchUnion(BatchDataflowOperator, DFUnion):
    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        parts = list(a.payload) + list(b.payload)
        total_actual = sum(len(p) for p in parts)
        total_sim = a.sim_cardinality + b.sim_cardinality
        factor = total_sim / total_actual if total_actual else 1.0
        return self._emit_batches(a, parts, ctx, _cin(inputs),
                                  sim_factor=factor,
                                  bytes_per_record=union_bytes_per_record(a, b))


class DFBatchJoin(BatchDataflowOperator, DFJoin):
    def _run(self, inputs, bvals, ctx):
        from ..core.batch import apply_join
        a, b = inputs
        logical = self.logical
        n = self._parallelism(ctx)
        self._charge_shuffle(ctx, a)
        self._charge_shuffle(ctx, b)
        sa = self._shuffle(a.payload, n, logical.left_key,
                           getattr(logical, "left_key_column", None))
        sb = self._shuffle(b.payload, n, logical.right_key,
                           getattr(logical, "right_key_column", None))
        out = [apply_join(logical, pa, pb) for pa, pb in zip(sa, sb)]
        factor = logical.output_sim_factor(a.sim_factor, b.sim_factor)
        return self._emit_batches(a, out, ctx, _cin(inputs), sim_factor=factor,
                                  bytes_per_record=a.bytes_per_record
                                  + b.bytes_per_record)
