"""A small in-process graph library (the JGraph analog).

Adjacency-list directed multigraph with a few classic algorithms.  Fast and
overhead-free for graphs that fit its (simulated) memory, useless beyond —
which is exactly the trade-off the paper's CrocoPR experiments exercise.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator


class Graph:
    """A directed multigraph over hashable vertices."""

    def __init__(self) -> None:
        self._adjacency: dict[Hashable, list[Hashable]] = {}
        self._vertices: set[Hashable] = set()
        self._num_edges = 0

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Hashable, Hashable]]) -> "Graph":
        """Build a graph from ``(src, dst)`` pairs."""
        g = cls()
        for src, dst in edges:
            g.add_edge(src, dst)
        return g

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Insert a directed edge (duplicates allowed)."""
        self._adjacency.setdefault(src, []).append(dst)
        self._vertices.add(src)
        self._vertices.add(dst)
        self._num_edges += 1

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges, duplicates included."""
        return self._num_edges

    def vertices(self) -> Iterator[Hashable]:
        """Iterate the vertex set."""
        return iter(self._vertices)

    def out_degree(self, vertex: Hashable) -> int:
        """Number of outgoing edges of ``vertex``."""
        return len(self._adjacency.get(vertex, ()))

    def neighbors(self, vertex: Hashable) -> list[Hashable]:
        """Outgoing neighbours of ``vertex`` (with multiplicity)."""
        return list(self._adjacency.get(vertex, ()))

    def pagerank(self, iterations: int = 10,
                 damping: float = 0.85) -> dict[Hashable, float]:
        """Power-iteration PageRank with dangling-mass redistribution."""
        n = self.num_vertices
        if n == 0:
            return {}
        rank = {v: 1.0 / n for v in self._vertices}
        for __ in range(iterations):
            nxt = {v: 0.0 for v in self._vertices}
            dangling = 0.0
            for v, r in rank.items():
                outs = self._adjacency.get(v)
                if not outs:
                    dangling += r
                    continue
                share = r / len(outs)
                for dst in outs:
                    nxt[dst] += share
            base = (1.0 - damping) / n + damping * dangling / n
            rank = {v: base + damping * nxt[v] for v in self._vertices}
        return rank

    def reachable_from(self, start: Hashable) -> set[Hashable]:
        """Vertices reachable from ``start`` by directed BFS."""
        if start not in self._vertices:
            return set()
        seen = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for dst in self._adjacency.get(v, ()):
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return seen
