"""JGraph: the in-process graph-library platform."""

from .engine import Graph
from .platform import JGraphPageRank, JGraphPlatform

__all__ = ["Graph", "JGraphPageRank", "JGraphPlatform"]
