"""JGraph: the in-process graph-library platform.

Like the paper's JGraph, it lives inside the driver process: it consumes
and produces plain PyStreams collections, has no start-up cost and no
parallelism, and fails with a simulated out-of-memory beyond its small
heap — which is why Rheem only picks it for modest graphs.
"""

from __future__ import annotations

from ...core import operators as ops
from ...core.channels import Channel
from ...core.mappings import OperatorMapping
from ..base import ExecutionOperator, Platform, charge_operator
from ..pystreams.channels import PY_COLLECTION
from .engine import Graph


class JGraphPageRank(ExecutionOperator):
    """PageRank on the in-process graph library."""

    platform = "jgraph"
    op_kind = "pagerank"

    #: In-heap adjacency objects cost several times the wire size per edge
    #: (boxed vertices, list headers) — this is what makes the library die
    #: on graphs the distributed platforms still handle.
    OBJECT_OVERHEAD = 6.0

    def work(self) -> float:
        # Adjacency-list traversal beats generic record processing, but is
        # still single-threaded (the profile's parallelism is 1).
        return 0.15 * self.logical.iterations

    def memory_demand_mb(self, cins, cout, bytes_in, bytes_out):
        return cins[0] * bytes_in * self.OBJECT_OVERHEAD / 1e6

    def input_descriptors(self):
        return [PY_COLLECTION]

    def output_descriptor(self):
        return PY_COLLECTION

    def execute(self, inputs, broadcasts, ctx):
        edges_channel = inputs[0]
        # Building the whole graph in the driver heap is the library's
        # weak spot: enforce the simulated memory ceiling on the input.
        ctx.cluster.check_memory(self.platform,
                                 edges_channel.sim_mb * self.OBJECT_OVERHEAD)
        graph = Graph.from_edges(edges_channel.payload)
        ranks = sorted(graph.pagerank(self.logical.iterations,
                                      self.logical.damping).items())
        out = Channel(PY_COLLECTION, ranks, edges_channel.sim_factor,
                      edges_channel.bytes_per_record, len(ranks))
        charge_operator(ctx, self, edges_channel.sim_cardinality,
                        out.sim_cardinality)
        return out


class JGraphPlatform(Platform):
    """The JGraph analog: no channels of its own, one graph operator."""

    name = "jgraph"

    def channels(self):
        return []

    def conversions(self):
        return []

    def mappings(self):
        return [OperatorMapping(ops.PageRank, lambda op: [JGraphPageRank(op)])]
