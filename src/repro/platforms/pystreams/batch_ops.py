"""Vectorized PyStreams operators: one columnar kernel per record batch.

Registered only when the context is built with ``config={"vectorize":
True}``; they then REPLACE the per-record operators for the batch-capable
logical types.  Every operator charges exactly what its per-record twin
charges (same ``op_kind``, same ``work()``, same cardinalities and record
widths), and every kernel is record-wise equivalent to the per-record
implementation — falling back to the scalar UDF inside the batch when the
logical operator declares no vectorized twin — so results are bit-for-bit
identical to the legacy engine.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...core.batch import (
    RecordBatch,
    apply_filter,
    apply_flatmap,
    apply_join,
    apply_map,
    apply_reduce,
    apply_sort,
)
from ...core.channels import Channel
from ..base import ExecutionOperator, charge_operator, union_bytes_per_record
from .channels import PY_BATCH, PY_COLLECTION
from .ops import _group_factor


def _cin(inputs: Sequence[Channel]) -> float:
    """Simulated input cardinality an operator is charged for."""
    return sum(ch.sim_cardinality for ch in inputs)


def _columnar(source: Any, records) -> RecordBatch:
    """The cached columnar form of a source payload (built on first use).

    Cached on the source object (a virtual file or a logical collection
    source) itself.  Batches are immutable, so loop re-executions, crash
    retries and repeated runs of the same plan can all share the one batch
    — the engine-side analog of a columnar file format amortizing its
    decode cost.
    """
    batch = getattr(source, "_columnar_batch", None)
    if batch is None:
        batch = RecordBatch.from_records(records)
        source._columnar_batch = batch
    return batch


class PyBatchOperator(ExecutionOperator):
    """Base for the batch operators (record batch in, record batch out)."""

    platform = "pystreams"

    def input_descriptors(self):
        arity = self.logical.num_inputs if self.logical is not None else 1
        return [PY_BATCH] * arity

    def output_descriptor(self):
        return PY_BATCH

    def broadcast_descriptor(self):
        # Broadcast side inputs stay plain collections; batch kernels that
        # take broadcasts receive them as lists, like the scalar ops.
        return PY_COLLECTION

    def _emit(self, template: Channel, batch: RecordBatch, ctx,
              cin: float,
              sim_factor: float | None = None,
              bytes_per_record: float | None = None) -> Channel:
        # Mirrors the per-record ``PyExecutionOperator._emit`` exactly;
        # ``cin`` is threaded through the call, never instance state.
        out = Channel(
            PY_BATCH,
            batch,
            template.sim_factor if sim_factor is None else sim_factor,
            (template.bytes_per_record if bytes_per_record is None
             else bytes_per_record),
            len(batch),
        )
        charge_operator(ctx, self, cin, out.sim_cardinality)
        return out

    def execute(self, inputs: Sequence[Channel], broadcasts: Sequence[Channel],
                ctx) -> Channel:
        return self._run(inputs, [b.payload for b in broadcasts], ctx)

    def _run(self, inputs: Sequence[Channel], bvals: list[Any], ctx) -> Channel:
        raise NotImplementedError


class PyBatchTextFileSource(PyBatchOperator):
    """Reads a virtual file as one columnar batch of lines.

    Lines are columnarized once per virtual file (see ``_columnar``);
    charges are identical to ``PyTextFileSource``.
    """

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        vf = ctx.vfs.read(self.logical.path)
        ctx.meter.charge(ctx.profile(self.platform).io_seconds(vf.sim_mb),
                         "pystreams.read", category="io")
        batch = _columnar(vf, vf.records)
        ch = Channel(PY_BATCH, batch, vf.sim_factor, vf.bytes_per_record,
                     len(batch))
        return self._emit(ch, batch, ctx, 0.0)


class PyBatchCollectionSource(PyBatchOperator):
    """Wraps a driver-side collection as one cached columnar batch.

    The scalar twin copies the collection on every run to guard against
    downstream mutation; the batch is immutable, so sharing it is safe.
    Like ``PyCollectionSource``, it charges nothing.
    """

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        logical = self.logical
        batch = _columnar(logical, logical.data)
        return Channel(PY_BATCH, batch, logical.sim_factor,
                       logical.bytes_per_record, len(batch))


class PyBatchMap(PyBatchOperator):
    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        out = apply_map(self.logical, inputs[0].payload, bvals)
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class PyBatchFlatMap(PyBatchOperator):
    op_kind = "flatmap"

    def _run(self, inputs, bvals, ctx):
        out = apply_flatmap(self.logical, inputs[0].payload, bvals)
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class PyBatchFilter(PyBatchOperator):
    op_kind = "filter"

    def _run(self, inputs, bvals, ctx):
        out = apply_filter(self.logical, inputs[0].payload, bvals)
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyBatchDistinct(PyBatchOperator):
    op_kind = "distinct"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        seen, keep = set(), []
        for i, x in enumerate(inputs[0].payload.to_records()):
            k = x if key is None else key(x)
            if k not in seen:
                seen.add(k)
                keep.append(i)
        out = inputs[0].payload.take(np.array(keep, dtype=np.int64))
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyBatchSort(PyBatchOperator):
    op_kind = "sort"

    def _run(self, inputs, bvals, ctx):
        out = apply_sort(self.logical, inputs[0].payload)
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyBatchGroupBy(PyBatchOperator):
    """Batch twin of ``PyGroupBy`` (also the first half of the 1-to-n
    ReduceBy alternative)."""

    op_kind = "groupby"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        groups: dict[Any, list[Any]] = {}
        for x in inputs[0].payload.to_records():
            groups.setdefault(key(x), []).append(x)
        out = RecordBatch.from_records(list(groups.items()))
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(groups),
                                                   inputs[0].sim_factor))


class PyBatchReduceGroups(PyBatchOperator):
    """Batch twin of ``PyReduceGroups`` (second half of the 1-to-n
    alternative)."""

    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        reducer = self.logical.reducer
        out = []
        for __, members in inputs[0].payload.to_records():
            acc = members[0]
            for m in members[1:]:
                acc = reducer(acc, m)
            out.append(acc)
        return self._emit(inputs[0], RecordBatch.from_records(out), ctx,
                          _cin(inputs))


class PyBatchReduceBy(PyBatchOperator):
    op_kind = "reduceby"

    def _run(self, inputs, bvals, ctx):
        out = apply_reduce(self.logical, inputs[0].payload)
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(out),
                                                   inputs[0].sim_factor))


class PyBatchUnion(PyBatchOperator):
    op_kind = "union"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        out = RecordBatch.concat([a.payload, b.payload])
        total_actual = len(out)
        total_sim = a.sim_cardinality + b.sim_cardinality
        factor = total_sim / total_actual if total_actual else 1.0
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=union_bytes_per_record(a, b))


class PyBatchJoin(PyBatchOperator):
    op_kind = "join"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        out = apply_join(self.logical, a.payload, b.payload)
        factor = self.logical.output_sim_factor(a.sim_factor, b.sim_factor)
        bpr = a.bytes_per_record + b.bytes_per_record
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=bpr)
