"""PyStreams: the JavaStreams-analog in-process platform."""

from .channels import PY_COLLECTION
from .platform import PyStreamsPlatform

__all__ = ["PY_COLLECTION", "PyStreamsPlatform"]
