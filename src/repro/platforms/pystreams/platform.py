"""Platform registration for PyStreams: channels, conversions, mappings."""

from __future__ import annotations

import itertools

from ...core import operators as ops
from ...core.channels import (
    Channel,
    Conversion,
    HDFS_FILE,
    LOCAL_FILE,
)
from ...core.mappings import OperatorMapping
from ..base import Platform
from . import batch_ops as bx
from . import ops as x
from .channels import PY_BATCH, PY_COLLECTION

_tmp_counter = itertools.count(1)


def _collection_to_file(scheme: str):
    def convert(channel: Channel, ctx) -> Channel:
        path = f"{scheme}://tmp/pystreams-{next(_tmp_counter)}"
        vf = ctx.vfs.write(path, channel.payload, channel.sim_factor,
                           channel.bytes_per_record)
        out_desc = HDFS_FILE if scheme == "hdfs" else LOCAL_FILE
        return Channel(out_desc, path, vf.sim_factor, vf.bytes_per_record,
                       len(vf.records))

    return convert


def _file_to_collection(channel: Channel, ctx) -> Channel:
    vf = ctx.vfs.read(channel.payload)
    return Channel(PY_COLLECTION, list(vf.records), vf.sim_factor,
                   vf.bytes_per_record, len(vf.records))


def _batchify(channel: Channel, ctx) -> Channel:
    from ...core.batch import RecordBatch

    batch = RecordBatch.from_records(channel.payload)
    return channel.with_payload(batch, PY_BATCH, len(batch))


def _debatchify(channel: Channel, ctx) -> Channel:
    records = channel.payload.to_records()
    return channel.with_payload(records, PY_COLLECTION, len(records))


class PyStreamsPlatform(Platform):
    """The JavaStreams analog: in-process, single-threaded, zero start-up."""

    name = "pystreams"

    def channels(self):
        return [PY_COLLECTION]

    def conversions(self):
        # Single-node disk bandwidth for file hand-offs.
        disk = 100.0
        return [
            Conversion(PY_COLLECTION, HDFS_FILE, _collection_to_file("hdfs"),
                       mb_per_s=disk, overhead_s=0.05),
            Conversion(PY_COLLECTION, LOCAL_FILE, _collection_to_file("file"),
                       mb_per_s=disk, overhead_s=0.01),
            Conversion(HDFS_FILE, PY_COLLECTION, _file_to_collection,
                       mb_per_s=disk, overhead_s=0.05),
            Conversion(LOCAL_FILE, PY_COLLECTION, _file_to_collection,
                       mb_per_s=disk, overhead_s=0.01),
        ]

    def mappings(self):
        m = OperatorMapping
        return [
            m(ops.TextFileSource, lambda op: [x.PyTextFileSource(op)]),
            m(ops.CollectionSource, lambda op: [x.PyCollectionSource(op)]),
            m(ops.Map, lambda op: [x.PyMap(op)]),
            m(ops.FlatMap, lambda op: [x.PyFlatMap(op)]),
            m(ops.Filter, lambda op: [x.PyFilter(op)]),
            m(ops.MapPartitions, lambda op: [x.PyMapPartitions(op)]),
            m(ops.ZipWithId, lambda op: [x.PyZipWithId(op)]),
            m(ops.Sample, lambda op: [x.PySample(op)]),
            m(ops.Distinct, lambda op: [x.PyDistinct(op)]),
            m(ops.Sort, lambda op: [x.PySort(op)]),
            m(ops.GroupBy, lambda op: [x.PyGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.PyReduceBy(op)]),
            # The paper's Figure 4: Reduce-style operators also map to a
            # GroupBy + Map chain (a 1-to-n mapping).
            m(ops.ReduceBy, lambda op: [x.PyGroupBy(op), x.PyReduceGroups(op)],
              name="mapping<ReduceBy via GroupBy+Map>"),
            m(ops.GlobalReduce, lambda op: [x.PyGlobalReduce(op)]),
            m(ops.Count, lambda op: [x.PyCount(op)]),
            m(ops.Cache, lambda op: [x.PyCache(op)]),
            m(ops.Union, lambda op: [x.PyUnion(op)]),
            m(ops.Intersect, lambda op: [x.PyIntersect(op)]),
            m(ops.Join, lambda op: [x.PyJoin(op)]),
            m(ops.CartesianProduct, lambda op: [x.PyCartesian(op)]),
            m(ops.IEJoin, lambda op: [x.PyIEJoin(op)]),
            m(ops.PageRank, lambda op: [x.PyPageRank(op)]),
            m(ops.CollectionSink, lambda op: [x.PyCollectionSink(op)]),
            m(ops.TextFileSink, lambda op: [x.PyTextFileSink(op)]),
        ]

    # ------------------------------------------------- vectorized execution
    def batch_channels(self):
        return [PY_BATCH]

    def batch_conversions(self):
        # Pure representation changes within the process: free, so plan
        # costs are identical with vectorization on or off.
        free = float("inf")
        return [
            Conversion(PY_COLLECTION, PY_BATCH, _batchify,
                       mb_per_s=free, overhead_s=0.0,
                       name="pystreams-batchify"),
            Conversion(PY_BATCH, PY_COLLECTION, _debatchify,
                       mb_per_s=free, overhead_s=0.0,
                       name="pystreams-debatchify"),
        ]

    def batch_mappings(self):
        m = OperatorMapping
        return [
            m(ops.TextFileSource, lambda op: [bx.PyBatchTextFileSource(op)]),
            m(ops.CollectionSource,
              lambda op: [bx.PyBatchCollectionSource(op)]),
            m(ops.Map, lambda op: [bx.PyBatchMap(op)]),
            m(ops.FlatMap, lambda op: [bx.PyBatchFlatMap(op)]),
            m(ops.Filter, lambda op: [bx.PyBatchFilter(op)]),
            m(ops.Distinct, lambda op: [bx.PyBatchDistinct(op)]),
            m(ops.Sort, lambda op: [bx.PyBatchSort(op)]),
            m(ops.GroupBy, lambda op: [bx.PyBatchGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [bx.PyBatchReduceBy(op)]),
            m(ops.ReduceBy,
              lambda op: [bx.PyBatchGroupBy(op), bx.PyBatchReduceGroups(op)],
              name="mapping<ReduceBy via GroupBy+Map>"),
            m(ops.Union, lambda op: [bx.PyBatchUnion(op)]),
            m(ops.Join, lambda op: [bx.PyBatchJoin(op)]),
        ]
