"""PyStreams execution operators: single-threaded in-process pipelines.

The JavaStreams analog.  No start-up cost, no parallelism; per-record work
is charged at the platform's tuple cost.  All operators speak the
``pystreams.collection`` channel.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from ...algorithms.iejoin import ie_join
from ...algorithms.pagerank import pagerank_edges
from ...core.channels import Channel
from ..base import ExecutionOperator, charge_operator, union_bytes_per_record
from .channels import PY_COLLECTION


def _cin(inputs: Sequence[Channel]) -> float:
    """Simulated input cardinality an operator is charged for."""
    return sum(ch.sim_cardinality for ch in inputs)


class PyExecutionOperator(ExecutionOperator):
    """Base for all PyStreams operators (collection in, collection out)."""

    platform = "pystreams"

    def input_descriptors(self):
        arity = self.logical.num_inputs if self.logical is not None else 1
        return [PY_COLLECTION] * arity

    def output_descriptor(self):
        return PY_COLLECTION

    def broadcast_descriptor(self):
        return PY_COLLECTION

    def _emit(self, template: Channel, payload: list[Any], ctx,
              cin: float,
              sim_factor: float | None = None,
              bytes_per_record: float | None = None) -> Channel:
        """Build the output channel and charge this operator's cost.

        ``cin`` is the simulated input cardinality the charge is based on,
        threaded through the call explicitly: a shared operator instance
        re-executed across loop iterations or concurrent scheduler lanes
        must never read charge inputs from mutable instance state.
        """
        out = Channel(
            PY_COLLECTION,
            payload,
            template.sim_factor if sim_factor is None else sim_factor,
            (template.bytes_per_record if bytes_per_record is None
             else bytes_per_record),
            len(payload),
        )
        charge_operator(ctx, self, cin, out.sim_cardinality)
        return out

    def execute(self, inputs: Sequence[Channel], broadcasts: Sequence[Channel],
                ctx) -> Channel:
        return self._run(inputs, [b.payload for b in broadcasts], ctx)

    def _run(self, inputs: Sequence[Channel], bvals: list[Any], ctx) -> Channel:
        raise NotImplementedError


class PyTextFileSource(PyExecutionOperator):
    """Reads a virtual file into a collection (single-node bandwidth)."""

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        vf = ctx.vfs.read(self.logical.path)
        ctx.meter.charge(ctx.profile(self.platform).io_seconds(vf.sim_mb),
                         "pystreams.read", category="io")
        ch = Channel(PY_COLLECTION, list(vf.records), vf.sim_factor,
                     vf.bytes_per_record, len(vf.records))
        return self._emit(ch, ch.payload, ctx, 0.0)


class PyCollectionSource(PyExecutionOperator):
    """Wraps a driver-side collection; effectively free."""

    op_kind = "source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, bvals, ctx):
        data = list(self.logical.data)
        return Channel(PY_COLLECTION, data, self.logical.sim_factor,
                       self.logical.bytes_per_record, len(data))


class PyMap(PyExecutionOperator):
    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = [udf(x, *bvals) for x in inputs[0].payload]
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class PyFlatMap(PyExecutionOperator):
    op_kind = "flatmap"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = [y for x in inputs[0].payload for y in udf(x, *bvals)]
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class PyMapPartitions(PyExecutionOperator):
    """The whole collection is one partition on the driver."""

    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        out = list(self.logical.udf(list(inputs[0].payload), *bvals))
        return self._emit(inputs[0], out, ctx, _cin(inputs),
                          bytes_per_record=self.logical.bytes_per_record)


class PyZipWithId(PyExecutionOperator):
    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        out = list(enumerate(inputs[0].payload))
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyFilter(PyExecutionOperator):
    op_kind = "filter"

    def _run(self, inputs, bvals, ctx):
        udf = self.logical.udf
        out = [x for x in inputs[0].payload if udf(x, *bvals)]
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PySample(PyExecutionOperator):
    """Draws a sample; index-based, so cost scales with the sample size."""

    op_kind = "sample"

    def _run(self, inputs, bvals, ctx):
        data = inputs[0].payload
        logical = self.logical
        if logical.size is not None:
            k = min(logical.size, len(data))
        else:
            k = int(len(data) * logical.fraction)
        if logical.method == "first":
            out = list(data[:k])
        else:
            # Seeded purely from (context seed, logical seed, op name,
            # loop-iteration epoch): a crash-retried attempt of the same
            # iteration draws the identical sample, while successive loop
            # iterations still get fresh draws.
            seed = (f"{ctx.config.get('seed', 42)}|{logical.seed}"
                    f"|{logical.name}|{ctx.epoch}")
            rng = random.Random(seed)
            out = [data[rng.randrange(len(data))] for __ in range(k)] if data else []
        return self._emit(inputs[0], out, ctx, _cin(inputs), sim_factor=1.0)


class PyDistinct(PyExecutionOperator):
    op_kind = "distinct"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        if key is None:
            seen, out = set(), []
            for x in inputs[0].payload:
                if x not in seen:
                    seen.add(x)
                    out.append(x)
        else:
            seen, out = set(), []
            for x in inputs[0].payload:
                k = key(x)
                if k not in seen:
                    seen.add(k)
                    out.append(x)
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PySort(PyExecutionOperator):
    op_kind = "sort"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        out = sorted(inputs[0].payload,
                     key=key if key is not None else None,
                     reverse=self.logical.descending)
        return self._emit(inputs[0], out, ctx, _cin(inputs))


def _group_factor(logical, actual_groups: int, input_factor: float):
    """Output sim factor for grouping ops: honour a declared true group
    count, else carry the input's factor through."""
    sim_groups = getattr(logical, "sim_groups", None)
    if sim_groups is not None and actual_groups:
        return sim_groups / actual_groups
    return input_factor


class PyGroupBy(PyExecutionOperator):
    """Groups into ``(key, [members])`` quanta.

    Accepts ``GroupBy`` or ``ReduceBy`` logicals (the latter as the first
    half of the 1-to-n Reduce mapping of the paper's Figure 4).
    """

    op_kind = "groupby"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        groups: dict[Any, list[Any]] = {}
        for x in inputs[0].payload:
            groups.setdefault(key(x), []).append(x)
        return self._emit(inputs[0], list(groups.items()), ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(groups),
                                                   inputs[0].sim_factor))


class PyReduceGroups(PyExecutionOperator):
    """Folds ``(key, [members])`` quanta into ``(key, aggregate)``.

    The second half of the composite ReduceBy alternative.
    """

    op_kind = "map"

    def _run(self, inputs, bvals, ctx):
        reducer = self.logical.reducer
        out = []
        for __, members in inputs[0].payload:
            acc = members[0]
            for m in members[1:]:
                acc = reducer(acc, m)
            out.append(acc)
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyReduceBy(PyExecutionOperator):
    op_kind = "reduceby"

    def _run(self, inputs, bvals, ctx):
        key = self.logical.key
        reducer = self.logical.reducer
        acc: dict[Any, Any] = {}
        for x in inputs[0].payload:
            k = key(x)
            acc[k] = x if k not in acc else reducer(acc[k], x)
        return self._emit(inputs[0], list(acc.values()), ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(acc),
                                                   inputs[0].sim_factor))


class PyGlobalReduce(PyExecutionOperator):
    op_kind = "reduce"

    def _run(self, inputs, bvals, ctx):
        data = inputs[0].payload
        out = []
        if data:
            acc = data[0]
            reducer = self.logical.reducer
            for x in data[1:]:
                acc = reducer(acc, x)
            out = [acc]
        return self._emit(inputs[0], out, ctx, _cin(inputs), sim_factor=1.0)


class PyCount(PyExecutionOperator):
    op_kind = "count"

    def _run(self, inputs, bvals, ctx):
        return self._emit(inputs[0], [len(inputs[0].payload)], ctx,
                          _cin(inputs), sim_factor=1.0)


class PyCache(PyExecutionOperator):
    """No-op: collections are already materialized and reusable."""

    op_kind = "cache"

    def _run(self, inputs, bvals, ctx):
        # Detach rather than alias: the cached payload must survive a
        # sibling branch mutating its container in place.
        return inputs[0].detached()


class PyUnion(PyExecutionOperator):
    op_kind = "union"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        payload = list(a.payload) + list(b.payload)
        total_actual = len(payload)
        total_sim = (a.sim_cardinality + b.sim_cardinality)
        factor = total_sim / total_actual if total_actual else 1.0
        return self._emit(a, payload, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=union_bytes_per_record(a, b))


class PyIntersect(PyExecutionOperator):
    op_kind = "intersect"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        right = set(b.payload)
        seen = set()
        out = []
        for x in a.payload:
            if x in right and x not in seen:
                seen.add(x)
                out.append(x)
        return self._emit(a, out, ctx, _cin(inputs))


class PyJoin(PyExecutionOperator):
    """Hash equi-join producing ``(left, right)`` pairs."""

    op_kind = "join"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        lk, rk = self.logical.left_key, self.logical.right_key
        table: dict[Any, list[Any]] = {}
        for r in b.payload:
            table.setdefault(rk(r), []).append(r)
        out = [(l, r) for l in a.payload for r in table.get(lk(l), ())]
        factor = self.logical.output_sim_factor(a.sim_factor, b.sim_factor)
        bpr = a.bytes_per_record + b.bytes_per_record
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=bpr)


class PyCartesian(PyExecutionOperator):
    op_kind = "cartesian"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        out = [(l, r) for l in a.payload for r in b.payload]
        factor = a.sim_factor * b.sim_factor
        bpr = a.bytes_per_record + b.bytes_per_record
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=bpr)


class PyIEJoin(PyExecutionOperator):
    """The plugged-in fast inequality join (see :mod:`repro.algorithms.iejoin`)."""

    op_kind = "iejoin"

    def _run(self, inputs, bvals, ctx):
        a, b = inputs
        conditions = [(c.left_key, c.op, c.right_key)
                      for c in self.logical.conditions]
        out = ie_join(a.payload, b.payload, conditions)
        factor = max(a.sim_factor, b.sim_factor)
        bpr = a.bytes_per_record + b.bytes_per_record
        return self._emit(a, out, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=bpr)


class PyPageRank(PyExecutionOperator):
    """PageRank on plain collections (single-threaded)."""

    op_kind = "pagerank"

    def _run(self, inputs, bvals, ctx):
        ranks = pagerank_edges(inputs[0].payload,
                               self.logical.iterations, self.logical.damping)
        out = sorted(ranks.items())
        return self._emit(inputs[0], out, ctx, _cin(inputs))


class PyCollectionSink(PyExecutionOperator):
    """Terminal operator: the payload is the job result."""

    op_kind = "sink"

    def _run(self, inputs, bvals, ctx):
        # Detach: the sunk result list must not alias a channel a sibling
        # branch may still mutate through.
        return inputs[0].detached()


class PyTextFileSink(PyExecutionOperator):
    """Writes quanta to a virtual file, one per line."""

    op_kind = "sink"

    def _run(self, inputs, bvals, ctx):
        ch = inputs[0]
        ctx.vfs.write(self.logical.path, [str(x) for x in ch.payload],
                      ch.sim_factor, ch.bytes_per_record)
        ctx.meter.charge(ctx.profile(self.platform).io_seconds(ch.sim_mb),
                         "pystreams.write", category="io")
        return ch.detached()
