"""Channel types of the PyStreams (JavaStreams-analog) platform."""

from ...core.channels import ChannelDescriptor

#: A driver-side, in-process materialized collection.  Reusable: any number
#: of consumers may iterate it (the paper's Java Collection channel).
PY_COLLECTION = ChannelDescriptor("pystreams.collection", "pystreams", True)

#: The same collection in columnar form: one immutable
#: :class:`~repro.core.batch.RecordBatch`.  Registered (with zero-cost
#: conversions to/from the collection channel) only when the context is
#: built with ``vectorize`` on.
PY_BATCH = ChannelDescriptor("pystreams.batch", "pystreams", True)
