"""Channel types of the PyStreams (JavaStreams-analog) platform."""

from ...core.channels import ChannelDescriptor

#: A driver-side, in-process materialized collection.  Reusable: any number
#: of consumers may iterate it (the paper's Java Collection channel).
PY_COLLECTION = ChannelDescriptor("pystreams.collection", "pystreams", True)
