"""Pgres: the Postgres-analog single-node relational platform."""

from .channels import PG_RELATION, Relation
from .engine import DuplicateTable, OrderedIndex, PgresDatabase, Table, TableNotFound
from .platform import PgresPlatform

__all__ = [
    "PG_RELATION",
    "Relation",
    "DuplicateTable",
    "OrderedIndex",
    "PgresDatabase",
    "Table",
    "TableNotFound",
    "PgresPlatform",
]
