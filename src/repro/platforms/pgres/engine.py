"""A miniature relational engine (the Postgres analog's storage layer).

Implements heap tables of dict-shaped rows, ordered (B-tree-style) indexes
with range scans, and a tiny catalog with statistics — enough substance for
indexed selections, projections and hash joins to behave (and cost) like a
single-node DBMS in the reproduction's experiments.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable


class TableNotFound(KeyError):
    """Raised when a statement references a missing table."""


class DuplicateTable(ValueError):
    """Raised when creating a table that already exists."""


@dataclass
class OrderedIndex:
    """A B-tree-style ordered index over one column."""

    column: str
    keys: list[Any] = field(default_factory=list, repr=False)
    row_ids: list[int] = field(default_factory=list, repr=False)

    def build(self, rows: list[dict]) -> None:
        """(Re)build the index over the current rows."""
        order = sorted(range(len(rows)), key=lambda i: rows[i][self.column])
        self.row_ids = order
        self.keys = [rows[i][self.column] for i in order]

    def range_row_ids(self, low: Any = None, high: Any = None) -> list[int]:
        """Row ids with column values in ``[low, high]`` (inclusive)."""
        lo = 0 if low is None else bisect_left(self.keys, low)
        hi = len(self.keys) if high is None else bisect_right(self.keys, high)
        return self.row_ids[lo:hi]


@dataclass
class Table:
    """A heap table plus simulated-size metadata."""

    name: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list, repr=False)
    indexes: dict[str, OrderedIndex] = field(default_factory=dict)
    sim_factor: float = 1.0
    bytes_per_row: float = 100.0

    @property
    def sim_row_count(self) -> float:
        """Simulated number of rows."""
        return len(self.rows) * self.sim_factor

    @property
    def sim_mb(self) -> float:
        """Simulated table size in MB."""
        return self.sim_row_count * self.bytes_per_row / 1e6

    def bytes_for_projection(self, projection: list[str] | None) -> float:
        """Approximate per-row bytes when only some columns survive."""
        if not projection or not self.columns:
            return self.bytes_per_row
        keep = len([c for c in projection if c in self.columns])
        return self.bytes_per_row * keep / len(self.columns)


class PgresDatabase:
    """The catalog: named tables, indexes, and ANALYZE-style statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: list[str],
        rows: Iterable[dict] = (),
        sim_factor: float = 1.0,
        bytes_per_row: float = 100.0,
    ) -> Table:
        """Create and optionally populate a table.

        Raises:
            DuplicateTable: If the name is taken.
        """
        if name in self._tables:
            raise DuplicateTable(name)
        stored = [dict(r) if isinstance(r, dict) else r for r in rows]
        table = Table(name, list(columns), stored,
                      sim_factor=sim_factor, bytes_per_row=bytes_per_row)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table.

        Raises:
            TableNotFound: If no such table exists.
        """
        try:
            del self._tables[name]
        except KeyError:
            raise TableNotFound(name) from None

    def table(self, name: str) -> Table:
        """Look up a table.

        Raises:
            TableNotFound: If no such table exists.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFound(name) from None

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name in self._tables

    def insert_many(self, name: str, rows: Iterable[dict]) -> int:
        """Append rows; indexes are rebuilt lazily on next use."""
        table = self.table(name)
        added = 0
        for row in rows:
            table.rows.append(dict(row) if isinstance(row, dict) else row)
            added += 1
        for index in table.indexes.values():
            index.build(table.rows)
        return added

    def create_index(self, table_name: str, column: str) -> OrderedIndex:
        """Build an ordered index on one column.

        Raises:
            ValueError: If the column does not exist.
        """
        table = self.table(table_name)
        if column not in table.columns:
            raise ValueError(f"{table_name} has no column {column!r}")
        index = OrderedIndex(column)
        index.build(table.rows)
        table.indexes[column] = index
        return index

    def index_for(self, table_name: str, column: str) -> OrderedIndex | None:
        """The index on ``column``, if one was created."""
        return self.table(table_name).indexes.get(column)

    def analyze(self) -> dict[str, float]:
        """Simulated row counts per table (feeds cardinality estimation)."""
        return {name: t.sim_row_count for name, t in self._tables.items()}

    def row_bytes(self) -> dict[str, float]:
        """Per-row simulated byte widths (feeds data-movement planning)."""
        return {name: t.bytes_per_row for name, t in self._tables.items()}

    def table_names(self) -> list[str]:
        """All catalog table names, sorted."""
        return sorted(self._tables)
