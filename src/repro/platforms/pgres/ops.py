"""Pgres execution operators: single-node relational query processing.

Selections use ordered indexes when the logical filter declares a column
range and the relation is an unmodified base table; joins are hash joins;
inequality joins fall back to a nested loop whose cost is the product of the
input cardinalities — the weakness BigDansing's plugged IEJoin works around
on the other platforms.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...core.channels import Channel
from ...core.cost import CostEstimate
from ..base import ExecutionOperator, charge_operator, union_bytes_per_record
from ..pystreams.channels import PY_COLLECTION
from .channels import PG_RELATION, Relation


def _cin(inputs: Sequence[Channel]) -> float:
    """Simulated input cardinality an operator is charged for."""
    return sum(ch.sim_cardinality for ch in inputs)


class PgExecutionOperator(ExecutionOperator):
    """Base for Pgres operators (relation in, relation out)."""

    platform = "pgres"

    def input_descriptors(self):
        arity = self.logical.num_inputs if self.logical is not None else 1
        return [PG_RELATION] * arity

    def output_descriptor(self):
        return PG_RELATION

    def _emit(self, template: Channel, rows: list[Any], ctx,
              cin: float,
              base_table: str | None = None,
              sim_factor: float | None = None,
              bytes_per_record: float | None = None,
              charge: bool = True,
              op_kind: str | None = None) -> Channel:
        # ``cin`` is threaded through the call (not instance state): shared
        # operator instances re-execute across loop iterations, concurrent
        # lanes and cached plans.  ``op_kind`` overrides the charged kind
        # when the run resolved it dynamically (index vs sequential scan).
        out = Channel(
            PG_RELATION,
            Relation(rows, base_table),
            template.sim_factor if sim_factor is None else sim_factor,
            (template.bytes_per_record if bytes_per_record is None
             else bytes_per_record),
            len(rows),
        )
        if charge:
            charge_operator(ctx, self, cin, out.sim_cardinality, kind=op_kind)
        return out

    def execute(self, inputs: Sequence[Channel], broadcasts: Sequence[Channel],
                ctx) -> Channel:
        if broadcasts:
            raise ValueError("pgres operators do not accept broadcast inputs")
        return self._run(inputs, ctx)

    def _run(self, inputs: Sequence[Channel], ctx) -> Channel:
        raise NotImplementedError


class PgTableSource(PgExecutionOperator):
    """Scans (and optionally projects) a catalog table.

    Projection pushdown shrinks the per-row bytes — which is exactly what
    makes "project in Postgres, ship less data" win Figure 10(a).
    """

    op_kind = "table_source"

    def input_descriptors(self):
        return []

    def _run(self, inputs, ctx):
        table = ctx.pgres.table(self.logical.table)
        projection = self.logical.projection
        if projection:
            rows = [{c: r[c] for c in projection} for r in table.rows]
            base = None  # projected rows are derived
        else:
            rows = list(table.rows)
            base = table.name
        template = Channel(PG_RELATION, None, table.sim_factor,
                           table.bytes_per_row)
        return self._emit(template, rows, ctx, 0.0, base_table=base,
                          bytes_per_record=table.bytes_for_projection(projection))


class PgFilter(PgExecutionOperator):
    """WHERE clause: index scan when possible, else parallel seq scan.

    Whether the index applies is a pure function of the inputs and the
    catalog — resolved per run and threaded into the charge, never stored
    on the (shared, possibly concurrently executing) operator instance.
    """

    op_kind = "filter"

    def observed_op_kind(self, inputs, ctx) -> str:
        relation: Relation = inputs[0].payload
        if self._index(relation, ctx) is not None:
            return "filter_index"
        return "filter"

    def _index(self, relation: Relation, ctx):
        logical = self.logical
        if logical.column is None or relation.base_table is None:
            return None
        if ctx.pgres is None or not ctx.pgres.has_table(relation.base_table):
            return None
        return ctx.pgres.index_for(relation.base_table, logical.column)

    def _run(self, inputs, ctx):
        relation: Relation = inputs[0].payload
        index = self._index(relation, ctx)
        logical = self.logical
        if index is not None:
            table = ctx.pgres.table(relation.base_table)
            row_ids = index.range_row_ids(logical.low, logical.high)
            rows = [table.rows[i] for i in row_ids]
            kind = "filter_index"
        else:
            rows = [r for r in relation.rows if logical.udf(r)]
            kind = "filter"
        return self._emit(inputs[0], rows, ctx, _cin(inputs), op_kind=kind)


class PgProjection(PgExecutionOperator):
    """SELECT-list expressions (the Map operator on Pgres)."""

    op_kind = "map"

    def _run(self, inputs, ctx):
        udf = self.logical.udf
        rows = [udf(r) for r in inputs[0].payload.rows]
        return self._emit(inputs[0], rows, ctx, _cin(inputs))


class PgJoin(PgExecutionOperator):
    """Hash equi-join producing ``(left, right)`` pairs."""

    op_kind = "join"

    def _run(self, inputs, ctx):
        a, b = inputs
        lk, rk = self.logical.left_key, self.logical.right_key
        table: dict[Any, list[Any]] = {}
        for r in b.payload.rows:
            table.setdefault(rk(r), []).append(r)
        rows = [(l, r) for l in a.payload.rows for r in table.get(lk(l), ())]
        factor = self.logical.output_sim_factor(a.sim_factor, b.sim_factor)
        return self._emit(a, rows, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=a.bytes_per_record + b.bytes_per_record)


class PgIEJoin(PgExecutionOperator):
    """Inequality join as a nested loop — cost is |L| x |R|."""

    op_kind = "nested_loop"

    def cost_estimate(self, model, cins, cout):
        product = cins[0].times(cins[1])
        profile = model.cluster.profile(self.platform)
        return CostEstimate(
            profile.cpu_seconds(product.lower),
            profile.cpu_seconds(product.upper),
            product.confidence,
        )

    def _run(self, inputs, ctx):
        a, b = inputs
        conditions = self.logical.conditions
        rows = [(l, r)
                for l in a.payload.rows
                for r in b.payload.rows
                if all(c.holds(l, r) for c in conditions)]
        out = self._emit(a, rows, ctx, _cin(inputs),
                         sim_factor=max(a.sim_factor, b.sim_factor),
                         bytes_per_record=a.bytes_per_record + b.bytes_per_record,
                         charge=False)
        product = a.sim_cardinality * b.sim_cardinality
        profile = ctx.profile(self.platform)
        ctx.meter.charge(profile.cpu_seconds(product), self.name, category="cpu")
        return out


class PgSort(PgExecutionOperator):
    op_kind = "sort"

    def _run(self, inputs, ctx):
        key = self.logical.key
        rows = sorted(inputs[0].payload.rows,
                      key=key if key is not None else None,
                      reverse=self.logical.descending)
        return self._emit(inputs[0], rows, ctx, _cin(inputs))


class PgDistinct(PgExecutionOperator):
    op_kind = "distinct"

    def _run(self, inputs, ctx):
        key = self.logical.key
        seen: set[Any] = set()
        rows = []
        for r in inputs[0].payload.rows:
            k = key(r) if key is not None else _hashable(r)
            if k not in seen:
                seen.add(k)
                rows.append(r)
        return self._emit(inputs[0], rows, ctx, _cin(inputs))


def _group_factor(logical, actual_groups: int, input_factor: float):
    """Honour a declared true group count (see the logical operators)."""
    sim_groups = getattr(logical, "sim_groups", None)
    if sim_groups is not None and actual_groups:
        return sim_groups / actual_groups
    return input_factor


def _hashable(row: Any) -> Any:
    if isinstance(row, dict):
        return tuple(sorted(row.items()))
    return row


class PgGroupBy(PgExecutionOperator):
    op_kind = "groupby"

    def _run(self, inputs, ctx):
        key = self.logical.key
        groups: dict[Any, list[Any]] = {}
        for r in inputs[0].payload.rows:
            groups.setdefault(key(r), []).append(r)
        return self._emit(inputs[0], list(groups.items()), ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(groups),
                                                   inputs[0].sim_factor))


class PgReduceBy(PgExecutionOperator):
    """GROUP BY with an aggregate."""

    op_kind = "reduceby"

    def _run(self, inputs, ctx):
        key = self.logical.key
        reducer = self.logical.reducer
        acc: dict[Any, Any] = {}
        for r in inputs[0].payload.rows:
            k = key(r)
            acc[k] = r if k not in acc else reducer(acc[k], r)
        return self._emit(inputs[0], list(acc.values()), ctx, _cin(inputs),
                          sim_factor=_group_factor(self.logical, len(acc),
                                                   inputs[0].sim_factor))


class PgGlobalReduce(PgExecutionOperator):
    op_kind = "reduce"

    def _run(self, inputs, ctx):
        rows = inputs[0].payload.rows
        out: list[Any] = []
        if rows:
            acc = rows[0]
            reducer = self.logical.reducer
            for r in rows[1:]:
                acc = reducer(acc, r)
            out = [acc]
        return self._emit(inputs[0], out, ctx, _cin(inputs), sim_factor=1.0)


class PgCount(PgExecutionOperator):
    op_kind = "count"

    def _run(self, inputs, ctx):
        return self._emit(inputs[0], [len(inputs[0].payload.rows)], ctx,
                          _cin(inputs), sim_factor=1.0)


class PgUnion(PgExecutionOperator):
    """UNION ALL."""

    op_kind = "union"

    def _run(self, inputs, ctx):
        a, b = inputs
        rows = list(a.payload.rows) + list(b.payload.rows)
        total_sim = a.sim_cardinality + b.sim_cardinality
        factor = total_sim / len(rows) if rows else 1.0
        # Width is the cardinality-weighted mix of both branches, not the
        # left branch's alone (branches can have very different row widths).
        return self._emit(a, rows, ctx, _cin(inputs), sim_factor=factor,
                          bytes_per_record=union_bytes_per_record(a, b))


class PgIntersect(PgExecutionOperator):
    op_kind = "intersect"

    def _run(self, inputs, ctx):
        a, b = inputs
        right = {_hashable(r) for r in b.payload.rows}
        seen: set[Any] = set()
        rows = []
        for r in a.payload.rows:
            k = _hashable(r)
            if k in right and k not in seen:
                seen.add(k)
                rows.append(r)
        return self._emit(a, rows, ctx, _cin(inputs))


class PgCollectionSink(PgExecutionOperator):
    """Ships the result to the driver over the single client connection."""

    op_kind = "collect_sink"

    def output_descriptor(self):
        return PY_COLLECTION

    def _run(self, inputs, ctx):
        ch = inputs[0]
        rows = list(ch.payload.rows)
        out = Channel(PY_COLLECTION, rows, ch.sim_factor, ch.bytes_per_record,
                      len(rows))
        charge_operator(ctx, self, ch.sim_cardinality, out.sim_cardinality)
        return out


class PgBatchFilter(PgFilter):
    """Vectorized WHERE clause: the sequential-scan path runs one columnar
    kernel over the whole relation instead of a per-row predicate call.

    Pgres keeps its relational channel — vectorization happens inside the
    operator — so index selection, charges and ``observed_op_kind`` are
    exactly ``PgFilter``'s, and the output is the same list of rows.
    """

    def _run(self, inputs, ctx):
        relation: Relation = inputs[0].payload
        if self._index(relation, ctx) is not None:
            return super()._run(inputs, ctx)
        from ...core.batch import RecordBatch, apply_filter

        batch = RecordBatch.from_records(relation.rows)
        rows = apply_filter(self.logical, batch).to_records()
        return self._emit(inputs[0], rows, ctx, _cin(inputs), op_kind="filter")
