"""Platform registration for Pgres: channels, conversions, mappings."""

from __future__ import annotations

import itertools

from ...core import operators as ops
from ...core.channels import Channel, Conversion, LOCAL_FILE
from ...core.mappings import OperatorMapping
from ..base import Platform
from ..pystreams.channels import PY_COLLECTION
from . import ops as x
from .channels import PG_RELATION, Relation

_tmp_counter = itertools.count(1)

#: Bulk-load bandwidth (INSERT path): deliberately slow — Figure 2(d) finds
#: loading into Postgres ~3x dearer than the whole cross-platform task.
LOAD_MB_PER_S = 12.0
#: Export bandwidth over the single client connection.
EXPORT_MB_PER_S = 40.0


def _export(channel: Channel, ctx) -> Channel:
    rows = list(channel.payload.rows)
    return channel.with_payload(rows, PY_COLLECTION, len(rows))


def _load(channel: Channel, ctx) -> Channel:
    rows = list(channel.payload)
    name = f"_rheem_tmp_{next(_tmp_counter)}"
    columns = sorted(rows[0]) if rows and isinstance(rows[0], dict) else []
    ctx.pgres.create_table(name, columns, rows,
                           sim_factor=channel.sim_factor,
                           bytes_per_row=channel.bytes_per_record)
    return channel.with_payload(Relation(rows, name), PG_RELATION, len(rows))


def _copy_from_file(channel: Channel, ctx) -> Channel:
    vf = ctx.vfs.read(channel.payload)
    rows = list(vf.records)
    name = f"_rheem_tmp_{next(_tmp_counter)}"
    columns = sorted(rows[0]) if rows and isinstance(rows[0], dict) else []
    ctx.pgres.create_table(name, columns, rows, sim_factor=vf.sim_factor,
                           bytes_per_row=vf.bytes_per_record)
    return Channel(PG_RELATION, Relation(rows, name), vf.sim_factor,
                   vf.bytes_per_record, len(rows))


class PgresPlatform(Platform):
    """The Postgres analog: indexed single-node relational processing."""

    name = "pgres"

    def channels(self):
        return [PG_RELATION]

    def conversions(self):
        return [
            Conversion(PG_RELATION, PY_COLLECTION, _export,
                       mb_per_s=EXPORT_MB_PER_S, overhead_s=0.05,
                       name="pgres-export"),
            Conversion(PY_COLLECTION, PG_RELATION, _load,
                       mb_per_s=LOAD_MB_PER_S, overhead_s=0.2,
                       name="pgres-load"),
            Conversion(LOCAL_FILE, PG_RELATION, _copy_from_file,
                       mb_per_s=LOAD_MB_PER_S * 2, overhead_s=0.2,
                       name="pgres-copy"),
        ]

    def mappings(self):
        m = OperatorMapping
        return [
            m(ops.TableSource, lambda op: [x.PgTableSource(op)]),
            m(ops.Map, lambda op: [x.PgProjection(op)]),
            m(ops.Filter, lambda op: [x.PgFilter(op)]),
            m(ops.Sort, lambda op: [x.PgSort(op)]),
            m(ops.Distinct, lambda op: [x.PgDistinct(op)]),
            m(ops.GroupBy, lambda op: [x.PgGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.PgReduceBy(op)]),
            m(ops.GlobalReduce, lambda op: [x.PgGlobalReduce(op)]),
            m(ops.Count, lambda op: [x.PgCount(op)]),
            m(ops.Union, lambda op: [x.PgUnion(op)]),
            m(ops.Intersect, lambda op: [x.PgIntersect(op)]),
            m(ops.Join, lambda op: [x.PgJoin(op)]),
            m(ops.IEJoin, lambda op: [x.PgIEJoin(op)]),
            m(ops.CollectionSink, lambda op: [x.PgCollectionSink(op)]),
        ]

    # ------------------------------------------------- vectorized execution
    # Pgres vectorizes inside the operator (the relation channel already
    # holds whole tables), so there is no batch channel to register.
    def batch_mappings(self):
        m = OperatorMapping
        return [
            m(ops.Filter, lambda op: [x.PgBatchFilter(op)]),
        ]
