"""Channel types of the Pgres (Postgres-analog) platform."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...core.channels import ChannelDescriptor

#: Rows living inside the relational engine.  Reusable (tables and
#: materialized intermediates can be scanned repeatedly) and disk-backed
#: (a relation spilling past RAM is slow, not fatal).
PG_RELATION = ChannelDescriptor("pgres.relation", "pgres", True,
                                in_memory=False)


@dataclass
class Relation:
    """Payload of a ``pgres.relation`` channel.

    Attributes:
        rows: Dict-shaped tuples.
        base_table: The catalog table these rows come from *unmodified*
            (enables index scans); ``None`` for derived intermediates.
    """

    rows: list[dict | Any]
    base_table: str | None = None

    def __len__(self) -> int:
        return len(self.rows)
