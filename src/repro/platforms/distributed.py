"""Partitioned datasets: the storage layer of the distributed engines.

Both the Spark analog (``sparklite``) and the Flink analog (``flinklite``)
process :class:`PartitionedDataset` values — lists of partitions distributed
over the virtual cluster.  Narrow operators transform partitions in place;
wide operators *shuffle*: they hash-partition records by key so each key
lives in exactly one partition (which tests verify, and which the engines
charge network time for).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator


class PartitionedDataset:
    """An immutable list of record partitions."""

    def __init__(self, partitions: list[list[Any]]) -> None:
        if not partitions:
            partitions = [[]]
        self._partitions = partitions

    @classmethod
    def from_records(cls, records: Iterable[Any],
                     num_partitions: int) -> "PartitionedDataset":
        """Distribute records round-robin over ``num_partitions``."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        parts: list[list[Any]] = [[] for __ in range(num_partitions)]
        for i, rec in enumerate(records):
            parts[i % num_partitions].append(rec)
        return cls(parts)

    @property
    def partitions(self) -> list[list[Any]]:
        """The raw partition lists."""
        return self._partitions

    @property
    def num_partitions(self) -> int:
        """Number of partitions (>= 1)."""
        return len(self._partitions)

    def records(self) -> Iterator[Any]:
        """Iterate all records, partition by partition."""
        for part in self._partitions:
            yield from part

    def to_list(self) -> list[Any]:
        """Materialize all records as one list."""
        return list(self.records())

    def count(self) -> int:
        """Total number of records across partitions."""
        return sum(len(p) for p in self._partitions)

    def map_partitions(
        self, fn: Callable[[list[Any]], list[Any]]
    ) -> "PartitionedDataset":
        """Apply a partition-wise transformation (narrow dependency)."""
        return PartitionedDataset([fn(p) for p in self._partitions])

    def shuffle_by_key(
        self, key_fn: Callable[[Any], Any],
        num_partitions: int | None = None,
    ) -> "PartitionedDataset":
        """Hash-partition records by key (wide dependency).

        After the shuffle, all records sharing a key are co-located in the
        same partition.
        """
        n = num_partitions or self.num_partitions
        parts: list[list[Any]] = [[] for __ in range(n)]
        for rec in self.records():
            parts[hash(key_fn(rec)) % n].append(rec)
        return PartitionedDataset(parts)

    def zip_partitions(
        self, other: "PartitionedDataset",
        fn: Callable[[list[Any], list[Any]], list[Any]],
    ) -> "PartitionedDataset":
        """Combine co-partitioned datasets partition-wise.

        Raises:
            ValueError: If the partition counts differ.
        """
        if self.num_partitions != other.num_partitions:
            raise ValueError("zip_partitions requires equal partition counts")
        return PartitionedDataset(
            [fn(a, b) for a, b in zip(self._partitions, other._partitions)])

    def __repr__(self) -> str:
        return (f"PartitionedDataset({self.num_partitions} partitions, "
                f"{self.count()} records)")
