"""SparkLite: the Spark-analog distributed batch platform."""

from .channels import SPARK_BROADCAST, SPARK_CACHED, SPARK_RDD
from .platform import SparkLitePlatform

__all__ = ["SPARK_BROADCAST", "SPARK_CACHED", "SPARK_RDD", "SparkLitePlatform"]
