"""SparkLite execution operators (Spark analog).

All operators are the generic dataflow implementations pinned to the
sparklite platform and its channels, plus Spark-specific extras: ``Cache``
(RDD -> cached RDD) and a driver-collecting sink.
"""

from __future__ import annotations

from ...core.channels import Channel
from .. import dataflow as df
from ..base import charge_operator
from ..distributed import PartitionedDataset
from ..pystreams.channels import PY_COLLECTION
from .channels import (SPARK_BATCH, SPARK_BROADCAST, SPARK_CACHED,
                       SPARK_RDD)


class _Spark(df.DataflowOperator):
    platform = "sparklite"
    DATASET = SPARK_RDD
    BROADCAST = SPARK_BROADCAST


class SparkTextFileSource(_Spark, df.DFTextFileSource):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSource`."""


class SparkCollectionSource(_Spark, df.DFCollectionSource):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFCollectionSource`."""


class SparkMap(_Spark, df.DFMap):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFMap`."""


class SparkFlatMap(_Spark, df.DFFlatMap):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFFlatMap`."""


class SparkFilter(_Spark, df.DFFilter):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFFilter`."""


class SparkMapPartitions(_Spark, df.DFMapPartitions):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFMapPartitions`."""


class SparkZipWithId(_Spark, df.DFZipWithId):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFZipWithId`."""


class SparkSample(_Spark, df.DFSample):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFSample`."""


class SparkDistinct(_Spark, df.DFDistinct):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFDistinct`."""


class SparkSort(_Spark, df.DFSort):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFSort`."""


class SparkGroupBy(_Spark, df.DFGroupBy):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFGroupBy`."""


class SparkReduceBy(_Spark, df.DFReduceBy):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFReduceBy`."""


class SparkGlobalReduce(_Spark, df.DFGlobalReduce):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFGlobalReduce`."""


class SparkCount(_Spark, df.DFCount):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFCount`."""


class SparkUnion(_Spark, df.DFUnion):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFUnion`."""


class SparkIntersect(_Spark, df.DFIntersect):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFIntersect`."""


class SparkJoin(_Spark, df.DFJoin):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFJoin`."""


class SparkCartesian(_Spark, df.DFCartesian):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFCartesian`."""


class SparkIEJoin(_Spark, df.DFIEJoin):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFIEJoin`."""


class SparkPageRank(_Spark, df.DFPageRank):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFPageRank`."""


class SparkTextFileSink(_Spark, df.DFTextFileSink):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSink`."""


class SparkCache(_Spark):
    """Materializes an RDD in cluster memory (``RDD.cache()``)."""

    op_kind = "cache"

    def output_descriptor(self):
        return SPARK_CACHED

    def _run(self, inputs, bvals, ctx):
        ch = inputs[0]
        # The cached copy is detached from the upstream RDD: partition
        # lists are mutable, and the cache outlives this stage.
        copied = PartitionedDataset([list(p) for p in ch.payload.partitions])
        out = Channel(SPARK_CACHED, copied, ch.sim_factor,
                      ch.bytes_per_record, copied.count())
        charge_operator(ctx, self, ch.sim_cardinality, out.sim_cardinality)
        return out


class SparkCollectionSink(_Spark):
    """Fetches results to the driver via the engine's own iterator action.

    Deliberately dearer per record than the collect *conversion* +
    PyStreams sink (``Rdd.toLocalIterator`` vs ``Rdd.collect`` in the
    paper's WordCount analysis) — the optimizer can discover the cheaper
    route.
    """

    op_kind = "collect_sink"

    def output_descriptor(self):
        return PY_COLLECTION

    def _run(self, inputs, bvals, ctx):
        ch = inputs[0]
        records = ch.payload.to_list()
        out = Channel(PY_COLLECTION, records, ch.sim_factor,
                      ch.bytes_per_record, len(records))
        charge_operator(ctx, self, ch.sim_cardinality, out.sim_cardinality)
        return out


class _SparkBatch(_Spark, df.BatchDataflowOperator):
    BATCH = SPARK_BATCH


class SparkBatchMap(_SparkBatch, df.DFBatchMap):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchMap`."""


class SparkBatchFlatMap(_SparkBatch, df.DFBatchFlatMap):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchFlatMap`."""


class SparkBatchFilter(_SparkBatch, df.DFBatchFilter):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchFilter`."""


class SparkBatchDistinct(_SparkBatch, df.DFBatchDistinct):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchDistinct`."""


class SparkBatchSort(_SparkBatch, df.DFBatchSort):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchSort`."""


class SparkBatchGroupBy(_SparkBatch, df.DFBatchGroupBy):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchGroupBy`."""


class SparkBatchReduceBy(_SparkBatch, df.DFBatchReduceBy):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchReduceBy`."""


class SparkBatchUnion(_SparkBatch, df.DFBatchUnion):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchUnion`."""


class SparkBatchJoin(_SparkBatch, df.DFBatchJoin):
    """SparkLite's binding of :class:`~repro.platforms.dataflow.DFBatchJoin`."""
