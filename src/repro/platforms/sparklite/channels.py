"""Channel types of the SparkLite (Spark-analog) platform."""

from ...core.channels import ChannelDescriptor

#: A lazy-ish distributed dataset.  NOT reusable: feeding several consumers
#: requires caching first (the paper's RDD channel).
SPARK_RDD = ChannelDescriptor("sparklite.rdd", "sparklite", False)

#: A cached (materialized, reusable) RDD.
SPARK_CACHED = ChannelDescriptor("sparklite.cached_rdd", "sparklite", True)

#: A broadcast variable replicated to every worker.
SPARK_BROADCAST = ChannelDescriptor("sparklite.broadcast", "sparklite", True)
