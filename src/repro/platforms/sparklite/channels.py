"""Channel types of the SparkLite (Spark-analog) platform."""

from ...core.channels import ChannelDescriptor

#: A lazy-ish distributed dataset.  NOT reusable: feeding several consumers
#: requires caching first (the paper's RDD channel).
SPARK_RDD = ChannelDescriptor("sparklite.rdd", "sparklite", False)

#: A cached (materialized, reusable) RDD.
SPARK_CACHED = ChannelDescriptor("sparklite.cached_rdd", "sparklite", True)

#: A broadcast variable replicated to every worker.
SPARK_BROADCAST = ChannelDescriptor("sparklite.broadcast", "sparklite", True)

#: A distributed dataset of columnar record batches (one per partition).
#: Registered (with zero-cost conversions to/from the RDD channel) only
#: when the context is built with ``vectorize`` on.  Like the RDD channel
#: it is NOT reusable without caching.
SPARK_BATCH = ChannelDescriptor("sparklite.batch", "sparklite", False)
