"""Platform registration for SparkLite: channels, conversions, mappings."""

from __future__ import annotations

import itertools

from ...core import operators as ops
from ...core.channels import Channel, Conversion, HDFS_FILE
from ...core.mappings import OperatorMapping
from ..base import Platform
from ..distributed import PartitionedDataset
from ..pystreams.channels import PY_COLLECTION
from . import ops as x
from .channels import (SPARK_BATCH, SPARK_BROADCAST, SPARK_CACHED,
                       SPARK_RDD)

_tmp_counter = itertools.count(1)


def _parallelize(channel: Channel, ctx) -> Channel:
    n = ctx.profile("sparklite").parallelism
    dataset = PartitionedDataset.from_records(channel.payload, n)
    return channel.with_payload(dataset, SPARK_RDD, dataset.count())


def _collect(channel: Channel, ctx) -> Channel:
    records = channel.payload.to_list()
    return channel.with_payload(records, PY_COLLECTION, len(records))


def _cache(channel: Channel, ctx) -> Channel:
    return channel.with_payload(channel.payload, SPARK_CACHED,
                                channel.payload.count())


def _uncache(channel: Channel, ctx) -> Channel:
    return channel.with_payload(channel.payload, SPARK_RDD,
                                channel.payload.count())


def _to_broadcast(channel: Channel, ctx) -> Channel:
    return channel.with_payload(list(channel.payload), SPARK_BROADCAST,
                                len(channel.payload))


def _batchify(channel: Channel, ctx) -> Channel:
    from ...core.batch import RecordBatch

    batches = [RecordBatch.from_records(p)
               for p in channel.payload.partitions]
    return channel.with_payload(batches, SPARK_BATCH,
                                sum(len(b) for b in batches))


def _debatchify(channel: Channel, ctx) -> Channel:
    dataset = PartitionedDataset([b.to_records() for b in channel.payload])
    return channel.with_payload(dataset, SPARK_RDD, dataset.count())


def _save_to_hdfs(channel: Channel, ctx) -> Channel:
    path = f"hdfs://tmp/sparklite-{next(_tmp_counter)}"
    records = channel.payload.to_list()
    ctx.vfs.write(path, records, channel.sim_factor, channel.bytes_per_record)
    return channel.with_payload(path, HDFS_FILE, len(records))


def _read_from_hdfs(channel: Channel, ctx) -> Channel:
    vf = ctx.vfs.read(channel.payload)
    n = ctx.profile("sparklite").parallelism
    dataset = PartitionedDataset.from_records(vf.records, n)
    return Channel(SPARK_RDD, dataset, vf.sim_factor, vf.bytes_per_record,
                   dataset.count())


class SparkLitePlatform(Platform):
    """The Spark analog: wide parallelism, heavy job overheads, caching."""

    name = "sparklite"

    def channels(self):
        return [SPARK_RDD, SPARK_CACHED, SPARK_BROADCAST]

    def conversions(self):
        net = 120.0
        return [
            Conversion(PY_COLLECTION, SPARK_RDD, _parallelize,
                       mb_per_s=net, overhead_s=0.1, name="spark-parallelize"),
            Conversion(SPARK_RDD, PY_COLLECTION, _collect,
                       mb_per_s=net, overhead_s=0.03, name="spark-collect"),
            Conversion(SPARK_CACHED, PY_COLLECTION, _collect,
                       mb_per_s=net, overhead_s=0.03, name="spark-collect-cached"),
            Conversion(SPARK_RDD, SPARK_CACHED, _cache,
                       mb_per_s=2000.0, overhead_s=0.05, name="spark-cache"),
            Conversion(SPARK_CACHED, SPARK_RDD, _uncache,
                       mb_per_s=1e9, overhead_s=0.0, name="spark-cached-as-rdd"),
            Conversion(PY_COLLECTION, SPARK_BROADCAST, _to_broadcast,
                       mb_per_s=net / 4, overhead_s=0.01, name="spark-broadcast"),
            Conversion(SPARK_RDD, HDFS_FILE, _save_to_hdfs,
                       mb_per_s=1000.0, overhead_s=0.2, name="spark-save-hdfs"),
            Conversion(SPARK_CACHED, HDFS_FILE, _save_to_hdfs,
                       mb_per_s=1000.0, overhead_s=0.2,
                       name="spark-save-hdfs-cached"),
            Conversion(HDFS_FILE, SPARK_RDD, _read_from_hdfs,
                       mb_per_s=1000.0, overhead_s=0.2, name="spark-read-hdfs"),
        ]

    def mappings(self):
        m = OperatorMapping
        return [
            m(ops.TextFileSource, lambda op: [x.SparkTextFileSource(op)]),
            m(ops.CollectionSource, lambda op: [x.SparkCollectionSource(op)]),
            m(ops.Map, lambda op: [x.SparkMap(op)]),
            m(ops.FlatMap, lambda op: [x.SparkFlatMap(op)]),
            m(ops.Filter, lambda op: [x.SparkFilter(op)]),
            m(ops.MapPartitions, lambda op: [x.SparkMapPartitions(op)]),
            m(ops.ZipWithId, lambda op: [x.SparkZipWithId(op)]),
            m(ops.Sample, lambda op: [x.SparkSample(op)]),
            m(ops.Distinct, lambda op: [x.SparkDistinct(op)]),
            m(ops.Sort, lambda op: [x.SparkSort(op)]),
            m(ops.GroupBy, lambda op: [x.SparkGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.SparkReduceBy(op)]),
            m(ops.GlobalReduce, lambda op: [x.SparkGlobalReduce(op)]),
            m(ops.Count, lambda op: [x.SparkCount(op)]),
            m(ops.Cache, lambda op: [x.SparkCache(op)]),
            m(ops.Union, lambda op: [x.SparkUnion(op)]),
            m(ops.Intersect, lambda op: [x.SparkIntersect(op)]),
            m(ops.Join, lambda op: [x.SparkJoin(op)]),
            m(ops.CartesianProduct, lambda op: [x.SparkCartesian(op)]),
            m(ops.IEJoin, lambda op: [x.SparkIEJoin(op)]),
            m(ops.PageRank, lambda op: [x.SparkPageRank(op)]),
            m(ops.CollectionSink, lambda op: [x.SparkCollectionSink(op)]),
            m(ops.TextFileSink, lambda op: [x.SparkTextFileSink(op)]),
        ]

    # ------------------------------------------------- vectorized execution
    def batch_channels(self):
        return [SPARK_BATCH]

    def batch_conversions(self):
        # Pure representation changes within each partition: free, so plan
        # costs are identical with vectorization on or off.
        free = float("inf")
        return [
            Conversion(SPARK_RDD, SPARK_BATCH, _batchify,
                       mb_per_s=free, overhead_s=0.0, name="spark-batchify"),
            Conversion(SPARK_BATCH, SPARK_RDD, _debatchify,
                       mb_per_s=free, overhead_s=0.0, name="spark-debatchify"),
        ]

    def batch_mappings(self):
        m = OperatorMapping
        return [
            m(ops.Map, lambda op: [x.SparkBatchMap(op)]),
            m(ops.FlatMap, lambda op: [x.SparkBatchFlatMap(op)]),
            m(ops.Filter, lambda op: [x.SparkBatchFilter(op)]),
            m(ops.Distinct, lambda op: [x.SparkBatchDistinct(op)]),
            m(ops.Sort, lambda op: [x.SparkBatchSort(op)]),
            m(ops.GroupBy, lambda op: [x.SparkBatchGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.SparkBatchReduceBy(op)]),
            m(ops.Union, lambda op: [x.SparkBatchUnion(op)]),
            m(ops.Join, lambda op: [x.SparkBatchJoin(op)]),
        ]
