"""GraphChi: the out-of-core single-machine graph platform.

Slots between JGraph and Giraph in the paper's platform spectrum: one
machine like JGraph (no cluster start-up) but disk-streaming like nothing
else — so it survives graphs that out-grow JGraph's heap, at the price of
sequential-disk speed per iteration.
"""

from __future__ import annotations

from ...core import operators as ops
from ...core.channels import Channel
from ...core.mappings import OperatorMapping
from ..base import ExecutionOperator, Platform, charge_operator
from ..pystreams.channels import PY_COLLECTION
from .engine import GraphChiEngine


class GraphChiPageRank(ExecutionOperator):
    """PageRank by parallel-sliding-windows shard streaming."""

    platform = "graphchi"
    op_kind = "pagerank"

    def work(self) -> float:
        # Each iteration streams every edge once from disk; the profile's
        # tuple cost models the sequential-read path.
        return 1.0 * self.logical.iterations

    def overhead_seconds(self, profile) -> float:
        # Shard (re)load seeks, per iteration.
        return self.logical.iterations * profile.stage_overhead_s

    def input_descriptors(self):
        return [PY_COLLECTION]

    def output_descriptor(self):
        return PY_COLLECTION

    def execute(self, inputs, broadcasts, ctx):
        edges_channel = inputs[0]
        engine = GraphChiEngine(num_shards=4)
        ranks = sorted(engine.pagerank(edges_channel.payload,
                                       self.logical.iterations,
                                       self.logical.damping).items())
        out = Channel(PY_COLLECTION, ranks, edges_channel.sim_factor,
                      edges_channel.bytes_per_record, len(ranks))
        charge_operator(ctx, self, edges_channel.sim_cardinality,
                        out.sim_cardinality)
        extra = self.overhead_seconds(ctx.profile(self.platform))
        ctx.meter.charge(extra, f"{self.name}.shard-seeks",
                         category="overhead")
        # Streaming the graph from disk each iteration is the defining cost.
        profile = ctx.profile(self.platform)
        ctx.meter.charge(
            self.logical.iterations * profile.io_seconds(edges_channel.sim_mb),
            f"{self.name}.shard-streaming", category="io")
        return out

    def shuffled_mb(self, profile, cins, cout, bytes_in, bytes_out):
        # For the optimizer: the per-iteration disk streaming, expressed as
        # "moved MB" priced at the profile's shuffle rate (set to the
        # reciprocal of disk bandwidth).
        return self.logical.iterations * cins[0] * bytes_in / 1e6


class GraphChiPlatform(Platform):
    """The GraphChi analog: in-process like JGraph, disk-bound like no one."""

    name = "graphchi"

    def channels(self):
        return []  # consumes/produces driver collections, like JGraph

    def conversions(self):
        return []

    def mappings(self):
        return [OperatorMapping(ops.PageRank,
                                lambda op: [GraphChiPageRank(op)])]
