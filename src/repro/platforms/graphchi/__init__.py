"""GraphChi: the out-of-core single-machine graph platform."""

from .engine import GraphChiEngine, Shard, ShardedGraph
from .platform import GraphChiPageRank, GraphChiPlatform

__all__ = ["GraphChiEngine", "Shard", "ShardedGraph", "GraphChiPageRank",
           "GraphChiPlatform"]
