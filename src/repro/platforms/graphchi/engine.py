"""An out-of-core, single-machine graph engine (the GraphChi analog).

GraphChi processes graphs far larger than RAM on one machine by splitting
the vertex set into intervals and the edges into *shards* (one per
interval, holding the edges whose destination falls in it, sorted by
source).  Each iteration streams the shards from disk in a few sequential
passes — the "parallel sliding windows" idea — instead of holding the
adjacency in memory.

The reproduction implements real sharding: edges are partitioned by
destination interval, per-shard updates accumulate into the interval's
vertex block, and only one shard (plus the vertex values) is "resident" at
a time.  The simulated cost model charges sequential disk streaming per
iteration instead of RAM-speed traversal — slower per pass than JGraph,
but immune to JGraph's memory ceiling.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Hashable, Iterable


@dataclass
class Shard:
    """Edges whose destination falls into one vertex interval."""

    interval_start: int
    interval_end: int  # exclusive
    edges: list[tuple[int, int]]


class ShardedGraph:
    """A graph partitioned into destination-interval shards."""

    def __init__(self, edges: Iterable[tuple[Hashable, Hashable]],
                 num_shards: int = 4) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        edge_list = list(edges)
        vertices = sorted({v for e in edge_list for v in e})
        #: Dense ids keep interval arithmetic simple.
        self.id_of = {v: i for i, v in enumerate(vertices)}
        self.vertex_of = vertices
        self.num_vertices = len(vertices)
        self.num_edges = len(edge_list)
        per_shard = max(1, (self.num_vertices + num_shards - 1) // num_shards)
        self.boundaries = list(range(per_shard, self.num_vertices, per_shard))
        self.shards: list[Shard] = []
        starts = [0] + self.boundaries
        ends = self.boundaries + [self.num_vertices]
        buckets: list[list[tuple[int, int]]] = [[] for __ in starts]
        self.out_degree = [0] * self.num_vertices
        for src, dst in edge_list:
            s, d = self.id_of[src], self.id_of[dst]
            buckets[self._shard_of(d)].append((s, d))
            self.out_degree[s] += 1
        for (start, end), bucket in zip(zip(starts, ends), buckets):
            bucket.sort()  # by source: the sequential-streaming order
            self.shards.append(Shard(start, end, bucket))

    def _shard_of(self, dense_id: int) -> int:
        return bisect_right(self.boundaries, dense_id)

    @property
    def num_shards(self) -> int:
        return len(self.shards)


class GraphChiEngine:
    """Iterative vertex updates by streaming shards."""

    def __init__(self, num_shards: int = 4) -> None:
        self.num_shards = num_shards
        #: Number of shard loads performed (tests verify out-of-core-ness).
        self.shard_loads = 0

    def pagerank(self, edges: Iterable[tuple[Hashable, Hashable]],
                 iterations: int = 10,
                 damping: float = 0.85) -> dict[Hashable, float]:
        """PageRank with dangling-mass redistribution, one shard at a time."""
        graph = ShardedGraph(edges, self.num_shards)
        n = graph.num_vertices
        if n == 0:
            return {}
        rank = [1.0 / n] * n
        for __ in range(iterations):
            incoming = [0.0] * n
            dangling = sum(rank[v] for v in range(n)
                           if graph.out_degree[v] == 0)
            for shard in graph.shards:
                self.shard_loads += 1
                # Stream this shard's edges; only its interval is written.
                for src, dst in shard.edges:
                    incoming[dst] += rank[src] / graph.out_degree[src]
            base = (1.0 - damping) / n + damping * dangling / n
            rank = [base + damping * incoming[v] for v in range(n)]
        return {graph.vertex_of[v]: rank[v] for v in range(n)}
