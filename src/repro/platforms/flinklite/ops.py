"""FlinkLite execution operators (Flink analog).

Same generic dataflow implementations as SparkLite, pinned to the flinklite
platform: lighter dispatch overheads, slightly different per-record
constants, and no cache distinction (datasets are reusable here).
"""

from __future__ import annotations

from ...core.channels import Channel
from .. import dataflow as df
from ..base import charge_operator
from ..distributed import PartitionedDataset
from ..pystreams.channels import PY_COLLECTION
from .channels import FLINK_BATCH, FLINK_BROADCAST, FLINK_DATASET


class _Flink(df.DataflowOperator):
    platform = "flinklite"
    DATASET = FLINK_DATASET
    BROADCAST = FLINK_BROADCAST


class FlinkTextFileSource(_Flink, df.DFTextFileSource):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSource`."""


class FlinkCollectionSource(_Flink, df.DFCollectionSource):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFCollectionSource`."""


class FlinkMap(_Flink, df.DFMap):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFMap`."""


class FlinkFlatMap(_Flink, df.DFFlatMap):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFFlatMap`."""


class FlinkFilter(_Flink, df.DFFilter):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFFilter`."""


class FlinkMapPartitions(_Flink, df.DFMapPartitions):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFMapPartitions`."""


class FlinkZipWithId(_Flink, df.DFZipWithId):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFZipWithId`."""


class FlinkSample(_Flink, df.DFSample):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFSample`."""


class FlinkDistinct(_Flink, df.DFDistinct):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFDistinct`."""


class FlinkSort(_Flink, df.DFSort):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFSort`."""


class FlinkGroupBy(_Flink, df.DFGroupBy):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFGroupBy`."""


class FlinkReduceBy(_Flink, df.DFReduceBy):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFReduceBy`."""


class FlinkGlobalReduce(_Flink, df.DFGlobalReduce):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFGlobalReduce`."""


class FlinkCount(_Flink, df.DFCount):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFCount`."""


class FlinkUnion(_Flink, df.DFUnion):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFUnion`."""


class FlinkIntersect(_Flink, df.DFIntersect):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFIntersect`."""


class FlinkJoin(_Flink, df.DFJoin):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFJoin`."""


class FlinkCartesian(_Flink, df.DFCartesian):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFCartesian`."""


class FlinkIEJoin(_Flink, df.DFIEJoin):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFIEJoin`."""


class FlinkPageRank(_Flink, df.DFPageRank):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFPageRank`."""


class FlinkTextFileSink(_Flink, df.DFTextFileSink):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSink`."""


class FlinkCache(_Flink):
    """No-op: FlinkLite datasets are already reusable."""

    op_kind = "cache"

    def _run(self, inputs, bvals, ctx):
        # Detach rather than alias: the cached dataset must survive a
        # sibling branch mutating partition lists in place.
        ch = inputs[0]
        copied = PartitionedDataset([list(p) for p in ch.payload.partitions])
        return ch.with_payload(copied, actual_count=ch.actual_count)


class FlinkCollectionSink(_Flink):
    """Fetches results to the driver via the engine's own collect action."""

    op_kind = "collect_sink"

    def output_descriptor(self):
        return PY_COLLECTION

    def _run(self, inputs, bvals, ctx):
        ch = inputs[0]
        records = ch.payload.to_list()
        out = Channel(PY_COLLECTION, records, ch.sim_factor,
                      ch.bytes_per_record, len(records))
        charge_operator(ctx, self, ch.sim_cardinality, out.sim_cardinality)
        return out


class _FlinkBatch(_Flink, df.BatchDataflowOperator):
    BATCH = FLINK_BATCH


class FlinkBatchMap(_FlinkBatch, df.DFBatchMap):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchMap`."""


class FlinkBatchFlatMap(_FlinkBatch, df.DFBatchFlatMap):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchFlatMap`."""


class FlinkBatchFilter(_FlinkBatch, df.DFBatchFilter):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchFilter`."""


class FlinkBatchDistinct(_FlinkBatch, df.DFBatchDistinct):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchDistinct`."""


class FlinkBatchSort(_FlinkBatch, df.DFBatchSort):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchSort`."""


class FlinkBatchGroupBy(_FlinkBatch, df.DFBatchGroupBy):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchGroupBy`."""


class FlinkBatchReduceBy(_FlinkBatch, df.DFBatchReduceBy):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchReduceBy`."""


class FlinkBatchUnion(_FlinkBatch, df.DFBatchUnion):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchUnion`."""


class FlinkBatchJoin(_FlinkBatch, df.DFBatchJoin):
    """FlinkLite's binding of :class:`~repro.platforms.dataflow.DFBatchJoin`."""
