"""FlinkLite: the Flink-analog pipelined dataflow platform."""

from .channels import FLINK_BROADCAST, FLINK_DATASET
from .platform import FlinkLitePlatform

__all__ = ["FLINK_BROADCAST", "FLINK_DATASET", "FlinkLitePlatform"]
