"""Channel types of the FlinkLite (Flink-analog) platform."""

from ...core.channels import ChannelDescriptor

#: A pipelined distributed dataset.  Modelled as reusable: FlinkLite
#: materializes eagerly between our execution stages.
FLINK_DATASET = ChannelDescriptor("flinklite.dataset", "flinklite", True)

#: A broadcast set replicated to every task manager.
FLINK_BROADCAST = ChannelDescriptor("flinklite.broadcast", "flinklite", True)

#: A pipelined dataset of columnar record batches (one per partition).
#: Registered (with zero-cost conversions to/from the dataset channel)
#: only when the context is built with ``vectorize`` on.  Reusable, like
#: the dataset channel it mirrors.
FLINK_BATCH = ChannelDescriptor("flinklite.batch", "flinklite", True)
