"""Platform registration for FlinkLite: channels, conversions, mappings."""

from __future__ import annotations

import itertools

from ...core import operators as ops
from ...core.channels import Channel, Conversion, HDFS_FILE
from ...core.mappings import OperatorMapping
from ..base import Platform
from ..distributed import PartitionedDataset
from ..pystreams.channels import PY_COLLECTION
from . import ops as x
from .channels import FLINK_BATCH, FLINK_BROADCAST, FLINK_DATASET

_tmp_counter = itertools.count(1)


def _to_dataset(channel: Channel, ctx) -> Channel:
    n = ctx.profile("flinklite").parallelism
    dataset = PartitionedDataset.from_records(channel.payload, n)
    return channel.with_payload(dataset, FLINK_DATASET, dataset.count())


def _to_collection(channel: Channel, ctx) -> Channel:
    records = channel.payload.to_list()
    return channel.with_payload(records, PY_COLLECTION, len(records))


def _to_broadcast(channel: Channel, ctx) -> Channel:
    return channel.with_payload(list(channel.payload), FLINK_BROADCAST,
                                len(channel.payload))


def _batchify(channel: Channel, ctx) -> Channel:
    from ...core.batch import RecordBatch

    batches = [RecordBatch.from_records(p)
               for p in channel.payload.partitions]
    return channel.with_payload(batches, FLINK_BATCH,
                                sum(len(b) for b in batches))


def _debatchify(channel: Channel, ctx) -> Channel:
    dataset = PartitionedDataset([b.to_records() for b in channel.payload])
    return channel.with_payload(dataset, FLINK_DATASET, dataset.count())


def _save_to_hdfs(channel: Channel, ctx) -> Channel:
    path = f"hdfs://tmp/flinklite-{next(_tmp_counter)}"
    records = channel.payload.to_list()
    ctx.vfs.write(path, records, channel.sim_factor, channel.bytes_per_record)
    return channel.with_payload(path, HDFS_FILE, len(records))


def _read_from_hdfs(channel: Channel, ctx) -> Channel:
    vf = ctx.vfs.read(channel.payload)
    n = ctx.profile("flinklite").parallelism
    dataset = PartitionedDataset.from_records(vf.records, n)
    return Channel(FLINK_DATASET, dataset, vf.sim_factor, vf.bytes_per_record,
                   dataset.count())


class FlinkLitePlatform(Platform):
    """The Flink analog: pipelined dataflow with lighter dispatch."""

    name = "flinklite"

    def channels(self):
        return [FLINK_DATASET, FLINK_BROADCAST]

    def conversions(self):
        net = 120.0
        return [
            Conversion(PY_COLLECTION, FLINK_DATASET, _to_dataset,
                       mb_per_s=net, overhead_s=0.08, name="flink-from-collection"),
            Conversion(FLINK_DATASET, PY_COLLECTION, _to_collection,
                       mb_per_s=net, overhead_s=0.025, name="flink-collect"),
            Conversion(PY_COLLECTION, FLINK_BROADCAST, _to_broadcast,
                       mb_per_s=net / 4, overhead_s=0.01, name="flink-broadcast"),
            Conversion(FLINK_DATASET, HDFS_FILE, _save_to_hdfs,
                       mb_per_s=1000.0, overhead_s=0.15, name="flink-save-hdfs"),
            Conversion(HDFS_FILE, FLINK_DATASET, _read_from_hdfs,
                       mb_per_s=1000.0, overhead_s=0.15, name="flink-read-hdfs"),
        ]

    def mappings(self):
        m = OperatorMapping
        return [
            m(ops.TextFileSource, lambda op: [x.FlinkTextFileSource(op)]),
            m(ops.CollectionSource, lambda op: [x.FlinkCollectionSource(op)]),
            m(ops.Map, lambda op: [x.FlinkMap(op)]),
            m(ops.FlatMap, lambda op: [x.FlinkFlatMap(op)]),
            m(ops.Filter, lambda op: [x.FlinkFilter(op)]),
            m(ops.MapPartitions, lambda op: [x.FlinkMapPartitions(op)]),
            m(ops.ZipWithId, lambda op: [x.FlinkZipWithId(op)]),
            m(ops.Sample, lambda op: [x.FlinkSample(op)]),
            m(ops.Distinct, lambda op: [x.FlinkDistinct(op)]),
            m(ops.Sort, lambda op: [x.FlinkSort(op)]),
            m(ops.GroupBy, lambda op: [x.FlinkGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.FlinkReduceBy(op)]),
            m(ops.GlobalReduce, lambda op: [x.FlinkGlobalReduce(op)]),
            m(ops.Count, lambda op: [x.FlinkCount(op)]),
            m(ops.Cache, lambda op: [x.FlinkCache(op)]),
            m(ops.Union, lambda op: [x.FlinkUnion(op)]),
            m(ops.Intersect, lambda op: [x.FlinkIntersect(op)]),
            m(ops.Join, lambda op: [x.FlinkJoin(op)]),
            m(ops.CartesianProduct, lambda op: [x.FlinkCartesian(op)]),
            m(ops.IEJoin, lambda op: [x.FlinkIEJoin(op)]),
            m(ops.PageRank, lambda op: [x.FlinkPageRank(op)]),
            m(ops.CollectionSink, lambda op: [x.FlinkCollectionSink(op)]),
            m(ops.TextFileSink, lambda op: [x.FlinkTextFileSink(op)]),
        ]

    # ------------------------------------------------- vectorized execution
    def batch_channels(self):
        return [FLINK_BATCH]

    def batch_conversions(self):
        # Pure representation changes within each partition: free, so plan
        # costs are identical with vectorization on or off.
        free = float("inf")
        return [
            Conversion(FLINK_DATASET, FLINK_BATCH, _batchify,
                       mb_per_s=free, overhead_s=0.0, name="flink-batchify"),
            Conversion(FLINK_BATCH, FLINK_DATASET, _debatchify,
                       mb_per_s=free, overhead_s=0.0, name="flink-debatchify"),
        ]

    def batch_mappings(self):
        m = OperatorMapping
        return [
            m(ops.Map, lambda op: [x.FlinkBatchMap(op)]),
            m(ops.FlatMap, lambda op: [x.FlinkBatchFlatMap(op)]),
            m(ops.Filter, lambda op: [x.FlinkBatchFilter(op)]),
            m(ops.Distinct, lambda op: [x.FlinkBatchDistinct(op)]),
            m(ops.Sort, lambda op: [x.FlinkBatchSort(op)]),
            m(ops.GroupBy, lambda op: [x.FlinkBatchGroupBy(op)]),
            m(ops.ReduceBy, lambda op: [x.FlinkBatchReduceBy(op)]),
            m(ops.Union, lambda op: [x.FlinkBatchUnion(op)]),
            m(ops.Join, lambda op: [x.FlinkBatchJoin(op)]),
        ]
