"""GraphLite: the Giraph-analog Pregel platform."""

from .engine import PregelEngine, SuperstepStats
from .platform import GRAPHLITE_DATASET, GraphLitePlatform

__all__ = ["PregelEngine", "SuperstepStats", "GRAPHLITE_DATASET",
           "GraphLitePlatform"]
