"""GraphLite: the Giraph-analog vertex-centric platform.

Heavy start-up, per-superstep synchronisation overhead, wide parallelism.
Only graph-adjacent operators are supported (sources feed the input format,
Map/Filter/Distinct model input-format parsing, PageRank runs as a real
Pregel program).
"""

from __future__ import annotations

from ...core import operators as ops
from ...core.channels import Channel, ChannelDescriptor, Conversion, HDFS_FILE
from ...core.mappings import OperatorMapping
from .. import dataflow as df
from ..base import Platform
from ..distributed import PartitionedDataset
from ..pystreams.channels import PY_COLLECTION
from .engine import PregelEngine

#: The in-memory distributed dataset of the graph platform.
GRAPHLITE_DATASET = ChannelDescriptor("graphlite.dataset", "graphlite", True)


class _GL(df.DataflowOperator):
    platform = "graphlite"
    DATASET = GRAPHLITE_DATASET
    BROADCAST = GRAPHLITE_DATASET  # no dedicated broadcast channel


class GLTextFileSource(_GL, df.DFTextFileSource):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSource`."""


class GLCollectionSource(_GL, df.DFCollectionSource):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFCollectionSource`."""


class GLMap(_GL, df.DFMap):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFMap`."""


class GLFilter(_GL, df.DFFilter):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFFilter`."""


class GLDistinct(_GL, df.DFDistinct):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFDistinct`."""


class GLIntersect(_GL, df.DFIntersect):
    """Edge-set intersection as a vertex-centric co-grouping."""


class GLTextFileSink(_GL, df.DFTextFileSink):
    """GraphLite's binding of :class:`~repro.platforms.dataflow.DFTextFileSink`."""


class GLCollectionSink(_GL):
    """Fetches results to the driver (Giraph output format + fetch)."""

    op_kind = "collect_sink"

    def output_descriptor(self):
        return PY_COLLECTION

    def _run(self, inputs, bvals, ctx):
        from ..base import charge_operator
        from ...core.channels import Channel

        ch = inputs[0]
        records = ch.payload.to_list()
        out = Channel(PY_COLLECTION, records, ch.sim_factor,
                      ch.bytes_per_record, len(records))
        charge_operator(ctx, self, ch.sim_cardinality, out.sim_cardinality)
        return out


class GLPageRank(_GL):
    """PageRank as supersteps on the Pregel engine."""

    op_kind = "pagerank"

    def work(self) -> float:
        # Vertex-centric message passing is far cheaper per edge-iteration
        # than the generic join/aggregate emulation (the logical default).
        return 0.3 * self.logical.iterations

    def overhead_seconds(self, profile) -> float:
        # One synchronisation barrier per superstep.
        return self.logical.iterations * profile.stage_overhead_s

    def _run(self, inputs, bvals, ctx):
        engine = PregelEngine(num_partitions=self._parallelism(ctx))
        ranks = engine.pagerank(inputs[0].payload.records(),
                                self.logical.iterations, self.logical.damping)
        out = PartitionedDataset.from_records(sorted(ranks.items()),
                                              self._parallelism(ctx))
        return self._emit(inputs[0], out, ctx,
                          sum(ch.sim_cardinality for ch in inputs))


def _to_dataset(channel: Channel, ctx) -> Channel:
    n = ctx.profile("graphlite").parallelism
    dataset = PartitionedDataset.from_records(channel.payload, n)
    return channel.with_payload(dataset, GRAPHLITE_DATASET, dataset.count())


def _to_collection(channel: Channel, ctx) -> Channel:
    records = channel.payload.to_list()
    return channel.with_payload(records, PY_COLLECTION, len(records))


def _read_from_hdfs(channel: Channel, ctx) -> Channel:
    vf = ctx.vfs.read(channel.payload)
    n = ctx.profile("graphlite").parallelism
    dataset = PartitionedDataset.from_records(vf.records, n)
    return Channel(GRAPHLITE_DATASET, dataset, vf.sim_factor,
                   vf.bytes_per_record, dataset.count())


class GraphLitePlatform(Platform):
    """The Giraph analog."""

    name = "graphlite"

    def channels(self):
        return [GRAPHLITE_DATASET]

    def conversions(self):
        net = 120.0
        return [
            Conversion(PY_COLLECTION, GRAPHLITE_DATASET, _to_dataset,
                       mb_per_s=net, overhead_s=0.3, name="graphlite-load"),
            Conversion(GRAPHLITE_DATASET, PY_COLLECTION, _to_collection,
                       mb_per_s=net, overhead_s=0.3, name="graphlite-collect"),
            Conversion(HDFS_FILE, GRAPHLITE_DATASET, _read_from_hdfs,
                       mb_per_s=1000.0, overhead_s=0.3,
                       name="graphlite-read-hdfs"),
        ]

    def mappings(self):
        m = OperatorMapping
        return [
            m(ops.TextFileSource, lambda op: [GLTextFileSource(op)]),
            m(ops.CollectionSource, lambda op: [GLCollectionSource(op)]),
            m(ops.Map, lambda op: [GLMap(op)]),
            m(ops.Filter, lambda op: [GLFilter(op)]),
            m(ops.Distinct, lambda op: [GLDistinct(op)]),
            m(ops.Intersect, lambda op: [GLIntersect(op)]),
            m(ops.PageRank, lambda op: [GLPageRank(op)]),
            m(ops.CollectionSink, lambda op: [GLCollectionSink(op)]),
            m(ops.TextFileSink, lambda op: [GLTextFileSink(op)]),
        ]
