"""A Pregel-style vertex-centric engine (the Giraph analog).

Vertices are hash-partitioned; computation proceeds in synchronized
*supersteps*: every active vertex consumes its inbox, updates its state and
posts messages that are delivered at the next superstep.  A global
aggregator (here: dangling PageRank mass) is combined between supersteps,
as in Pregel/Giraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable


@dataclass
class SuperstepStats:
    """Bookkeeping for one superstep (inspected by tests and the monitor)."""

    superstep: int
    messages_sent: int
    cross_partition_messages: int


class PregelEngine:
    """Runs vertex programs over a partitioned graph."""

    def __init__(self, num_partitions: int = 4) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.stats: list[SuperstepStats] = []

    def _partition(self, vertex: Hashable) -> int:
        return hash(vertex) % self.num_partitions

    def pagerank(
        self,
        edges: Iterable[tuple[Hashable, Hashable]],
        iterations: int = 10,
        damping: float = 0.85,
    ) -> dict[Hashable, float]:
        """PageRank as a vertex program with a dangling-mass aggregator."""
        adjacency: dict[Hashable, list[Hashable]] = {}
        vertices: set[Hashable] = set()
        for src, dst in edges:
            adjacency.setdefault(src, []).append(dst)
            vertices.add(src)
            vertices.add(dst)
        n = len(vertices)
        self.stats = []
        if n == 0:
            return {}

        # Partitioned state: partition id -> vertex -> rank.
        parts: list[dict[Hashable, float]] = [
            {} for __ in range(self.num_partitions)]
        for v in vertices:
            parts[self._partition(v)][v] = 1.0 / n

        for step in range(iterations):
            # Superstep phase 1: every vertex posts rank/out_degree to its
            # neighbours' inboxes; dangling vertices feed the aggregator.
            inboxes: list[dict[Hashable, float]] = [
                {} for __ in range(self.num_partitions)]
            dangling_mass = 0.0
            sent = cross = 0
            for pid, part in enumerate(parts):
                for v, rank in part.items():
                    outs = adjacency.get(v)
                    if not outs:
                        dangling_mass += rank
                        continue
                    share = rank / len(outs)
                    for dst in outs:
                        target = self._partition(dst)
                        inbox = inboxes[target]
                        inbox[dst] = inbox.get(dst, 0.0) + share
                        sent += 1
                        if target != pid:
                            cross += 1
            # Superstep phase 2 (barrier passed): consume inboxes.
            base = (1.0 - damping) / n + damping * dangling_mass / n
            for pid, part in enumerate(parts):
                inbox = inboxes[pid]
                for v in part:
                    part[v] = base + damping * inbox.get(v, 0.0)
            self.stats.append(SuperstepStats(step, sent, cross))

        ranks: dict[Hashable, float] = {}
        for part in parts:
            ranks.update(part)
        return ranks
