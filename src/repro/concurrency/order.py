"""The lock registry: the machine-readable lock hierarchy of the runtime.

``DESIGN.md`` used to carry the lock order as prose only; this module is
now the **single source of truth**.  Every lock the runtime shares across
threads is declared here as a :class:`LockSpec` — its registry name, its
rank in the acquisition order (a lock may only be acquired while holding
locks of strictly *lower* rank), the attribute or local that owns it, and
the shared attributes it guards.

Three consumers keep the declaration honest:

* :mod:`repro.concurrency.runtime` — ``OrderedLock``/``OrderedRLock``
  resolve their rank here and assert the order per thread under the
  debug flag (on in tests);
* :mod:`repro.analysis.locks` — the static checker resolves lock
  attributes in the source tree to these specs and reports rank
  inversions, undeclared locks, blocking calls under a lock and
  unguarded writes to the declared ``guards`` attributes;
* ``DESIGN.md`` — the prose now *describes* the hierarchy and points
  here for the definition.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LockSpec:
    """One declared lock of the runtime.

    Attributes:
        name: Registry name, the key ``OrderedLock`` is constructed with.
        rank: Position in the acquisition order.  A thread may acquire a
            lock only while every lock it already holds has a strictly
            lower rank (re-entrant acquisition of the same ``rlock`` is
            exempt).  Ranks are spaced by 10 so future locks can slot in
            between without renumbering.
        kind: ``"lock"`` or ``"rlock"`` — whether re-entrant acquisition
            is legal.
        owners: Attribute paths (``module:Class.attr`` — or
            ``module:NAME`` for a module-level binding) where instances
            of this lock live.  Locals created inside a function (the
            executor's per-job commit lock, the scheduler's dispatch
            lock) are resolved by the static checker from their
            ``OrderedLock("<name>", ...)`` construction site instead.
        guards: Shared attributes (``Class.attr``, in the owner module;
            dotted tails allowed) that must only be *written* while this
            lock is held.  The static checker enforces it; methods named
            ``*_locked`` and ``__init__`` are exempt by convention
            (caller holds the lock / pre-publication construction).
        doc: One-line description, mirrored into DESIGN.md.
    """

    name: str
    rank: int
    kind: str
    owners: tuple[str, ...]
    guards: tuple[str, ...] = ()
    doc: str = ""

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"


#: The lock hierarchy, outermost (lowest rank) first.
LOCK_ORDER: tuple[LockSpec, ...] = (
    LockSpec(
        name="server.jobs",
        rank=10,
        kind="lock",
        owners=("repro.server.server:JobServer._lock",),
        guards=("JobServer._jobs", "JobServer._queued",
                "JobServer._running", "JobServer._accepting",
                "JobServer._pending", "JobServer._tenant_running",
                "JobServer._run_ewma", "JobServer._cancelled"),
        doc="job table, pending queue, per-tenant running counts, the "
            "service-time EWMA and the accepting/cancelled flags; never "
            "held while a job executes",
    ),
    LockSpec(
        name="server.pool",
        rank=12,
        kind="lock",
        owners=("repro.server.shards:ShardPool._lock",),
        guards=("ShardPool._slots", "ShardPool._published",
                "ShardPool._last_metrics", "ProcessShard.inflight"),
        doc="shard-pool slot table, per-shard in-flight counts, the "
            "replayed cost-parameter publication and last-known shard "
            "metrics; held only for routing decisions and slot swaps, "
            "never while a shard executes a job",
    ),
    LockSpec(
        name="server.shard",
        rank=15,
        kind="lock",
        owners=("repro.server.shards:ProcessShard._lock",),
        guards=("ProcessShard._requests",),
        doc="one worker shard's IPC pipe: serializes request/response "
            "pairs on the connection (held across the child's execution "
            "of the request — the shard process is the critical section)",
    ),
    LockSpec(
        name="calibration.corpus",
        rank=18,
        kind="lock",
        owners=("repro.learn.calibration:CostCalibrator._lock",),
        guards=("CostCalibrator.params", "CostCalibrator._pending",
                "CostCalibrator._drift", "CostCalibrator._refits",
                "CostCalibrator._fitting"),
        doc="online-calibration corpus and refit bookkeeping: sample "
            "buckets, drift EWMA and the single-refit-in-flight flag; "
            "released while the genetic fit runs and while the merged "
            "parameters are published (the process-backend broadcast "
            "takes server.pool, rank 12)",
    ),
    LockSpec(
        name="context.publish",
        rank=20,
        kind="lock",
        owners=("repro.core.context:RheemContext._publish_lock",),
        guards=("RheemContext.cost_model.params",
                "RheemContext.cost_model.version"),
        doc="cost-parameter publication: atomic param swap, version bump "
            "and plan-cache flush",
    ),
    LockSpec(
        name="plan_cache",
        rank=30,
        kind="rlock",
        owners=("repro.core.plancache:ExecutionPlanCache._lock",),
        guards=("ExecutionPlanCache._entries", "ExecutionPlanCache.stats"),
        doc="execution-plan cache entries and statistics; never held "
            "while calling into the conversion graph",
    ),
    LockSpec(
        name="conversion_graph",
        rank=40,
        kind="rlock",
        owners=("repro.core.channels:ChannelConversionGraph._lock",),
        guards=("ChannelConversionGraph._descriptors",
                "ChannelConversionGraph._edges",
                "ChannelConversionGraph._path_cache",
                "ChannelConversionGraph._solved_rows",
                "ChannelConversionGraph._reachable",
                "ChannelConversionGraph._tree_cache",
                "ChannelConversionGraph.cache_stats",
                "ChannelConversionGraph.version"),
        doc="channel registry and conversion memo tables; never calls "
            "back into the plan cache",
    ),
    LockSpec(
        name="executor.job",
        rank=50,
        kind="lock",
        owners=("repro.core.executor:_StageRecorder._lock",),
        doc="per-job commit lock (one per Executor.execute call): shared "
            "channel environment, conversion cache, monitor and "
            "critical-path tracker; lane threads take it briefly to "
            "snapshot, the driver takes it to commit",
    ),
    LockSpec(
        name="intermediate_store",
        rank=55,
        kind="rlock",
        owners=("repro.core.resultstore:IntermediateResultStore._lock",),
        guards=("IntermediateResultStore._entries",
                "IntermediateResultStore.stats",
                "IntermediateResultStore.bytes_mb",
                "IntermediateResultStore._tick"),
        doc="cross-job intermediate-result store: entries, byte budget "
            "and statistics; taken under the executor's commit lock "
            "scope (publication) and the publish lock (flush), never "
            "while executing platform code",
    ),
    LockSpec(
        name="scheduler.dispatch",
        rank=60,
        kind="lock",
        owners=(),
        doc="stage-scheduler ready-set/lane bookkeeping (a local of "
            "StageScheduler._run_parallel); never held during compute "
            "or commit",
    ),
    LockSpec(
        name="tracer.spans",
        rank=70,
        kind="lock",
        owners=("repro.trace.spans:Tracer._lock",),
        guards=("Tracer.roots",),
        doc="span-tree mutation (span stacks are thread-local and "
            "unlocked)",
    ),
    LockSpec(
        name="metrics",
        rank=80,
        kind="lock",
        owners=("repro.trace.metrics:_METRICS_LOCK",),
        guards=("Counter.value",
                "Gauge.value",
                "Histogram.count", "Histogram.total", "Histogram.min",
                "Histogram.max", "Histogram.samples",
                "MetricsRegistry._counters", "MetricsRegistry._gauges",
                "MetricsRegistry._histograms"),
        doc="innermost lock: instrument mutation and the registry's "
            "instrument tables; no code path may acquire another lock "
            "while holding it",
    ),
)

_BY_NAME: dict[str, LockSpec] = {spec.name: spec for spec in LOCK_ORDER}

#: Well-known parameter names the static checker resolves to a lock even
#: without seeing the construction site (locks threaded through calls).
PARAM_LOCKS: dict[str, str] = {
    "job_lock": "executor.job",
}

#: Attribute names whose receiver the static checker may resolve to a
#: class scanned elsewhere in the tree (cross-class call edges: e.g. the
#: publish path calling ``self.plan_cache.flush()``).
ATTR_TYPES: dict[str, str] = {
    "calibrator": "repro.learn.calibration:CostCalibrator",
    "plan_cache": "repro.core.plancache:ExecutionPlanCache",
    "result_store": "repro.core.resultstore:IntermediateResultStore",
    "graph": "repro.core.channels:ChannelConversionGraph",
    "metrics": "repro.trace.metrics:MetricsRegistry",
    "tracer": "repro.trace.spans:Tracer",
}

#: Modules allowed to construct raw ``threading.Lock``/``RLock`` objects
#: (the wrapper implementation itself).
RAW_LOCK_OK: frozenset[str] = frozenset({"repro.concurrency.runtime"})

#: Method names that may block indefinitely; holding any declared lock
#: across such a call risks deadlock (RC003).  ``Queue.get`` is matched
#: by receiver-name heuristics in the checker to avoid flagging
#: ``dict.get``.
BLOCKING_ATTRS: frozenset[str] = frozenset(
    {"result", "submit", "shutdown", "wait", "sleep"})


class UnknownLockError(KeyError):
    """Raised when a lock name is not declared in :data:`LOCK_ORDER`."""


def lock_spec(name: str) -> LockSpec:
    """The :class:`LockSpec` registered under ``name``.

    Raises:
        UnknownLockError: If the name is not in the registry.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise UnknownLockError(
            f"lock {name!r} is not declared in repro.concurrency.order."
            f"LOCK_ORDER (known: {known})") from None


def lock_rank(name: str) -> int:
    """The rank of the lock registered under ``name``."""
    return lock_spec(name).rank


def validate_order(order: tuple[LockSpec, ...] = LOCK_ORDER) -> None:
    """Sanity-check a registry: unique names/ranks, ascending ranks.

    Raises:
        ValueError: On duplicate names, duplicate ranks or an unsorted
            declaration (the declaration order *is* the hierarchy and
            must read top-down).
    """
    names = [spec.name for spec in order]
    ranks = [spec.rank for spec in order]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate lock names in registry: {names}")
    if len(set(ranks)) != len(ranks):
        raise ValueError(f"duplicate lock ranks in registry: {ranks}")
    if ranks != sorted(ranks):
        raise ValueError("LOCK_ORDER must be declared outermost-first "
                         f"(ranks {ranks} are not ascending)")
    for spec in order:
        if spec.kind not in ("lock", "rlock"):
            raise ValueError(f"{spec.name}: kind must be 'lock' or 'rlock', "
                             f"got {spec.kind!r}")


validate_order()


def render_order() -> str:
    """A human-readable table of the hierarchy (used by docs and tests)."""
    lines = ["rank  kind   name                 owner"]
    for spec in LOCK_ORDER:
        owner = spec.owners[0] if spec.owners else "(function local)"
        lines.append(f"{spec.rank:>4}  {spec.kind:<5}  {spec.name:<19}  "
                     f"{owner}")
    return "\n".join(lines)


__all__ = [
    "ATTR_TYPES", "BLOCKING_ATTRS", "LOCK_ORDER", "LockSpec", "PARAM_LOCKS",
    "RAW_LOCK_OK", "UnknownLockError", "lock_rank", "lock_spec",
    "render_order", "validate_order",
]
