"""Concurrency correctness tooling: the lock registry and ordered locks.

* :mod:`repro.concurrency.order` — the machine-readable lock hierarchy
  (the single source of truth DESIGN.md points at);
* :mod:`repro.concurrency.runtime` — ``OrderedLock``/``OrderedRLock``
  wrappers with per-thread rank assertions and wait/hold histograms.

The static companion — the AST checker behind ``python -m repro lint
--concurrency`` — lives in :mod:`repro.analysis.locks` so it can share
the analysis subsystem's diagnostics machinery.
"""

from .order import (
    LOCK_ORDER,
    LockSpec,
    UnknownLockError,
    lock_rank,
    lock_spec,
    render_order,
    validate_order,
)
from .runtime import (
    LockOrderViolation,
    OrderedLock,
    OrderedRLock,
    debug_enabled,
    held_locks,
    set_debug,
)

__all__ = [
    "LOCK_ORDER",
    "LockOrderViolation",
    "LockSpec",
    "OrderedLock",
    "OrderedRLock",
    "UnknownLockError",
    "debug_enabled",
    "held_locks",
    "lock_rank",
    "lock_spec",
    "render_order",
    "set_debug",
    "validate_order",
]
