"""Rank-asserting, contention-instrumented lock wrappers.

:class:`OrderedLock` and :class:`OrderedRLock` are drop-in replacements
for ``threading.Lock``/``RLock`` that resolve their position in the
documented hierarchy from :mod:`repro.concurrency.order` by name:

* **rank assertions** (under the debug flag — on in the test suite, off
  on production hot paths): each thread tracks the stack of ordered
  locks it holds; acquiring a lock whose rank is not strictly greater
  than every held rank raises :class:`LockOrderViolation` *before*
  touching the underlying lock, turning a potential deadlock into an
  immediate, stack-traced failure;
* **contention observability** (whenever a metrics registry is given):
  wait time (request to acquisition) and hold time (acquisition to
  release) feed ``lock.wait_s.<name>`` / ``lock.hold_s.<name>``
  histograms, surfaced by ``/metrics`` and ``--profile``.

The debug flag defaults to the ``REPRO_LOCK_CHECK`` environment variable
and is forced on by ``tests/conftest.py``.  With the flag off and no
metrics registry attached, ``acquire``/``release`` delegate straight to
the underlying primitive.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Any

from .order import lock_spec

if TYPE_CHECKING:  # pragma: no cover — runtime import would be circular
    from ..trace.metrics import Histogram, MetricsRegistry


class LockOrderViolation(RuntimeError):
    """A thread tried to acquire a lock out of hierarchy order."""


_DEBUG = os.environ.get("REPRO_LOCK_CHECK", "") not in ("", "0")

_HELD = threading.local()


def _reset_held_after_fork() -> None:
    """Clear the forking thread's held-lock stack in the child.

    A forked child (the job server's process shards) inherits the
    spawning thread's thread-local state; any ordered locks that thread
    held at fork time would otherwise look "held" forever in the child
    and poison its rank assertions.
    """
    global _HELD
    _HELD = threading.local()


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reset_held_after_fork)


def set_debug(enabled: bool) -> None:
    """Turn per-thread rank assertions on or off (process-wide)."""
    global _DEBUG
    _DEBUG = bool(enabled)


def debug_enabled() -> bool:
    """Whether rank assertions are active."""
    return _DEBUG


def _stack() -> list[tuple["OrderedLock", float]]:
    """The calling thread's stack of held ordered locks."""
    try:
        return _HELD.stack  # type: ignore[no-any-return]
    except AttributeError:
        stack: list[tuple[OrderedLock, float]] = []
        _HELD.stack = stack
        return stack


def held_locks() -> list[str]:
    """Names of the ordered locks the calling thread currently holds."""
    return [lock.name for lock, _ in _stack()]


class OrderedLock:
    """A ``threading.Lock`` bound to a rank in the documented hierarchy.

    Args:
        name: Registry name (must be declared in
            :data:`repro.concurrency.order.LOCK_ORDER`).
        metrics: When given, wait/hold times are recorded into
            ``lock.wait_s.<name>`` / ``lock.hold_s.<name>`` histograms.
            The innermost metrics lock itself runs uninstrumented, so
            recording never recurses.
    """

    _factory: Any = staticmethod(threading.Lock)
    reentrant = False

    __slots__ = ("_hold_hist", "_inner", "_wait_hist", "name", "rank")

    def __init__(self, name: str,
                 metrics: "MetricsRegistry | None" = None) -> None:
        spec = lock_spec(name)
        if spec.reentrant != self.reentrant:
            want = "OrderedRLock" if spec.reentrant else "OrderedLock"
            raise TypeError(f"lock {name!r} is declared kind={spec.kind!r} "
                            f"in the registry; construct it with {want}")
        self.name = name
        self.rank = spec.rank
        self._inner = self._factory()
        self._wait_hist: Histogram | None = None
        self._hold_hist: Histogram | None = None
        if metrics is not None:
            self._wait_hist = metrics.histogram(f"lock.wait_s.{name}")
            self._hold_hist = metrics.histogram(f"lock.hold_s.{name}")

    def _check_order(self, stack: list[tuple["OrderedLock", float]]) -> None:
        if not stack:
            return
        max_rank = max(held.rank for held, _ in stack)
        if self.rank > max_rank:
            return
        if self.reentrant and any(held is self for held, _ in stack):
            return
        held_desc = " -> ".join(f"{held.name}(rank {held.rank})"
                                for held, _ in stack)
        raise LockOrderViolation(
            f"acquiring {self.name!r} (rank {self.rank}) while holding "
            f"{held_desc}; locks must be taken in strictly increasing "
            f"rank order — see repro.concurrency.order.LOCK_ORDER")

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, asserting rank order first."""
        debug = _DEBUG
        if debug:
            self._check_order(_stack())
        if not debug and self._wait_hist is None:
            return self._inner.acquire(blocking, timeout)
        started = time.perf_counter()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            now = time.perf_counter()
            if self._wait_hist is not None:
                self._wait_hist.observe(now - started)
            _stack().append((self, now))
        return acquired

    def release(self) -> None:
        """Release the underlying lock and record the hold time."""
        stack = _stack()
        acquired_at: float | None = None
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is self:
                acquired_at = stack.pop(i)[1]
                break
        self._inner.release()
        if acquired_at is not None and self._hold_hist is not None:
            self._hold_hist.observe(time.perf_counter() - acquired_at)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held (Lock only)."""
        return bool(self._inner.locked())

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} rank={self.rank} "
                f"at {id(self):#x}>")


class OrderedRLock(OrderedLock):
    """A re-entrant :class:`OrderedLock` (same-lock re-acquisition is
    exempt from the rank assertion, exactly like ``threading.RLock``)."""

    _factory: Any = staticmethod(threading.RLock)
    reentrant = True

    __slots__ = ()

    def locked(self) -> bool:  # pragma: no cover - parity guard
        raise AttributeError("RLock has no locked()")


__all__ = [
    "LockOrderViolation", "OrderedLock", "OrderedRLock", "debug_enabled",
    "held_locks", "set_debug",
]
