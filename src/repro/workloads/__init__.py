"""Deterministic synthetic workload generators (paper-dataset stand-ins)."""

from .graphs import (
    community_edges,
    parse_edge,
    power_law_edges,
    write_community,
    write_pagelinks,
)
from .points import DATASETS, labelled_points, parse_point, write_points
from .tax import parse_tax, tax_records, write_tax
from .text import write_abstracts, zipf_lines
from .tpch import SF1_ROWS, TpchLite, parse_row

__all__ = [
    "community_edges",
    "parse_edge",
    "power_law_edges",
    "write_community",
    "write_pagelinks",
    "DATASETS",
    "labelled_points",
    "parse_point",
    "write_points",
    "parse_tax",
    "tax_records",
    "write_tax",
    "write_abstracts",
    "zipf_lines",
    "SF1_ROWS",
    "TpchLite",
    "parse_row",
]
