"""A TPC-H-lite data generator for the polystore experiments.

Generates the six tables touched by TPC-H Q5 with the standard per-scale-
factor row counts carried by ``sim_factor`` (actual rows stay small).  The
Figure 2(d) placement spreads them across three stores: LINEITEM and ORDERS
on HDFS, CUSTOMER/SUPPLIER/REGION in the relational engine, NATION on the
local file system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: TPC-H rows per scale factor 1.
SF1_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Approximate simulated bytes per row.
ROW_BYTES = {
    "region": 40.0,
    "nation": 60.0,
    "supplier": 140.0,
    "customer": 180.0,
    "orders": 100.0,
    "lineitem": 120.0,
}

#: Actual in-memory rows generated per table.
ACTUAL_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 80,
    "customer": 400,
    "orders": 800,
    "lineitem": 3_200,
}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]


@dataclass
class TpchLite:
    """Deterministic TPC-H-lite generator for one scale factor."""

    scale_factor: float = 1.0
    seed: int = 47
    #: Multiplier on the ACTUAL generated rows (region and nation stay at
    #: their fixed TPC-H sizes).  ``sim_factor`` shrinks in proportion, so
    #: simulated volumes — and therefore plans and simulated runtimes — are
    #: independent of it; benchmarks raise it to measure real throughput.
    actual_scale: float = 1.0

    def actual_rows(self, table: str) -> int:
        """Actual in-memory rows generated for ``table``."""
        if table in ("region", "nation"):
            return ACTUAL_ROWS[table]
        return max(1, int(ACTUAL_ROWS[table] * self.actual_scale))

    def sim_factor(self, table: str) -> float:
        """Simulated rows per actual row for ``table`` at this scale."""
        return (SF1_ROWS[table] * self.scale_factor) / self.actual_rows(table)

    # ------------------------------------------------------------- tables
    def region(self) -> list[dict]:
        """The five TPC-H regions."""
        return [{"regionkey": i, "name": REGIONS[i]}
                for i in range(ACTUAL_ROWS["region"])]

    def nation(self) -> list[dict]:
        """The 25 TPC-H nations (5 per region)."""
        return [{"nationkey": i, "regionkey": i % 5, "name": f"NATION{i:02d}"}
                for i in range(ACTUAL_ROWS["nation"])]

    def supplier(self) -> list[dict]:
        """Suppliers with random nations."""
        rng = random.Random(self.seed + 1)
        return [{"suppkey": i, "nationkey": rng.randrange(25),
                 "name": f"Supplier#{i:09d}"}
                for i in range(self.actual_rows("supplier"))]

    def customer(self) -> list[dict]:
        """Customers with random nations."""
        rng = random.Random(self.seed + 2)
        return [{"custkey": i, "nationkey": rng.randrange(25),
                 "name": f"Customer#{i:09d}"}
                for i in range(self.actual_rows("customer"))]

    def orders(self) -> list[dict]:
        """Orders referencing customers, spread over three order years."""
        rng = random.Random(self.seed + 3)
        return [{"orderkey": i,
                 "custkey": rng.randrange(self.actual_rows("customer")),
                 "orderyear": rng.choice([1993, 1994, 1995])}
                for i in range(self.actual_rows("orders"))]

    def lineitem(self) -> list[dict]:
        """Line items referencing orders and suppliers, with prices."""
        rng = random.Random(self.seed + 4)
        return [{"orderkey": rng.randrange(self.actual_rows("orders")),
                 "suppkey": rng.randrange(self.actual_rows("supplier")),
                 "extendedprice": round(rng.uniform(1_000.0, 90_000.0), 2),
                 "discount": round(rng.uniform(0.0, 0.1), 2)}
                for i in range(self.actual_rows("lineitem"))]

    def table(self, name: str) -> list[dict]:
        """Generate a table by name."""
        return getattr(self, name)()

    # ----------------------------------------------------------- placement
    def place_for_q5(self, ctx) -> None:
        """Spread the Q5 tables across the three stores (Figure 2(d))."""
        for name in ("lineitem", "orders"):
            rows = self.table(name)
            ctx.vfs.write(f"hdfs://tpch/{name}.csv",
                          [_to_csv(name, r) for r in rows],
                          sim_factor=self.sim_factor(name),
                          bytes_per_record=ROW_BYTES[name])
        ctx.vfs.write("file://tpch/nation.csv",
                      [_to_csv("nation", r) for r in self.nation()],
                      sim_factor=self.sim_factor("nation"),
                      bytes_per_record=ROW_BYTES["nation"])
        for name in ("customer", "supplier", "region"):
            rows = self.table(name)
            ctx.pgres.create_table(name, sorted(rows[0]), rows,
                                   sim_factor=self.sim_factor(name),
                                   bytes_per_row=ROW_BYTES[name])

    def place_all_in_pgres(self, ctx) -> None:
        """Everything inside the relational engine (single-platform case)."""
        for name in SF1_ROWS:
            rows = self.table(name)
            ctx.pgres.create_table(name, sorted(rows[0]), rows,
                                   sim_factor=self.sim_factor(name),
                                   bytes_per_row=ROW_BYTES[name])

    def place_all_on_hdfs(self, ctx) -> None:
        """Everything on HDFS as CSV (single-platform Spark case)."""
        for name in SF1_ROWS:
            rows = self.table(name)
            ctx.vfs.write(f"hdfs://tpch/{name}.csv",
                          [_to_csv(name, r) for r in rows],
                          sim_factor=self.sim_factor(name),
                          bytes_per_record=ROW_BYTES[name])


_CSV_COLUMNS = {
    "region": ("regionkey", "name"),
    "nation": ("nationkey", "regionkey", "name"),
    "supplier": ("suppkey", "nationkey", "name"),
    "customer": ("custkey", "nationkey", "name"),
    "orders": ("orderkey", "custkey", "orderyear"),
    "lineitem": ("orderkey", "suppkey", "extendedprice", "discount"),
}


def _to_csv(table: str, row: dict) -> str:
    return "|".join(str(row[c]) for c in _CSV_COLUMNS[table])


def parse_row(table: str, line: str) -> dict:
    """Parse a generated ``|``-separated line back into a row dict."""
    parts = line.split("|")
    out: dict = {}
    for column, value in zip(_CSV_COLUMNS[table], parts):
        if column in ("name",):
            out[column] = value
        elif column in ("extendedprice", "discount"):
            out[column] = float(value)
        else:
            out[column] = int(value)
    return out


def _gather_field(view, start, end):
    """Slice one variable-offset field out of every row of ``view``.

    Returns a ``(rows, max_field_width)`` codepoint array, zero-padded past
    each field's end, plus the per-row field lengths.
    """
    import numpy as np

    n, width = view.shape
    flen = end - start
    maxw = int(flen.max()) if n else 0
    if not maxw:
        return np.zeros((n, 0), dtype=view.dtype), flen
    idx = np.minimum(start[:, None] + np.arange(maxw), width - 1)
    field = np.take_along_axis(view, idx, axis=1)
    return np.where(np.arange(maxw) < flen[:, None], field,
                    view.dtype.type(0)), flen


def _field_bytes(field):
    """Reinterpret a gathered ASCII codepoint matrix as a bytes array."""
    import numpy as np

    n, maxw = field.shape
    if not maxw:
        return np.full(n, b"", dtype="S1")
    buf = np.ascontiguousarray(field.astype(np.uint8)).tobytes()
    return np.frombuffer(buf, dtype=f"S{maxw}")


def _str_field(field):
    """Reinterpret a gathered codepoint matrix as a unicode array."""
    import numpy as np

    n, maxw = field.shape
    if not maxw:
        return np.full(n, "", dtype="U1")
    buf = np.ascontiguousarray(field.astype(np.uint32)).tobytes()
    return np.frombuffer(buf, dtype=f"U{maxw}")


def _int_field(field, flen):
    """Parse a gathered digit field with a place-value kernel.

    Sums ``digit * 10**position`` across the row — no per-element parse
    calls at all.  Any non-digit character (sign, blank, overflow-width
    field) routes the whole column through numpy's C string parser, which
    raises on exactly the inputs ``int()`` raises on.
    """
    import numpy as np

    maxw = field.shape[1]
    digits = field.astype(np.int64) - ord("0")
    mask = np.arange(maxw) < flen[:, None]
    bad = (((digits < 0) | (digits > 9)) & mask).any()
    if bad or maxw > 18 or (flen == 0).any():
        return _field_bytes(field).astype(np.int64)
    powers = 10 ** np.arange(18, dtype=np.int64)
    exponents = np.where(mask, flen[:, None] - 1 - np.arange(maxw), 0)
    return (digits * np.where(mask, powers[exponents], 0)).sum(axis=1)


def parse_batch(table: str, batch):
    """Vectorized :func:`parse_row` over one batch of CSV lines.

    Works on the codepoint view of the lines column: one pass finds the
    ``|`` separators, each field is gathered into a narrow fixed-width
    window, integer columns go through a place-value digit kernel and
    float columns through numpy's C parser.  int64/float64
    parsing of decimal text matches Python's ``int``/``float`` exactly, so
    the rows equal the per-record parse bit-for-bit; anything the fast path
    cannot prove it handles exactly (non-ASCII, trimmed NULs, a malformed
    field count) falls back to the per-record parse.
    """
    import numpy as np

    from ..core.batch import RecordBatch

    columns = _CSV_COLUMNS[table]
    lines = batch.array(0)
    if lines is None:  # non-string payload: per-record fallback
        return [parse_row(table, line) for line in batch]
    n = len(lines)
    if not n:
        return []
    if lines.dtype.kind != "U":
        return [parse_row(table, line) for line in batch]
    width = lines.dtype.itemsize // 4
    view = lines.view(np.uint32).reshape(n, width)
    if (view > 127).any():  # non-ASCII: keep the per-record parse exact
        return [parse_row(table, line) for line in batch]
    lens = np.strings.str_len(lines)
    seps = view == ord("|")
    if not (seps.sum(axis=1) == len(columns) - 1).all():
        return [parse_row(table, line) for line in batch]
    sep_pos = np.nonzero(seps)[1].reshape(n, len(columns) - 1)
    out = []
    for i, column in enumerate(columns):
        start = (sep_pos[:, i - 1] + 1 if i
                 else np.zeros(n, dtype=np.int64))
        end = sep_pos[:, i] if i < len(columns) - 1 else lens
        field, flen = _gather_field(view, start, end)
        if column in ("name",):
            out.append(_str_field(field))
        elif column in ("extendedprice", "discount"):
            out.append(_field_bytes(field).astype(np.float64))
        else:
            out.append(_int_field(field, flen))
    return RecordBatch.from_columns(columns, out)
