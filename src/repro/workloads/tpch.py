"""A TPC-H-lite data generator for the polystore experiments.

Generates the six tables touched by TPC-H Q5 with the standard per-scale-
factor row counts carried by ``sim_factor`` (actual rows stay small).  The
Figure 2(d) placement spreads them across three stores: LINEITEM and ORDERS
on HDFS, CUSTOMER/SUPPLIER/REGION in the relational engine, NATION on the
local file system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: TPC-H rows per scale factor 1.
SF1_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Approximate simulated bytes per row.
ROW_BYTES = {
    "region": 40.0,
    "nation": 60.0,
    "supplier": 140.0,
    "customer": 180.0,
    "orders": 100.0,
    "lineitem": 120.0,
}

#: Actual in-memory rows generated per table.
ACTUAL_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 80,
    "customer": 400,
    "orders": 800,
    "lineitem": 3_200,
}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]


@dataclass
class TpchLite:
    """Deterministic TPC-H-lite generator for one scale factor."""

    scale_factor: float = 1.0
    seed: int = 47

    def sim_factor(self, table: str) -> float:
        """Simulated rows per actual row for ``table`` at this scale."""
        return (SF1_ROWS[table] * self.scale_factor) / ACTUAL_ROWS[table]

    # ------------------------------------------------------------- tables
    def region(self) -> list[dict]:
        """The five TPC-H regions."""
        return [{"regionkey": i, "name": REGIONS[i]}
                for i in range(ACTUAL_ROWS["region"])]

    def nation(self) -> list[dict]:
        """The 25 TPC-H nations (5 per region)."""
        return [{"nationkey": i, "regionkey": i % 5, "name": f"NATION{i:02d}"}
                for i in range(ACTUAL_ROWS["nation"])]

    def supplier(self) -> list[dict]:
        """Suppliers with random nations."""
        rng = random.Random(self.seed + 1)
        return [{"suppkey": i, "nationkey": rng.randrange(25),
                 "name": f"Supplier#{i:09d}"}
                for i in range(ACTUAL_ROWS["supplier"])]

    def customer(self) -> list[dict]:
        """Customers with random nations."""
        rng = random.Random(self.seed + 2)
        return [{"custkey": i, "nationkey": rng.randrange(25),
                 "name": f"Customer#{i:09d}"}
                for i in range(ACTUAL_ROWS["customer"])]

    def orders(self) -> list[dict]:
        """Orders referencing customers, spread over three order years."""
        rng = random.Random(self.seed + 3)
        return [{"orderkey": i,
                 "custkey": rng.randrange(ACTUAL_ROWS["customer"]),
                 "orderyear": rng.choice([1993, 1994, 1995])}
                for i in range(ACTUAL_ROWS["orders"])]

    def lineitem(self) -> list[dict]:
        """Line items referencing orders and suppliers, with prices."""
        rng = random.Random(self.seed + 4)
        return [{"orderkey": rng.randrange(ACTUAL_ROWS["orders"]),
                 "suppkey": rng.randrange(ACTUAL_ROWS["supplier"]),
                 "extendedprice": round(rng.uniform(1_000.0, 90_000.0), 2),
                 "discount": round(rng.uniform(0.0, 0.1), 2)}
                for i in range(ACTUAL_ROWS["lineitem"])]

    def table(self, name: str) -> list[dict]:
        """Generate a table by name."""
        return getattr(self, name)()

    # ----------------------------------------------------------- placement
    def place_for_q5(self, ctx) -> None:
        """Spread the Q5 tables across the three stores (Figure 2(d))."""
        for name in ("lineitem", "orders"):
            rows = self.table(name)
            ctx.vfs.write(f"hdfs://tpch/{name}.csv",
                          [_to_csv(name, r) for r in rows],
                          sim_factor=self.sim_factor(name),
                          bytes_per_record=ROW_BYTES[name])
        ctx.vfs.write("file://tpch/nation.csv",
                      [_to_csv("nation", r) for r in self.nation()],
                      sim_factor=self.sim_factor("nation"),
                      bytes_per_record=ROW_BYTES["nation"])
        for name in ("customer", "supplier", "region"):
            rows = self.table(name)
            ctx.pgres.create_table(name, sorted(rows[0]), rows,
                                   sim_factor=self.sim_factor(name),
                                   bytes_per_row=ROW_BYTES[name])

    def place_all_in_pgres(self, ctx) -> None:
        """Everything inside the relational engine (single-platform case)."""
        for name in SF1_ROWS:
            rows = self.table(name)
            ctx.pgres.create_table(name, sorted(rows[0]), rows,
                                   sim_factor=self.sim_factor(name),
                                   bytes_per_row=ROW_BYTES[name])

    def place_all_on_hdfs(self, ctx) -> None:
        """Everything on HDFS as CSV (single-platform Spark case)."""
        for name in SF1_ROWS:
            rows = self.table(name)
            ctx.vfs.write(f"hdfs://tpch/{name}.csv",
                          [_to_csv(name, r) for r in rows],
                          sim_factor=self.sim_factor(name),
                          bytes_per_record=ROW_BYTES[name])


_CSV_COLUMNS = {
    "region": ("regionkey", "name"),
    "nation": ("nationkey", "regionkey", "name"),
    "supplier": ("suppkey", "nationkey", "name"),
    "customer": ("custkey", "nationkey", "name"),
    "orders": ("orderkey", "custkey", "orderyear"),
    "lineitem": ("orderkey", "suppkey", "extendedprice", "discount"),
}


def _to_csv(table: str, row: dict) -> str:
    return "|".join(str(row[c]) for c in _CSV_COLUMNS[table])


def parse_row(table: str, line: str) -> dict:
    """Parse a generated ``|``-separated line back into a row dict."""
    parts = line.split("|")
    out: dict = {}
    for column, value in zip(_CSV_COLUMNS[table], parts):
        if column in ("name",):
            out[column] = value
        elif column in ("extendedprice", "discount"):
            out[column] = float(value)
        else:
            out[column] = int(value)
    return out
