"""Synthetic labelled point datasets (HIGGS / rcv1 / dense-SVM stand-ins).

Points are linearly separable with label noise, so gradient-descent tasks
genuinely converge (tests check the learned separator's direction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PointDatasetSpec:
    """Shape of one benchmark dataset from the paper's Figure 2(b)."""

    name: str
    dimensions: int
    sim_points: float
    bytes_per_point: float


#: Stand-ins for the paper's SGD benchmark datasets.
DATASETS = {
    # rcv1: sparse high-dimensional; we keep a modest dense stand-in.
    "rcv1": PointDatasetSpec("rcv1", 12, 700_000.0, 400.0),
    # HIGGS: 11M points x 28 features (~7.4 GB).
    "higgs": PointDatasetSpec("higgs", 28, 11_000_000.0, 700.0),
    # "synthetic svm": very wide rows; blows small-memory systems up.
    "svm": PointDatasetSpec("svm", 100, 8_000_000.0, 2400.0),
}

ACTUAL_POINTS = 1_200


def labelled_points(
    count: int,
    dimensions: int,
    noise: float = 0.05,
    seed: int = 23,
) -> tuple[list[str], list[float]]:
    """CSV lines ``label,x1,...,xd`` plus the true separating weights."""
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    rng = random.Random(seed)
    true_w = [rng.uniform(-1.0, 1.0) for __ in range(dimensions)]
    lines = []
    for __ in range(count):
        x = [rng.uniform(-1.0, 1.0) for __ in range(dimensions)]
        margin = sum(w * v for w, v in zip(true_w, x))
        label = 1.0 if margin > 0 else -1.0
        if rng.random() < noise:
            label = -label
        lines.append(",".join([str(label)] + [f"{v:.5f}" for v in x]))
    return lines, true_w


def write_points(ctx, path: str, dataset: str = "higgs",
                 percent: float = 100.0, seed: int = 23) -> PointDatasetSpec:
    """Write a ``percent``% slice of a named dataset to the VFS."""
    try:
        spec = DATASETS[dataset]
    except KeyError:
        raise ValueError(f"unknown dataset {dataset!r}; "
                         f"choose from {sorted(DATASETS)}") from None
    if not 0 < percent <= 100:
        raise ValueError("percent must be in (0, 100]")
    lines, __ = labelled_points(ACTUAL_POINTS, spec.dimensions, seed=seed)
    sim_factor = spec.sim_points * (percent / 100.0) / len(lines)
    ctx.vfs.write(path, lines, sim_factor=sim_factor,
                  bytes_per_record=spec.bytes_per_point)
    return spec


def parse_point(line: str) -> tuple[float, ...]:
    """Parse a CSV point line into ``(label, x1, ..., xd)``."""
    return tuple(float(v) for v in line.split(","))
