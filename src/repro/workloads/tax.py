"""The Tax dataset (Fan et al.) stand-in for data cleaning experiments.

Tax is the standard benchmark for denial constraints: person records with
correlated ``salary``/``tax`` fields plus a controlled number of injected
violations of the constraint

    NOT(t1.salary > t2.salary AND t1.tax < t2.tax)

("someone earns more but pays less tax").  The generator returns the ids of
the corrupted records so tests can verify the cleaner finds exactly the
planted errors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class TaxRecord:
    """One person's tax filing."""

    rid: int
    zip_code: int
    salary: float
    tax: float

    def as_dict(self) -> dict:
        return {"rid": self.rid, "zip": self.zip_code,
                "salary": self.salary, "tax": self.tax}


def tax_records(
    count: int,
    violations: int = 10,
    tax_rate: float = 0.3,
    seed: int = 41,
) -> tuple[list[TaxRecord], set[int]]:
    """Generate records where ``tax = rate * salary`` except for
    ``violations`` corrupted records whose tax is implausibly low.

    Returns:
        The records and the set of corrupted record ids.
    """
    if violations > count:
        raise ValueError("cannot inject more violations than records")
    rng = random.Random(seed)
    records = []
    for rid in range(count):
        salary = rng.uniform(20_000.0, 200_000.0)
        records.append(TaxRecord(
            rid=rid,
            zip_code=rng.randrange(100),
            salary=round(salary, 2),
            tax=round(salary * tax_rate, 2),
        ))
    corrupted = set(rng.sample(range(count), violations))
    for rid in corrupted:
        rec = records[rid]
        # Big salary, suspiciously small tax: violates against most records.
        records[rid] = TaxRecord(rec.rid, rec.zip_code,
                                 salary=195_000.0 + rid,
                                 tax=round(rng.uniform(10.0, 100.0), 2))
    return records, corrupted


def write_tax(ctx, path: str, count: int, sim_rows: float,
              violations: int = 10, seed: int = 41) -> set[int]:
    """Write a tax dataset to the VFS as CSV lines; returns corrupted ids."""
    records, corrupted = tax_records(count, violations, seed=seed)
    lines = [f"{r.rid},{r.zip_code},{r.salary},{r.tax}" for r in records]
    ctx.vfs.write(path, lines, sim_factor=sim_rows / len(lines),
                  bytes_per_record=60.0)
    return corrupted


def parse_tax(line: str) -> dict:
    """Parse a CSV tax line into a record dict."""
    rid, zip_code, salary, tax = line.split(",")
    return {"rid": int(rid), "zip": int(zip_code),
            "salary": float(salary), "tax": float(tax)}
