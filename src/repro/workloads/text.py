"""Synthetic text corpora (Wikipedia-abstracts stand-in).

The paper's WordCount runs over 3 GB of Wikipedia abstracts.  We generate
Zipf-distributed word streams with the same statistical shape; the actual
corpus stays laptop-sized while ``sim_factor`` carries the paper-scale
record counts to the simulated clock.
"""

from __future__ import annotations

import random

#: Full-scale (100%) parameters of the Wikipedia-abstracts stand-in.
FULL_SIM_LINES = 30_000_000.0   # ~3 GB at ~100 B/line
BYTES_PER_LINE = 100.0
ACTUAL_LINES = 1_500


def zipf_lines(
    num_lines: int,
    vocabulary: int = 500,
    words_per_line: int = 9,
    exponent: float = 1.3,
    seed: int = 17,
) -> list[str]:
    """Lines of Zipf-distributed words (``w0`` most frequent)."""
    if num_lines < 0:
        raise ValueError("num_lines must be >= 0")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(vocabulary)]
    words = [f"w{rank}" for rank in range(vocabulary)]
    return [
        " ".join(rng.choices(words, weights=weights, k=words_per_line))
        for __ in range(num_lines)
    ]


def write_abstracts(ctx, path: str, percent: float, seed: int = 17) -> None:
    """Write a ``percent``% slice of the simulated 3 GB corpus to the VFS.

    Matching the paper's sampling methodology, smaller percentages are
    smaller prefixes of the same corpus.
    """
    if not 0 < percent <= 200:
        raise ValueError("percent must be in (0, 200]")
    lines = zipf_lines(ACTUAL_LINES, seed=seed)
    sim_factor = FULL_SIM_LINES * (percent / 100.0) / len(lines)
    ctx.vfs.write(path, lines, sim_factor=sim_factor,
                  bytes_per_record=BYTES_PER_LINE)
