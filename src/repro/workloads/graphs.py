"""Synthetic graphs (DBpedia-pagelinks and community-dataset stand-ins)."""

from __future__ import annotations

import random

#: Full-scale parameters of the pagelinks stand-in (~24 GB, ~170M links).
FULL_SIM_EDGES = 170_000_000.0
BYTES_PER_EDGE = 140.0
ACTUAL_EDGES = 4_000
ACTUAL_VERTICES = 400


def power_law_edges(
    num_edges: int,
    num_vertices: int,
    exponent: float = 1.2,
    seed: int = 31,
) -> list[tuple[int, int]]:
    """Directed edges with Zipf-ish in/out degree (self-loops removed)."""
    rng = random.Random(seed)
    weights = [1.0 / (v + 1) ** exponent for v in range(num_vertices)]
    vertices = list(range(num_vertices))
    edges = []
    while len(edges) < num_edges:
        src = rng.choices(vertices, weights=weights, k=1)[0]
        dst = rng.choices(vertices, weights=weights, k=1)[0]
        if src != dst:
            edges.append((src, dst))
    return edges


def write_pagelinks(ctx, path: str, percent: float, seed: int = 31) -> None:
    """Write a ``percent``% slice of the simulated pagelinks graph."""
    if not 0 < percent <= 100:
        raise ValueError("percent must be in (0, 100]")
    edges = power_law_edges(ACTUAL_EDGES, ACTUAL_VERTICES, seed=seed)
    lines = [f"{a} {b}" for a, b in edges]
    sim_factor = FULL_SIM_EDGES * (percent / 100.0) / len(lines)
    ctx.vfs.write(path, lines, sim_factor=sim_factor,
                  bytes_per_record=BYTES_PER_EDGE)


def community_edges(
    community: int,
    num_edges: int = 2_500,
    num_vertices: int = 300,
    overlap: float = 0.5,
    seed: int = 37,
) -> list[tuple[int, int]]:
    """Edges of one "community" dataset; communities share ``overlap`` of
    their link mass (so their intersection is non-trivial, as the
    cross-community PageRank task requires)."""
    rng = random.Random(seed)  # shared base graph across communities
    shared = power_law_edges(int(num_edges * overlap), num_vertices,
                             seed=seed)
    own_rng = random.Random(seed + 1000 + community)
    own = []
    while len(own) < num_edges - len(shared):
        a = own_rng.randrange(num_vertices)
        b = own_rng.randrange(num_vertices)
        if a != b:
            own.append((a, b))
    edges = shared + own
    rng.shuffle(edges)
    return edges


def write_community(ctx, path: str, community: int, sim_mb: float,
                    seed: int = 37) -> None:
    """Write one community dataset sized at ``sim_mb`` simulated MB."""
    edges = community_edges(community, seed=seed)
    lines = [f"{a} {b}" for a, b in edges]
    sim_records = sim_mb * 1e6 / BYTES_PER_EDGE
    ctx.vfs.write(path, lines, sim_factor=sim_records / len(lines),
                  bytes_per_record=BYTES_PER_EDGE)


def parse_edge(line: str) -> tuple[int, int]:
    """Parse ``"src dst"`` into an integer pair."""
    a, b = line.split()
    return (int(a), int(b))
