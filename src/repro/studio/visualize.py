"""Plan inspection: ASCII rendering, Graphviz export, and EXPLAIN.

The paper's Rheem Studio is a drag-and-drop GUI; its reproduction-scale
stand-in is textual: render any Rheem plan as an ASCII tree or Graphviz
``dot`` source, and ``explain`` a plan the way a DBMS explains a query —
showing the platform the optimizer picked per operator, the conversions it
inserted and the estimated cost.
"""

from __future__ import annotations

from io import StringIO

from ..core.context import RheemContext
from ..core.operators import LoopOperator, Operator
from ..core.optimizer import ChannelSourceDecision, LoopDecision
from ..core.plan import RheemPlan


def render_ascii(plan: RheemPlan) -> str:
    """A topological, indentation-free listing with edge annotations."""
    out = StringIO()
    for op in plan.operators():
        inputs = ", ".join(ref.op.name for ref in op.inputs
                           if ref is not None)
        side = ", ".join(ref.op.name for ref in op.side_inputs)
        line = f"{op.name} <#{op.id}>"
        if inputs:
            line += f"  <- {inputs}"
        if side:
            line += f"  (broadcast: {side})"
        print(line, file=out)
        if isinstance(op, LoopOperator):
            for body_op in op.body.operators():
                print(f"    [body] {body_op.name} <#{body_op.id}>", file=out)
    return out.getvalue()


_SEVERITY_COLORS = {"error": "red", "warning": "orange", "info": "skyblue"}


def _diagnostics_by_op(plan: RheemPlan):
    """Worst diagnostic per operator id from the plan's last analysis."""
    worst: dict[int, object] = {}
    for diag in getattr(plan, "diagnostics", []) or []:
        seen = worst.get(diag.op_id)
        if seen is None or diag.severity > seen.severity:
            worst[diag.op_id] = diag
    return worst


def plan_to_dot(plan: RheemPlan, title: str = "rheem plan") -> str:
    """Graphviz source for a Rheem plan (loop bodies as clusters).

    Operators flagged by the static analyzer (``plan.diagnostics``) are
    colored by their worst finding — red for errors, orange for warnings,
    light blue for infos — with the rule id and message in the tooltip.
    """
    out = StringIO()
    print(f'digraph "{title}" {{', file=out)
    print("  rankdir=BT; node [shape=box, fontname=Helvetica];", file=out)
    flagged = _diagnostics_by_op(plan)

    def emit(op: Operator) -> None:
        shape = "ellipse" if op.is_source else (
            "doubleoctagon" if op.is_sink else "box")
        attrs = f'label="{op.name}", shape={shape}'
        diag = flagged.get(op.id)
        if diag is not None:
            color = _SEVERITY_COLORS.get(str(diag.severity), "gray")
            tooltip = f"{diag.rule_id}: {diag.message}".replace('"', "'")
            attrs += (f', style=filled, fillcolor="{color}", '
                      f'tooltip="{tooltip}"')
        print(f"  op{op.id} [{attrs}];", file=out)

    for op in plan.operators():
        emit(op)
        for ref in op.inputs:
            if ref is not None:
                print(f"  op{ref.op.id} -> op{op.id};", file=out)
        for ref in op.side_inputs:
            print(f'  op{ref.op.id} -> op{op.id} [style=dotted, '
                  f'label="broadcast"];', file=out)
        if isinstance(op, LoopOperator):
            print(f"  subgraph cluster_loop{op.id} {{", file=out)
            print(f'    label="{op.name} body";', file=out)
            for body_op in op.body.operators():
                emit(body_op)
            print("  }", file=out)
            for body_op in op.body.operators():
                for ref in body_op.inputs:
                    if ref is not None:
                        print(f"    op{ref.op.id} -> op{body_op.id};",
                              file=out)
                for ref in body_op.side_inputs:
                    print(f"    op{ref.op.id} -> op{body_op.id} "
                          f"[style=dotted];", file=out)
    print("}", file=out)
    return out.getvalue()


def explain(ctx: RheemContext, plan: RheemPlan,
            allowed_platforms: set[str] | None = None) -> str:
    """EXPLAIN: the chosen execution strategy, without running the plan."""
    optimizer = ctx.optimizer(allowed_platforms)
    best, cards = optimizer.pick_best(plan)
    out = StringIO()
    print(f"estimated cost: {best.cost} "
          f"(gm {best.cost.geometric_mean:.2f}s simulated)", file=out)
    print(f"platforms: {', '.join(sorted(best.platforms))}", file=out)
    print("operators:", file=out)
    for op in plan.operators():
        decision = best.decisions[op.id]
        card = cards[op.id]
        if isinstance(decision, LoopDecision):
            where = (f"loop x{op.expected_iterations()} over "
                     f"{', '.join(sorted(decision.platforms))}")
        elif isinstance(decision, ChannelSourceDecision):
            where = f"materialized {decision.descriptor.name}"
        else:
            where = " + ".join(x.name for x in decision.ops)
        print(f"  {op.name:<28} -> {where:<42} out~{card}", file=out)
    conversions = [(key, path) for key, path in best.conversions.items()
                   if path.steps]
    if conversions:
        print("data movement:", file=out)
        by_id = {op.id: op for op in plan.operators()}
        for (producer_id, consumer_id, __), path in conversions:
            producer = by_id.get(producer_id)
            consumer = by_id.get(consumer_id)
            steps = " -> ".join(s.name for s in path.steps)
            print(f"  {getattr(producer, 'name', producer_id)} => "
                  f"{getattr(consumer, 'name', consumer_id)}: {steps} "
                  f"(~{path.cost:.2f}s)", file=out)
    diagnostics = render_diagnostics(plan)
    if diagnostics:
        print("diagnostics:", file=out)
        out.write(diagnostics)
    return out.getvalue()


def render_diagnostics(plan: RheemPlan, indent: str = "  ") -> str:
    """The plan's static-analysis findings, one rendered line each.

    Empty string when the plan was never analyzed or came back clean;
    run ``repro.analysis.analyze_plan`` (or any optimizer pass) first.
    """
    out = StringIO()
    for diag in getattr(plan, "diagnostics", []) or []:
        print(f"{indent}{diag.render()}", file=out)
    return out.getvalue()


def render_profile(executions=(), tracer=None, metrics=None) -> str:
    """A job profile: wall-clock span tree, metrics, simulated timelines.

    ``executions`` are :class:`~repro.core.executor.ExecutionResult`
    objects (one per executed sink); each contributes its monitor's
    simulated stage timeline below the driver's wall-clock profile.
    """
    from ..trace import profile_summary

    out = StringIO()
    summary = profile_summary(tracer, metrics)
    if summary:
        print(summary, file=out)
    for index, result in enumerate(executions):
        print(f"job {index} (simulated, makespan "
              f"{result.runtime:.2f}s):", file=out)
        for line in result.monitor.report().splitlines():
            print(f"  {line}", file=out)
    return out.getvalue()
