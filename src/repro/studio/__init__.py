"""Text-mode plan inspection (the Rheem Studio stand-in)."""

from .visualize import (
    explain,
    plan_to_dot,
    render_ascii,
    render_diagnostics,
    render_profile,
)

__all__ = ["explain", "plan_to_dot", "render_ascii", "render_diagnostics",
           "render_profile"]
