"""Tokenizer for RheemLatin, the PigLatin-inspired data-flow language."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORD_CHARS = set("abcdefghijklmnopqrstuvwxyz_0123456789")


class LatinSyntaxError(SyntaxError):
    """Raised on malformed RheemLatin input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Kinds: ``ident`` (bare word), ``string`` (single-quoted), ``number``,
    ``expr`` (a ``{...}`` code block, braces stripped), and the literal
    punctuation kinds ``=``, ``->``, ``,``, ``;``, ``{``, ``}``.
    """

    kind: str
    value: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize RheemLatin source.

    ``{...}`` blocks capture raw code (with nested braces) as single
    ``expr`` tokens, except for block statements (``repeat``) whose braces
    are detected by the parser via lookahead — the lexer always captures
    balanced braces and the parser re-lexes block bodies.

    Raises:
        LatinSyntaxError: On unterminated strings/braces or stray characters.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and source[i:i + 2] == "--":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "-" and source[i:i + 2] == "->":
            tokens.append(Token("->", "->", line))
            i += 2
            continue
        if ch in "=,;":
            tokens.append(Token(ch, ch, line))
            i += 1
            continue
        if ch == "'":
            end = source.find("'", i + 1)
            if end < 0:
                raise LatinSyntaxError("unterminated string literal", line)
            tokens.append(Token("string", source[i + 1:end], line))
            line += source.count("\n", i, end)
            i = end + 1
            continue
        if ch == "{":
            depth = 1
            j = i + 1
            while j < n and depth:
                if source[j] == "{":
                    depth += 1
                elif source[j] == "}":
                    depth -= 1
                j += 1
            if depth:
                raise LatinSyntaxError("unterminated '{' block", line)
            tokens.append(Token("expr", source[i + 1:j - 1].strip(), line))
            line += source.count("\n", i, j)
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("ident", source[i:j], line))
            i = j
            continue
        raise LatinSyntaxError(f"unexpected character {ch!r}", line)
    return tokens
