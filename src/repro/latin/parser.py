"""Parser for RheemLatin: token stream -> statement AST."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .lexer import LatinSyntaxError, Token, tokenize


@dataclass
class OpExpr:
    """One right-hand-side operation.

    ``keyword`` selects the operation; ``sources`` are upstream dataset
    names; ``codes`` are raw ``{...}`` code snippets in keyword-specific
    order; ``options`` carries numbers/strings (sample size, paths,
    iteration counts); ``broadcasts``/``platform`` come from ``with``
    clauses.
    """

    keyword: str
    sources: list[str] = field(default_factory=list)
    codes: list[str] = field(default_factory=list)
    options: dict[str, Any] = field(default_factory=dict)
    broadcasts: list[str] = field(default_factory=list)
    platform: str | None = None


@dataclass
class Assign:
    """``name = <operation>;``"""

    name: str
    op: OpExpr
    line: int


@dataclass
class Store:
    """``store <dataset> '<path>';``"""

    source: str
    path: str
    line: int


@dataclass
class Dump:
    """``dump <dataset>;`` — collect to the driver."""

    source: str
    line: int


Statement = Assign | Store | Dump


class _TokenStream:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Token | None:
        """The next token without consuming it."""
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def next(self, kind: str | None = None, what: str = "token") -> Token:
        """Consume the next token, optionally requiring its kind."""
        tok = self.peek()
        if tok is None:
            raise LatinSyntaxError(f"unexpected end of input, expected {what}",
                                   self._tokens[-1].line if self._tokens else 0)
        if kind is not None and tok.kind != kind:
            raise LatinSyntaxError(
                f"expected {what} ({kind}), got {tok.kind} {tok.value!r}",
                tok.line)
        self._pos += 1
        return tok

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        """Consume and return the next token iff it matches, else None."""
        tok = self.peek()
        if tok is not None and tok.kind == kind and (
                value is None or tok.value.lower() == value):
            self._pos += 1
            return tok
        return None

    @property
    def exhausted(self) -> bool:
        """Whether every token has been consumed."""
        return self._pos >= len(self._tokens)


def parse(source: str) -> list[Statement]:
    """Parse a RheemLatin script into statements.

    Raises:
        LatinSyntaxError: On any grammar violation.
    """
    stream = _TokenStream(tokenize(source))
    statements: list[Statement] = []
    while not stream.exhausted:
        statements.append(_parse_statement(stream))
    return statements


def _parse_statement(stream: _TokenStream) -> Statement:
    head = stream.next("ident", "statement")
    word = head.value.lower()
    if word == "store":
        src = stream.next("ident", "dataset name").value
        path = stream.next("string", "output path").value
        stream.next(";", "';'")
        return Store(src, path, head.line)
    if word == "dump":
        src = stream.next("ident", "dataset name").value
        stream.next(";", "';'")
        return Dump(src, head.line)
    # Otherwise: NAME = <operation> ... ;
    stream.next("=", "'='")
    op = _parse_operation(stream, head.line)
    stream.next(";", "';'")
    return Assign(head.value, op, head.line)


def _parse_operation(stream: _TokenStream, line: int) -> OpExpr:
    kw_tok = stream.next("ident", "operation keyword")
    keyword = kw_tok.value.lower()
    op = OpExpr(keyword)

    if keyword == "load":
        if stream.accept("ident", "table"):
            op.keyword = "load_table"
            op.options["table"] = stream.next("string", "table name").value
        elif stream.accept("ident", "collection"):
            op.keyword = "load_collection"
            op.options["name"] = stream.next("ident", "environment name").value
        else:
            op.options["path"] = stream.next("string", "path").value
    elif keyword in ("map", "flatmap", "filter", "reduce"):
        op.sources.append(stream.next("ident", "dataset name").value)
        stream.next("->", "'->'")
        op.codes.append(stream.next("expr", "code block").value)
    elif keyword == "sample":
        op.sources.append(stream.next("ident", "dataset name").value)
        op.options["size"] = int(stream.next("number", "sample size").value)
        if stream.accept("ident", "method"):
            op.options["method"] = stream.next("string", "method name").value
    elif keyword in ("distinct", "cache", "count"):
        op.sources.append(stream.next("ident", "dataset name").value)
    elif keyword == "sort":
        op.sources.append(stream.next("ident", "dataset name").value)
        stream.next("ident", "'by'")
        op.codes.append(stream.next("expr", "key block").value)
    elif keyword == "group":
        op.sources.append(stream.next("ident", "dataset name").value)
        stream.next("ident", "'by'")
        op.codes.append(stream.next("expr", "key block").value)
    elif keyword == "reduceby":
        op.sources.append(stream.next("ident", "dataset name").value)
        stream.next("ident", "'by'")
        op.codes.append(stream.next("expr", "key block").value)
        stream.next("ident", "'with'")
        op.codes.append(stream.next("expr", "reducer block").value)
    elif keyword == "join":
        op.sources.append(stream.next("ident", "left dataset").value)
        stream.next("ident", "'by'")
        op.codes.append(stream.next("expr", "left key").value)
        stream.next(",", "','")
        op.sources.append(stream.next("ident", "right dataset").value)
        stream.next("ident", "'by'")
        op.codes.append(stream.next("expr", "right key").value)
    elif keyword in ("union", "intersect"):
        op.sources.append(stream.next("ident", "left dataset").value)
        stream.next(",", "','")
        op.sources.append(stream.next("ident", "right dataset").value)
    elif keyword == "pagerank":
        op.sources.append(stream.next("ident", "dataset name").value)
        if stream.accept("ident", "iterations"):
            op.options["iterations"] = int(
                stream.next("number", "iteration count").value)
    elif keyword == "repeat":
        op.options["iterations"] = int(
            stream.next("number", "iteration count").value)
        op.codes.append(stream.next("expr", "loop body").value)
    else:
        # Unknown keyword: keep a generic shape so user-registered keyword
        # handlers (the paper's configurable vocabulary) can interpret it.
        while True:
            tok = stream.peek()
            if tok is None or tok.kind == ";":
                break
            if tok.kind == "ident" and tok.value.lower() == "with":
                break
            tok = stream.next()
            if tok.kind == "ident":
                op.sources.append(tok.value)
            elif tok.kind == "expr":
                op.codes.append(tok.value)
            elif tok.kind in ("string", "number"):
                op.options.setdefault("args", []).append(tok.value)

    # Trailing `with ...` clauses, shared by every operation.
    while stream.accept("ident", "with"):
        what = stream.next("ident", "'broadcast' or 'platform'").value.lower()
        if what == "broadcast":
            op.broadcasts.append(stream.next("ident", "dataset name").value)
        elif what == "platform":
            op.platform = stream.next("string", "platform name").value
        else:
            raise LatinSyntaxError(f"unknown with-clause {what!r}", line)
    return op
