"""Translates RheemLatin statements into Rheem plans and runs them.

Code blocks (``{...}``) are Python expressions: unary operators see the
record as ``x``; reducers see ``a`` and ``b``.  Names from the caller's
``env`` (functions, constants, collections) are in scope — the analog of
the paper's ``import '/sgd/udfs.class' AS taggedPointCounter``.

Platform names accept the paper's spelling (``'JavaStreams'``, ``'Spark'``,
``'Flink'``, ``'Postgres'``, ``'Giraph'``, ``'JGraph'``) as aliases of the
simulated engines.  New statement keywords can be registered at runtime
(``Interpreter.register_keyword``), mirroring RheemLatin's configurable
vocabulary.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from ..core.context import DataQuanta, RheemContext
from .lexer import LatinSyntaxError
from .parser import Assign, Dump, OpExpr, Statement, Store, parse

#: Paper platform names -> simulated platform names.
PLATFORM_ALIASES = {
    "javastreams": "pystreams",
    "spark": "sparklite",
    "flink": "flinklite",
    "postgres": "pgres",
    "postgresql": "pgres",
    "giraph": "graphlite",
    "graphchi": "graphchi",
    "jgraph": "jgraph",
}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def resolve_platform(name: str) -> str:
    """Map a user-facing platform name to an engine name."""
    return PLATFORM_ALIASES.get(name.lower(), name.lower())


class Interpreter:
    """Executes RheemLatin scripts against a :class:`RheemContext`."""

    def __init__(self, ctx: RheemContext,
                 env: dict[str, Any] | None = None) -> None:
        self.ctx = ctx
        self.env = dict(env or {})
        self.datasets: dict[str, DataQuanta] = {}
        self.results: dict[str, Any] = {}
        #: Full :class:`ExecutionResult` per executed sink, in script order
        #: (``repro trace`` reads the critical-path trackers off these).
        self.executions: list[Any] = []
        self._handlers: dict[str, Callable[[OpExpr, int], DataQuanta]] = {}

    def register_keyword(
        self, keyword: str,
        handler: Callable[["Interpreter", OpExpr, int], DataQuanta],
    ) -> None:
        """Extend the language with a new statement keyword."""
        self._handlers[keyword.lower()] = lambda op, line: handler(
            self, op, line)

    # -------------------------------------------------------------- running
    def run(self, source: str, **execute_kwargs) -> dict[str, Any]:
        """Parse and execute a script; returns ``dump``/``store`` results
        keyed by dataset name."""
        for statement in parse(source):
            self._execute_statement(statement, **execute_kwargs)
        return self.results

    def _execute_statement(self, statement: Statement,
                           **execute_kwargs) -> None:
        if isinstance(statement, Assign):
            self.datasets[statement.name] = self._build(
                statement.op, statement.line)
        elif isinstance(statement, Store):
            dq = self._dataset(statement.source, statement.line)
            result = dq.write_text_file(statement.path, **execute_kwargs)
            self.executions.append(result)
            self.results[statement.source] = result.output
        elif isinstance(statement, Dump):
            dq = self._dataset(statement.source, statement.line)
            result = dq.execute(**execute_kwargs)
            self.executions.append(result)
            self.results[statement.source] = result.output

    # ------------------------------------------------------------- building
    def _dataset(self, name: str, line: int) -> DataQuanta:
        try:
            return self.datasets[name]
        except KeyError:
            raise LatinSyntaxError(f"unknown dataset {name!r}", line) from None

    def _lambda(self, code: str, params: str) -> Callable:
        try:
            return eval(f"lambda {params}: ({code})", dict(self.env))
        except SyntaxError as exc:
            raise LatinSyntaxError(f"bad code block {code!r}: {exc}", 0) from exc

    def _build(self, op: OpExpr, line: int) -> DataQuanta:
        handler = self._handlers.get(op.keyword)
        if handler is not None:
            dq = handler(op, line)
        else:
            dq = self._build_builtin(op, line)
        if op.platform is not None:
            dq.with_target_platform(resolve_platform(op.platform))
        return dq

    def _build_builtin(self, op: OpExpr, line: int) -> DataQuanta:
        broadcasts = [self._dataset(b, line) for b in op.broadcasts]
        kw = op.keyword
        if kw == "load":
            return self.ctx.read_text_file(op.options["path"])
        if kw == "load_table":
            return self.ctx.read_table(op.options["table"])
        if kw == "load_collection":
            name = op.options["name"]
            if name not in self.env:
                raise LatinSyntaxError(f"no collection {name!r} in env", line)
            return self.ctx.load_collection(self.env[name])
        if kw in ("map", "flatmap", "filter"):
            src = self._dataset(op.sources[0], line)
            # Broadcast values arrive as extra arguments: the code block may
            # reference them as bc[0], bc[1], ...
            fn = self._lambda(op.codes[0], "x, *bc")
            method = {"map": src.map, "flatmap": src.flat_map,
                      "filter": src.filter}[kw]
            return method(fn, broadcasts=broadcasts)
        if kw == "sample":
            src = self._dataset(op.sources[0], line)
            return src.sample(size=op.options["size"],
                              method=op.options.get("method", "random"),
                              broadcasts=broadcasts)
        if kw == "distinct":
            return self._dataset(op.sources[0], line).distinct()
        if kw == "cache":
            return self._dataset(op.sources[0], line).cache()
        if kw == "count":
            return self._dataset(op.sources[0], line).count()
        if kw == "sort":
            return self._dataset(op.sources[0], line).sort(
                key=self._lambda(op.codes[0], "x"))
        if kw == "group":
            return self._dataset(op.sources[0], line).group_by(
                self._lambda(op.codes[0], "x"))
        if kw == "reduce":
            return self._dataset(op.sources[0], line).reduce(
                self._lambda(op.codes[0], "a, b"))
        if kw == "reduceby":
            return self._dataset(op.sources[0], line).reduce_by_key(
                self._lambda(op.codes[0], "x"),
                self._lambda(op.codes[1], "a, b"))
        if kw == "join":
            left = self._dataset(op.sources[0], line)
            right = self._dataset(op.sources[1], line)
            return left.join(right,
                             self._lambda(op.codes[0], "x"),
                             self._lambda(op.codes[1], "x"))
        if kw == "union":
            return self._dataset(op.sources[0], line).union(
                self._dataset(op.sources[1], line))
        if kw == "intersect":
            return self._dataset(op.sources[0], line).intersect(
                self._dataset(op.sources[1], line))
        if kw == "pagerank":
            return self._dataset(op.sources[0], line).pagerank(
                iterations=op.options.get("iterations", 10))
        if kw == "repeat":
            return self._build_repeat(op, line)
        raise LatinSyntaxError(f"unknown operation {op.keyword!r}", line)

    # ---------------------------------------------------------------- loops
    def _build_repeat(self, op: OpExpr, line: int) -> DataQuanta:
        """``X = repeat N { ... };``

        The loop variable is the (single) already-defined dataset that the
        block reassigns; every other already-defined dataset the block reads
        becomes a loop-invariant input (the paper's Listing 1 pattern).
        """
        body_source = op.codes[0]
        body_statements = parse(body_source)
        assigned = [s.name for s in body_statements if isinstance(s, Assign)]
        loop_vars = [n for n in dict.fromkeys(assigned) if n in self.datasets]
        if len(loop_vars) != 1:
            raise LatinSyntaxError(
                "repeat block must reassign exactly one existing dataset "
                f"(found {loop_vars})", line)
        loop_var = loop_vars[0]
        referenced = set()
        for s in body_statements:
            if isinstance(s, Assign):
                referenced.update(s.op.sources)
                referenced.update(s.op.broadcasts)
        invariants = sorted(
            name for name in referenced
            if name in self.datasets and name != loop_var
            and name not in assigned)

        def body(loop_handle: DataQuanta, *inv_handles: DataQuanta
                 ) -> DataQuanta:
            saved = dict(self.datasets)
            self.datasets[loop_var] = loop_handle
            for name, handle in zip(invariants, inv_handles):
                self.datasets[name] = handle
            for s in body_statements:
                if not isinstance(s, Assign):
                    raise LatinSyntaxError(
                        "repeat blocks may only contain assignments", s.line)
                self.datasets[s.name] = self._build(s.op, s.line)
            out = self.datasets[loop_var]
            self.datasets.clear()
            self.datasets.update(saved)
            return out

        return self.datasets[loop_var].repeat(
            op.options["iterations"], body,
            invariants=[self.datasets[n] for n in invariants])


def run_script(source: str, ctx: RheemContext | None = None,
               env: dict[str, Any] | None = None,
               **execute_kwargs) -> dict[str, Any]:
    """One-shot helper: interpret a script, return dumped/stored results."""
    interpreter = Interpreter(ctx or RheemContext(), env)
    return interpreter.run(source, **execute_kwargs)
