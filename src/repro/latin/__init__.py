"""RheemLatin: the PigLatin-inspired data-flow language (Section 5)."""

from .lexer import LatinSyntaxError, Token, tokenize
from .parser import Assign, Dump, OpExpr, Store, parse
from .translator import (
    Interpreter,
    PLATFORM_ALIASES,
    resolve_platform,
    run_script,
)

__all__ = [
    "LatinSyntaxError",
    "Token",
    "tokenize",
    "Assign",
    "Dump",
    "OpExpr",
    "Store",
    "parse",
    "Interpreter",
    "PLATFORM_ALIASES",
    "resolve_platform",
    "run_script",
]
