"""repro: a Python reproduction of RHEEM, the cross-platform data
processing system (PVLDB 2018 / ICDE 2018 tutorial).

Quickstart::

    from repro import RheemContext

    ctx = RheemContext()
    ctx.vfs.write("hdfs://data/lines.txt", ["a b", "b c"], sim_factor=1.0)
    result = (ctx.read_text_file("hdfs://data/lines.txt")
                 .flat_map(str.split)
                 .map(lambda w: (w, 1))
                 .reduce_by_key(lambda t: t[0],
                                lambda a, b: (a[0], a[1] + b[1]))
                 .collect())
"""

from .core.context import DataQuanta, RheemContext
from .core.executor import ExecutionResult, Sniffer
from .core.plan import RheemPlan

__version__ = "1.0.0"

__all__ = ["DataQuanta", "RheemContext", "ExecutionResult", "Sniffer",
           "RheemPlan", "__version__"]
