"""Command-line entry point.

Usage::

    python -m repro run SCRIPT.latin [--profile] [--abstracts PCT]
    python -m repro trace SCRIPT.latin [--out job.trace.json]
    python -m repro serve [--port 8642] [--backend thread|process]
                          [--jobs N] [--queue-size N]
                          [--deadline SECONDS] [--tenant-quota N]
                          [--calibrate]
    python -m repro learn [--jobs N] [--out params.json]
    python -m repro lint SCRIPT.{py,latin}

``run`` executes a RheemLatin script against a fresh context (optionally
pre-seeding the virtual HDFS with the benchmark corpora so scripts have
something to read); ``dump``ed results are printed, and ``--profile``
appends the wall-clock span tree, metrics and simulated stage timelines.
``trace`` runs the script with tracing enabled and writes a Chrome
trace-event file (open it in ``chrome://tracing`` or Perfetto).
``serve`` exposes the REST interface (``POST /jobs`` with a JSON job
document) through the concurrent job server — ``--jobs`` workers (pool
threads, or with ``--backend process`` one context-replica process each,
scaling past the GIL), a bounded admission queue (429 + ``Retry-After``
on overflow), optional per-job deadlines and per-tenant fair-share
quotas — via a threading wsgiref server; Ctrl-C drains the queue before
exiting.  With ``--calibrate`` the server closes the trace → cost-model
loop online: committed job traces feed a bounded calibration corpus and
a genetic refit republishes cost parameters to every worker once enough
(or sufficiently drifted) samples accumulate.  ``learn`` is the offline
variant: it generates (or loads) execution logs, fits the cost model
off-line and writes the learned parameters to a JSON file that
``cost_params`` in a job document or ``load_params`` can consume.
``lint`` executes a Python or RheemLatin script
under the static analyzer and prints every diagnostic raised against the
plans it builds; the exit status is 1 when any error-severity diagnostic
fires, else 0.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Any

from . import RheemContext
from .latin import Interpreter
from .workloads import write_abstracts, write_pagelinks


def _context_from_options(no_cache: bool, no_reuse: bool,
                          abstracts: float, pagelinks: float) -> RheemContext:
    """Build a context from plain options (module-level and picklable on
    purpose: the process-backend job server ships it — via
    ``functools.partial`` — into worker shards under any multiprocessing
    start method)."""
    ctx = RheemContext()
    if no_cache:
        ctx.plan_cache.enabled = False
        ctx.graph.caching = False
    if no_reuse:
        ctx.result_store.enabled = False
    if abstracts:
        write_abstracts(ctx, "hdfs://data/abstracts.txt", abstracts)
    if pagelinks:
        write_pagelinks(ctx, "hdfs://data/pagelinks.txt", pagelinks)
    return ctx


def _build_context(args: argparse.Namespace) -> RheemContext:
    return _context_from_options(
        getattr(args, "no_cache", False), getattr(args, "no_reuse", False),
        args.abstracts, args.pagelinks)


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.script) as handle:
        source = handle.read()
    ctx = _build_context(args)
    if args.profile:
        ctx.enable_tracing()
    interpreter = Interpreter(ctx)
    results = interpreter.run(source)
    for name, value in results.items():
        preview = value if len(value) <= 20 else value[:20]
        print(f"{name}: {preview}")
        if len(value) > 20:
            print(f"  ... ({len(value)} records total)")
    if args.profile:
        from .studio import render_profile

        print("--- profile ---")
        print(render_profile(interpreter.executions, ctx.tracer,
                             ctx.metrics), end="")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import write_chrome_trace

    with open(args.script) as handle:
        source = handle.read()
    ctx = _build_context(args)
    tracer = ctx.enable_tracing()
    interpreter = Interpreter(ctx)
    interpreter.run(source)
    trackers = [result.tracker for result in interpreter.executions]
    out_path = args.out or f"{args.script}.trace.json"
    with open(out_path, "w") as handle:
        events = write_chrome_trace(handle, tracer, trackers, ctx.metrics)
    print(f"wrote {events} trace events ({len(trackers)} job(s)) "
          f"to {out_path}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load "
          "the file to inspect the timelines")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import socketserver
    from wsgiref.simple_server import WSGIServer, make_server

    from .server import JobServer, make_wsgi_app

    class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
        """Concurrent HTTP handling feeding the bounded job queue."""

        daemon_threads = True

    calibration: dict[str, Any] = {}
    if args.calibrate_min_samples is not None:
        calibration["min_samples"] = args.calibrate_min_samples
    if args.calibrate_drift is not None:
        calibration["drift_threshold"] = args.calibrate_drift
    common: dict[str, Any] = dict(
        workers=args.jobs, queue_size=args.queue_size,
        default_deadline_s=args.deadline, stage_threads=args.stage_threads,
        backend=args.backend, tenant_quota=args.tenant_quota,
        calibrate=args.calibrate, calibration=calibration)
    if args.backend == "process":
        factory = functools.partial(
            _context_from_options, getattr(args, "no_cache", False),
            getattr(args, "no_reuse", False), args.abstracts, args.pagelinks)
        job_server = JobServer(context_factory=factory, **common)
    else:
        job_server = JobServer(_build_context(args), **common)
    httpd = make_server("127.0.0.1", args.port, make_wsgi_app(job_server),
                        server_class=ThreadingWSGIServer)
    unit = "process shard(s)" if args.backend == "process" else "thread(s)"
    print(f"rheem job server on http://127.0.0.1:{args.port}/jobs "
          f"({args.jobs} {unit}, queue {args.queue_size}, "
          f"deadline {args.deadline or 'none'}, "
          f"tenant quota {args.tenant_quota or 'none'}, "
          f"calibration {'on' if args.calibrate else 'off'})")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("draining job queue ...")
    finally:
        job_server.shutdown(drain=True)
        httpd.server_close()
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    import json

    from .learn import (GeneticCostLearner, LogGenerator, observation_from_json,
                        save_params)
    from .simulation.cluster import VirtualCluster

    if args.observations:
        with open(args.observations) as handle:
            docs = json.load(handle)
        records = [observation_from_json(doc) for doc in docs]
        print(f"loaded {len(records)} stage observations "
              f"from {args.observations}")
    else:
        print("generating the execution-log corpus "
              "(pipeline/iterative/merge topologies) ...")
        records = LogGenerator().generate()
        print(f"generated {len(records)} stage observations")
    if not records:
        print("repro learn: no observations to fit against", file=sys.stderr)
        return 1
    learner = GeneticCostLearner(VirtualCluster(), records, seed=args.seed)
    result = learner.fit(population_size=args.population,
                         generations=args.generations)
    print(f"fit {len(result.params)} (platform, operator-kind) parameter "
          f"pairs over {result.generations} generation(s), "
          f"final loss {result.loss:.4f}")
    save_params(result.params, args.out)
    print(f"wrote learned cost parameters to {args.out}")
    return 0


def _cmd_lint_concurrency() -> int:
    from .analysis.locks import check_package
    from .concurrency import LOCK_ORDER

    findings = check_package()
    for finding in findings:
        print(finding.render())
    print(f"concurrency: {len(LOCK_ORDER)} locks in the registry, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import runpy

    from .analysis.collector import collecting
    from .core.optimizer import PlanAnalysisError
    from .core.plan import PlanValidationError

    if args.concurrency:
        status = _cmd_lint_concurrency()
        if args.script is None:
            return status
        if status:
            return status
    elif args.script is None:
        print("repro lint: a script is required unless --concurrency is "
              "given", file=sys.stderr)
        return 2

    if not os.path.exists(args.script):
        print(f"repro lint: cannot read {args.script!r}: no such file",
              file=sys.stderr)
        return 2

    script_error: Exception | None = None
    with collecting() as collector:
        try:
            if args.script.endswith(".latin"):
                with open(args.script) as handle:
                    source = handle.read()
                Interpreter(_build_context(args)).run(source)
            else:
                runpy.run_path(args.script, run_name="__main__")
        except (PlanAnalysisError, PlanValidationError) as exc:
            # The analyzer (or the plan constructor) already refused the
            # plan; its diagnostics are in the collector / the exception.
            script_error = exc
        reports = collector.finalize()

    diagnostics = [d for _, report in reports for d in report]
    if script_error is not None and not diagnostics:
        diagnostics = list(getattr(script_error, "diagnostics", []))

    errors = 0
    for diag in diagnostics:
        print(diag.render())
        errors += diag.severity.name == "ERROR"
    plural = "s" if len(reports) != 1 else ""
    print(f"{len(reports)} plan{plural} analyzed: "
          f"{len(diagnostics)} diagnostic(s), {errors} error(s)")
    if script_error is not None and not errors:
        print(f"error: {script_error}", file=sys.stderr)
        return 1
    return 1 if errors else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="RHEEM reproduction command line")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="execute a RheemLatin script")
    run.add_argument("script", help="path to the .latin script")
    run.add_argument("--profile", action="store_true",
                     help="print a span/metrics profile after the run")
    trace = sub.add_parser(
        "trace", help="execute a script and write a Chrome trace file")
    trace.add_argument("script", help="path to the .latin script")
    trace.add_argument("--out", default=None,
                       help="trace file path (default: SCRIPT.trace.json)")
    serve = sub.add_parser("serve", help="start the REST service")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--backend", choices=("thread", "process"),
                       default="thread",
                       help="worker backend: 'thread' shares one context "
                            "behind the GIL; 'process' runs one context "
                            "replica per worker process with sticky "
                            "plan-fingerprint routing (default: thread)")
    serve.add_argument("--jobs", type=int, default=4,
                       help="workers in the job pool: threads, or shard "
                            "processes with --backend process (default 4)")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       dest="tenant_quota",
                       help="max concurrently running jobs per tenant; "
                            "excess stays queued while other tenants "
                            "overtake (default: no cap)")
    serve.add_argument("--queue-size", type=int, default=16,
                       dest="queue_size",
                       help="jobs allowed to wait beyond the running ones "
                            "before admission control rejects (default 16)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-job deadline in seconds "
                            "(measured from admission; default: none)")
    serve.add_argument("--stage-threads", type=int, default=None,
                       dest="stage_threads",
                       help="total intra-job stage-lane budget across all "
                            "workers; each job gets stage-threads/jobs "
                            "lanes (default: 2x --jobs)")
    serve.add_argument("--calibrate", action="store_true",
                       help="close the trace -> cost-model loop online: "
                            "committed job traces accumulate into a bounded "
                            "calibration corpus; once enough (or drifted) "
                            "samples arrive a genetic refit republishes the "
                            "cost parameters to every worker")
    serve.add_argument("--calibrate-min-samples", type=int, default=None,
                       dest="calibrate_min_samples",
                       help="stage samples that trigger a refit "
                            "(default 24)")
    serve.add_argument("--calibrate-drift", type=float, default=None,
                       dest="calibrate_drift",
                       help="relative prediction-error moving average that "
                            "triggers an early refit (default 0.35)")
    learn = sub.add_parser(
        "learn", help="fit the cost model offline and save the parameters")
    learn.add_argument("--out", default="learned_params.json",
                       help="where to write the learned parameters "
                            "(default: learned_params.json)")
    learn.add_argument("--observations", default=None,
                       help="JSON file with a list of stage observations "
                            "(as produced by the calibration corpus) to fit "
                            "against instead of generating a fresh log")
    learn.add_argument("--population", type=int, default=60,
                       help="GA population size (default 60)")
    learn.add_argument("--generations", type=int, default=120,
                       help="GA generations (default 120)")
    learn.add_argument("--seed", type=int, default=7,
                       help="GA random seed (default 7)")
    lint = sub.add_parser(
        "lint", help="statically analyze the plans a script builds "
                     "and/or the runtime's lock discipline")
    lint.add_argument("script", nargs="?", default=None,
                      help="path to a .py or .latin script (optional "
                           "with --concurrency)")
    lint.add_argument("--concurrency", action="store_true",
                      help="check the repro source tree against the lock "
                           "registry: rank inversions, undeclared locks, "
                           "blocking calls under a lock, unguarded writes")
    for p in (run, trace, serve, lint):
        p.add_argument("--abstracts", type=float, default=0.0,
                       help="seed hdfs://data/abstracts.txt at this percent")
        p.add_argument("--pagelinks", type=float, default=0.0,
                       help="seed hdfs://data/pagelinks.txt at this percent")
        p.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the optimizer's conversion-path and "
                            "execution-plan caches")
        p.add_argument("--no-reuse", action="store_true", dest="no_reuse",
                       help="disable cross-job reuse of committed "
                            "intermediate results")

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        print("repro: error: a subcommand is required "
              "(run, trace, serve, learn or lint)", file=sys.stderr)
        return 2
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "learn":
        return _cmd_learn(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
