"""Command-line entry point.

Usage::

    python -m repro run SCRIPT.latin [--abstracts PCT] [--pagelinks PCT]
    python -m repro serve [--port 8642]

``run`` executes a RheemLatin script against a fresh context (optionally
pre-seeding the virtual HDFS with the benchmark corpora so scripts have
something to read); ``dump``ed results are printed.  ``serve`` exposes the
REST interface (``POST /jobs`` with a JSON job document) via wsgiref.
"""

from __future__ import annotations

import argparse
import sys

from . import RheemContext
from .latin import Interpreter
from .workloads import write_abstracts, write_pagelinks


def _build_context(args: argparse.Namespace) -> RheemContext:
    ctx = RheemContext()
    if args.abstracts:
        write_abstracts(ctx, "hdfs://data/abstracts.txt", args.abstracts)
    if args.pagelinks:
        write_pagelinks(ctx, "hdfs://data/pagelinks.txt", args.pagelinks)
    return ctx


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.script) as handle:
        source = handle.read()
    interpreter = Interpreter(_build_context(args))
    results = interpreter.run(source)
    for name, value in results.items():
        preview = value if len(value) <= 20 else value[:20]
        print(f"{name}: {preview}")
        if len(value) > 20:
            print(f"  ... ({len(value)} records total)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from wsgiref.simple_server import make_server

    from .api import RheemService, wsgi_app

    service = RheemService(_build_context(args))
    server = make_server("127.0.0.1", args.port, wsgi_app(service))
    print(f"rheem REST service on http://127.0.0.1:{args.port}/jobs")
    server.serve_forever()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="RHEEM reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a RheemLatin script")
    run.add_argument("script", help="path to the .latin script")
    serve = sub.add_parser("serve", help="start the REST service")
    serve.add_argument("--port", type=int, default=8642)
    for p in (run, serve):
        p.add_argument("--abstracts", type=float, default=0.0,
                       help="seed hdfs://data/abstracts.txt at this percent")
        p.add_argument("--pagelinks", type=float, default=0.0,
                       help="seed hdfs://data/pagelinks.txt at this percent")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_serve(args)


if __name__ == "__main__":
    sys.exit(main())
