"""Static concurrency checker: machine-checked lock order for the tree.

``python -m repro lint --concurrency`` runs this AST pass over
``src/repro/`` and reports:

========  ==========================================================
id        finding
========  ==========================================================
RC001     a lock the registry does not know: raw ``threading.Lock``/
          ``RLock`` construction, an ``OrderedLock`` with a
          non-literal or undeclared name, a binding that contradicts
          the registry's declared owner, or a declared lock that is
          never constructed
RC002     rank inversion: a lock acquired (directly or through a
          resolved call chain) while holding a lock of equal or
          higher rank
RC003     a declared lock held across a potentially blocking call
          (``Future.result``, executor ``submit``/``shutdown``,
          ``Queue.get``-style ``wait``, ``sleep``)
RC004     a write to a registry-guarded shared attribute outside its
          guarding lock
RC005     mutable instance state written inside an execution hot path
          (``execute``/``_run`` of an ``ExecutionOperator`` subclass):
          cached plans share operator instances across loop iterations
          and concurrently executing jobs, so per-run values must be
          threaded through the call, not stored on ``self``
========  ==========================================================

The pass is deliberately conservative where Python's dynamism defeats
static resolution: it resolves ``with`` targets through literal
``OrderedLock("<name>")`` construction sites, the registry's declared
owner attributes, well-known parameter names (``job_lock``) and simple
aliasing assignments; call edges are followed for ``self`` methods,
module-level functions, enclosing-scope closures, and receivers whose
attribute name has a declared type (:data:`repro.concurrency.order.
ATTR_TYPES`).  Unresolvable expressions are skipped, never guessed.

Conventions honoured (and relied on by the runtime):

* methods named ``*_locked`` assume the caller holds the lock — writes
  inside them are exempt from RC004 and blocking calls inside them are
  still flagged by RC003;
* ``__init__`` is exempt from RC004 (construction happens-before
  publication);
* a ``# lock-ok:`` comment on (or directly above) the offending line
  waives a finding, with the comment text as the audit trail.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..concurrency.order import (
    ATTR_TYPES,
    BLOCKING_ATTRS,
    LOCK_ORDER,
    PARAM_LOCKS,
    RAW_LOCK_OK,
    LockSpec,
)
from .diagnostics import Severity

#: Raw ``threading`` primitives whose direct construction RC001 flags.
_RAW_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Barrier"})

#: Method names that mutate their receiver in place (RC004, RC005).
_MUTATORS = frozenset(
    {"append", "add", "clear", "update", "pop", "popitem", "setdefault",
     "move_to_end", "remove", "discard", "extend", "insert"})

#: Methods that run per-execution on shared operator instances (RC005).
_EXEC_METHODS = frozenset({"execute", "_run"})

#: Root of the class hierarchy RC005 applies to.
_EXEC_OPERATOR_ROOT = "ExecutionOperator"

#: Waiver marker: a line (or the line above) containing it is exempt.
WAIVER_MARK = "lock-ok:"


@dataclass(frozen=True)
class ConcurrencyFinding:
    """One checker finding, anchored at a source line."""

    rule_id: str
    message: str
    path: str
    line: int
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        return (f"{self.rule_id} {str(self.severity):<7}"
                f"{self.path}:{self.line}: {self.message}")

    def __str__(self) -> str:
        return self.render()


# ------------------------------------------------------------------ helpers
def _attr_chain(expr: ast.expr) -> Optional[tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for anything fancier."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _self_path(expr: ast.expr) -> Optional[tuple[str, ...]]:
    """The attribute path of an expression rooted at ``self``.

    Subscripts unwrap to the container's path (``self.a[k]`` mutates
    ``self.a``).
    """
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    chain = _attr_chain(node)
    if chain and chain[0] == "self" and len(chain) > 1:
        return chain[1:]
    return None


def _lock_ctor_name(call: ast.Call) -> Optional[str]:
    """``"OrderedLock"``/``"OrderedRLock"`` if ``call`` constructs one."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in ("OrderedLock", "OrderedRLock") else None


def _raw_lock_name(call: ast.Call) -> Optional[str]:
    """The primitive name if ``call`` constructs a raw threading lock."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "threading" \
            and func.attr in _RAW_PRIMITIVES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _RAW_PRIMITIVES:
        return func.id
    return None


def _is_metrics_chain(call: ast.Call) -> bool:
    """``<x>.counter(n).inc()`` / ``.gauge(n).set()`` / ``.histogram(n)
    .observe()`` — the canonical instrument-update idiom, which takes the
    innermost metrics lock."""
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and func.attr in ("inc", "set", "observe")):
        return False
    inner = func.value
    return (isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr in ("counter", "gauge", "histogram"))


# --------------------------------------------------------------- model
@dataclass
class _FunctionInfo:
    """Everything the checker learned about one function."""

    key: str
    module: str
    cls: Optional[str]
    name: str
    node: ast.FunctionDef
    local_locks: dict[str, str] = field(default_factory=dict)
    #: Lock names acquired lexically (``with`` blocks) in this function.
    lexical: set[str] = field(default_factory=set)
    #: Unresolved callee descriptors (resolved against the global table).
    callees: set[tuple[str, ...]] = field(default_factory=set)
    #: Calls made while lexically holding locks:
    #: (held lock names, callee descriptor, line).
    held_calls: list[tuple[tuple[str, ...], tuple[str, ...], int]] = field(
        default_factory=list)
    #: Transitive acquisition summary (filled by the fixed point).
    acquires: set[str] = field(default_factory=set)


class _Registry:
    """Resolution tables derived from :data:`LOCK_ORDER`."""

    def __init__(self, order: Sequence[LockSpec]) -> None:
        self.specs = {spec.name: spec for spec in order}
        #: (module, class-or-None, attr) -> lock name, from spec owners.
        self.attr_locks: dict[tuple[str, Optional[str], str], str] = {}
        #: (module, class) -> {guard path tuple -> lock name}
        self.guards: dict[tuple[str, str], dict[tuple[str, ...], str]] = {}
        for spec in order:
            for owner in spec.owners:
                module, _, dotted = owner.partition(":")
                parts = dotted.split(".")
                if len(parts) == 1:
                    self.attr_locks[(module, None, parts[0])] = spec.name
                else:
                    self.attr_locks[(module, parts[0], parts[1])] = spec.name
            for guard in spec.guards:
                cls, *path = guard.split(".")
                for owner in spec.owners:
                    module = owner.partition(":")[0]
                    self.guards.setdefault((module, cls), {})[
                        tuple(path)] = spec.name

    def rank(self, name: str) -> int:
        return self.specs[name].rank

    def reentrant(self, name: str) -> bool:
        return self.specs[name].reentrant


class _Checker:
    """Scans a set of modules, then runs the global analyses."""

    def __init__(self, registry: Optional[_Registry] = None) -> None:
        self.registry = registry or _Registry(LOCK_ORDER)
        self.functions: dict[str, _FunctionInfo] = {}
        self.findings: list[ConcurrencyFinding] = []
        #: Lock names seen at an ``OrderedLock(...)`` construction site.
        self.constructed: set[str] = set()
        self._module = ""
        self._path = ""
        self._lines: list[str] = []
        #: Module-level lock bindings of the current module.
        self._module_locks: dict[str, dict[str, str]] = {}
        self._module_paths: dict[str, str] = {}
        self._module_lines: dict[str, list[str]] = {}
        #: Class simple name -> base simple names, merged across modules
        #: (the tree has no operator-class name collisions).
        self._class_bases: dict[str, set[str]] = {}
        #: Candidate RC005 sites: (module, class, method, line, target).
        self._exec_writes: list[tuple[str, str, str, int, str]] = []

    # ------------------------------------------------------------ intake
    def scan_module(self, module: str, source: str, path: str) -> None:
        self._module = module
        self._path = path
        self._lines = source.splitlines()
        self._module_paths[module] = path
        self._module_lines[module] = self._lines
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - tree always parses
            self._add("RC001", exc.lineno or 1, f"cannot parse: {exc.msg}")
            return
        module_locks = self._module_locks.setdefault(module, {})
        # Module-level bindings and raw-lock sweep first, so function
        # bodies can resolve module-level names.
        for node in tree.body:
            bound = self._lock_binding(node)
            if bound is not None:
                target, lock_name = bound
                module_locks[target] = lock_name
        self._sweep_raw_locks(tree)
        self._collect_functions(tree.body, cls=None, prefix=f"{module}:",
                                inherited={})

    def _sweep_raw_locks(self, tree: ast.AST) -> None:
        if self._module in RAW_LOCK_OK:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            raw = _raw_lock_name(node)
            if raw is not None and not self._waived(node.lineno):
                self._add(
                    "RC001", node.lineno,
                    f"raw threading.{raw}() construction; shared locks must "
                    f"be OrderedLock/OrderedRLock instances declared in "
                    f"repro.concurrency.order.LOCK_ORDER")

    def _lock_binding(self, stmt: ast.stmt) -> Optional[tuple[str, str]]:
        """``NAME = OrderedLock("x", ...)`` at the current scope."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        name = self._ordered_lock_name(stmt.value)
        return (target.id, name) if name is not None else None

    def _ordered_lock_name(self, expr: ast.expr) -> Optional[str]:
        """The literal registry name if ``expr`` constructs an ordered
        lock; emits RC001 for non-literal or undeclared names."""
        if not isinstance(expr, ast.Call):
            return None
        ctor = _lock_ctor_name(expr)
        if ctor is None:
            return None
        if not expr.args or not isinstance(expr.args[0], ast.Constant) \
                or not isinstance(expr.args[0].value, str):
            self._add("RC001", expr.lineno,
                      f"{ctor} name must be a string literal so the static "
                      f"checker can resolve its rank")
            return None
        name = expr.args[0].value
        if name not in self.registry.specs:
            self._add("RC001", expr.lineno,
                      f"{ctor}({name!r}) is not declared in "
                      f"repro.concurrency.order.LOCK_ORDER")
            return None
        self.constructed.add(name)
        spec = self.registry.specs[name]
        want_rlock = spec.reentrant
        if want_rlock != (ctor == "OrderedRLock"):
            self._add("RC001", expr.lineno,
                      f"{ctor}({name!r}) does not match the registry kind "
                      f"{spec.kind!r}")
        return name

    # --------------------------------------------------- function intake
    def _collect_functions(self, body: Iterable[ast.stmt],
                           cls: Optional[str], prefix: str,
                           inherited: dict[str, str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)
            elif isinstance(stmt, ast.FunctionDef):
                self._collect_one(stmt, cls, prefix, inherited)

    def _collect_class(self, node: ast.ClassDef) -> None:
        bases = self._class_bases.setdefault(node.name, set())
        for base in node.bases:
            chain = _attr_chain(base)
            if chain:
                bases.add(chain[-1])
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                self._collect_one(stmt, node.name,
                                  f"{self._module}:{node.name}.", {})

    def _collect_one(self, node: ast.FunctionDef, cls: Optional[str],
                     prefix: str, inherited: dict[str, str]) -> None:
        key = f"{prefix}{node.name}"
        info = _FunctionInfo(key=key, module=self._module, cls=cls,
                             name=node.name, node=node,
                             local_locks=dict(inherited))
        # Parameter hints and attribute bindings first, then the walk.
        for arg in (list(node.args.posonlyargs) + list(node.args.args)
                    + list(node.args.kwonlyargs)):
            hint = PARAM_LOCKS.get(arg.arg)
            if hint is not None:
                info.local_locks[arg.arg] = hint
        self.functions[key] = info
        self._prebind_locals(node.body, info)
        self._register_attr_bindings(node.body, cls)
        if cls is not None and node.name in _EXEC_METHODS:
            self._collect_exec_writes(node, cls)
        self._walk(node.body, info, held=[])

    def _collect_exec_writes(self, node: ast.FunctionDef, cls: str) -> None:
        """Record ``self.*`` writes in an execution hot path (RC005)."""
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    for leaf in self._flatten_targets(target):
                        path = _self_path(leaf)
                        if path:
                            self._exec_writes.append(
                                (self._module, cls, node.name, leaf.lineno,
                                 ".".join(("self",) + path)))
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    path = _self_path(func.value)
                    if path:
                        self._exec_writes.append(
                            (self._module, cls, node.name, stmt.lineno,
                             ".".join(("self",) + path) + f".{func.attr}()"))

    def _prebind_locals(self, body: Iterable[ast.stmt],
                        info: _FunctionInfo) -> None:
        """Resolve local lock aliases in statement order (one pass)."""
        for stmt in body:
            if isinstance(stmt, ast.FunctionDef):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign) or \
                        len(node.targets) != 1 or \
                        not isinstance(node.targets[0], ast.Name):
                    continue
                target = node.targets[0].id
                resolved = self._resolve_value(node.value, info)
                if resolved is not None:
                    info.local_locks[target] = resolved

    def _resolve_value(self, expr: ast.expr,
                       info: _FunctionInfo) -> Optional[str]:
        """Lock name an expression evaluates to, if statically known."""
        direct = self._ordered_lock_name(expr) \
            if isinstance(expr, ast.Call) else None
        if direct is not None:
            return direct
        if isinstance(expr, ast.Name):
            if expr.id in info.local_locks:
                return info.local_locks[expr.id]
            return self._module_locks.get(info.module, {}).get(expr.id)
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain and chain[0] == "self" and len(chain) == 2:
                return self.registry.attr_locks.get(
                    (info.module, info.cls, chain[1]))
            if chain and len(chain) == 1:
                return self._module_locks.get(info.module, {}).get(chain[0])
            return None
        if isinstance(expr, ast.IfExp):
            a = self._resolve_value(expr.body, info)
            b = self._resolve_value(expr.orelse, info)
            return a if a is not None and a == b else (a or b)
        return None

    def _register_attr_bindings(self, body: Iterable[ast.stmt],
                                cls: Optional[str]) -> None:
        """``self.X = OrderedLock("n")`` — record and cross-check."""
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign) or \
                        len(node.targets) != 1:
                    continue
                target = node.targets[0]
                chain = _attr_chain(target) \
                    if isinstance(target, ast.Attribute) else None
                if not chain or chain[0] != "self" or len(chain) != 2:
                    continue
                name = self._ordered_lock_name(node.value) \
                    if isinstance(node.value, ast.Call) else None
                if name is None:
                    continue
                lock_key = (self._module, cls, chain[1])
                declared = self.registry.attr_locks.get(lock_key)
                if declared is not None and declared != name:
                    self._add(
                        "RC001", node.lineno,
                        f"self.{chain[1]} is declared as lock {declared!r} "
                        f"in the registry but bound to {name!r} here")
                self.registry.attr_locks[lock_key] = name

    # ----------------------------------------------------------- walking
    def _walk(self, body: Iterable[ast.stmt], info: _FunctionInfo,
              held: list[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.FunctionDef):
                # A nested def: analyzed as its own function against the
                # enclosing lock scope; it does not run here.
                self._collect_one(stmt, info.cls, f"{info.key}.",
                                  info.local_locks)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.With):
                self._walk_with(stmt, info, held)
                continue
            self._scan_exprs(stmt, info, held)
            self._check_write(stmt, info, held)
            for child_body in self._inner_bodies(stmt):
                self._walk(child_body, info, held)

    @staticmethod
    def _inner_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block:
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _walk_with(self, stmt: ast.With, info: _FunctionInfo,
                   held: list[str]) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            self._scan_expr(item.context_expr, info, held)
            name = self._resolve_value(item.context_expr, info)
            if name is None:
                continue
            info.lexical.add(name)
            self._check_acquire(name, held, stmt.lineno)
            held.append(name)
            acquired.append(name)
        self._walk(stmt.body, info, held)
        for _ in acquired:
            held.pop()

    def _check_acquire(self, name: str, held: list[str], line: int) -> None:
        if not held:
            return
        reg = self.registry
        max_rank = max(reg.rank(h) for h in held)
        if reg.rank(name) > max_rank:
            return
        if reg.reentrant(name) and name in held:
            return
        if self._waived(line):
            return
        chain = " -> ".join(f"{h}({reg.rank(h)})" for h in held)
        self._add("RC002", line,
                  f"acquires {name!r} (rank {reg.rank(name)}) while "
                  f"holding {chain}; ranks must strictly increase")

    # ------------------------------------------------------- expressions
    def _scan_exprs(self, stmt: ast.stmt, info: _FunctionInfo,
                    held: list[str]) -> None:
        """Scan the statement's own expressions (not nested blocks)."""
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._scan_expr(node, info, held)

    def _scan_expr(self, expr: ast.expr, info: _FunctionInfo,
                   held: list[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue  # deferred execution
            if not isinstance(node, ast.Call):
                continue
            self._scan_call(node, info, held)

    def _scan_call(self, call: ast.Call, info: _FunctionInfo,
                   held: list[str]) -> None:
        in_locked_helper = info.name.endswith("_locked")
        if _is_metrics_chain(call):
            if held:
                info.held_calls.append(
                    (tuple(held), ("lock", "metrics"), call.lineno))
            info.callees.add(("lock", "metrics"))
            return
        callee = self._callee_descriptor(call, info)
        if callee is not None:
            info.callees.add(callee)
            if held:
                info.held_calls.append((tuple(held), callee, call.lineno))
        if (held or in_locked_helper) and self._is_blocking(call) \
                and not self._waived(call.lineno):
            where = ("under " + ", ".join(repr(h) for h in held) if held
                     else f"in {info.name} (caller holds a lock by "
                          f"convention)")
            target = self._call_repr(call)
            self._add("RC003", call.lineno,
                      f"potentially blocking call {target} {where}; a lock "
                      f"held across it can deadlock the worker pool")

    @staticmethod
    def _call_repr(call: ast.Call) -> str:
        chain = _attr_chain(call.func)
        return ".".join(chain) + "()" if chain else "<call>()"

    def _is_blocking(self, call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        name = func.attr
        if name in BLOCKING_ATTRS:
            return True
        # Queue.get blocks; dict.get does not.  Only flag `.get()` when
        # the receiver's name says queue.
        if name in ("get", "get_nowait", "join"):
            chain = _attr_chain(func.value)
            return bool(chain) and "queue" in chain[-1].lower()
        return False

    def _callee_descriptor(self, call: ast.Call,
                           info: _FunctionInfo) -> Optional[tuple[str, ...]]:
        func = call.func
        if isinstance(func, ast.Name):
            return ("scope", info.key, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 2 and info.cls is not None:
            return ("method", info.module, info.cls, chain[1])
        receiver = chain[-2]
        typed = ATTR_TYPES.get(receiver)
        if typed is not None:
            return ("typed", typed, chain[-1])
        return None

    # ------------------------------------------------------------ writes
    def _check_write(self, stmt: ast.stmt, info: _FunctionInfo,
                     held: list[str]) -> None:
        if info.cls is None or info.name == "__init__" \
                or info.name.endswith("_locked"):
            return
        guards = self.registry.guards.get((info.module, info.cls))
        if not guards:
            return
        paths: list[tuple[tuple[str, ...], int]] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                for leaf in self._flatten_targets(target):
                    path = _self_path(leaf)
                    if path:
                        paths.append((path, leaf.lineno))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                path = _self_path(target)
                if path:
                    paths.append((path, target.lineno))
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                path = _self_path(func.value)
                if path:
                    paths.append((path, stmt.value.lineno))
        for path, line in paths:
            for guard_path, lock_name in guards.items():
                overlap = (path[:len(guard_path)] == guard_path
                           or guard_path[:len(path)] == path)
                if not overlap or lock_name in held:
                    continue
                if self._waived(line):
                    continue
                dotted = ".".join(("self",) + path)
                self._add(
                    "RC004", line,
                    f"writes {dotted} outside its guarding lock "
                    f"{lock_name!r} (declared in the lock registry)")

    @staticmethod
    def _flatten_targets(target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.expr] = []
            for elt in target.elts:
                out.extend(_Checker._flatten_targets(elt))
            return out
        return [target]

    # ------------------------------------------------------ global phase
    def finalize(self, require_all_locks: bool = False
                 ) -> list[ConcurrencyFinding]:
        """Run the interprocedural fixed point and return all findings."""
        resolved: dict[str, set[str]] = {}
        for key, info in self.functions.items():
            resolved[key] = {
                target for callee in info.callees
                for target in [self._resolve_callee(callee)]
                if target is not None and target in self.functions}
            info.acquires = set(info.lexical)
            for callee in info.callees:
                if callee[0] == "lock":
                    info.acquires.add(callee[1])
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                for target in resolved[key]:
                    extra = self.functions[target].acquires - info.acquires
                    if extra:
                        info.acquires |= extra
                        changed = True
        for info in self.functions.values():
            for held, callee, line in info.held_calls:
                acquired: set[str] = set()
                if callee[0] == "lock":
                    acquired = {callee[1]}
                else:
                    target = self._resolve_callee(callee)
                    if target is not None and target in self.functions:
                        acquired = self.functions[target].acquires
                self._emit_call_edges(info, held, acquired, line)
        self._emit_exec_writes()
        if require_all_locks:
            for spec in LOCK_ORDER:
                if spec.name not in self.constructed:
                    self.findings.append(ConcurrencyFinding(
                        "RC001",
                        f"lock {spec.name!r} is declared in the registry "
                        f"but never constructed as an ordered lock",
                        path="<registry>", line=0))
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return self.findings

    def _emit_exec_writes(self) -> None:
        """RC005: instance-state writes inside operator execution paths."""
        operator_classes = {_EXEC_OPERATOR_ROOT}
        changed = True
        while changed:
            changed = False
            for cls_name, bases in self._class_bases.items():
                if cls_name not in operator_classes \
                        and bases & operator_classes:
                    operator_classes.add(cls_name)
                    changed = True
        for module, cls, method, line, target in self._exec_writes:
            if cls not in operator_classes or self._waived_in(module, line):
                continue
            self.findings.append(ConcurrencyFinding(
                "RC005",
                f"{cls}.{method} writes {target}: mutable instance state "
                f"in an execution hot path; cached plans share operator "
                f"instances across loop iterations and concurrent jobs — "
                f"thread the value through the call instead",
                path=self._module_paths.get(module, module), line=line))

    def _emit_call_edges(self, info: _FunctionInfo, held: tuple[str, ...],
                         acquired: set[str], line: int) -> None:
        reg = self.registry
        max_rank = max(reg.rank(h) for h in held)
        for name in sorted(acquired):
            if reg.rank(name) > max_rank:
                continue
            if reg.reentrant(name) and name in held:
                continue
            if self._waived_in(info.module, line):
                continue
            chain = " -> ".join(f"{h}({reg.rank(h)})" for h in held)
            self.findings.append(ConcurrencyFinding(
                "RC002",
                f"call chain from {info.key} acquires {name!r} (rank "
                f"{reg.rank(name)}) while holding {chain}; ranks must "
                f"strictly increase",
                path=self._module_paths.get(info.module, info.module),
                line=line))

    def _resolve_callee(self, callee: tuple[str, ...]) -> Optional[str]:
        kind = callee[0]
        if kind == "lock":
            return None
        if kind == "method":
            _, module, cls, name = callee
            return f"{module}:{cls}.{name}"
        if kind == "typed":
            _, typekey, name = callee
            module, _, cls = typekey.partition(":")
            return f"{module}:{cls}.{name}"
        if kind == "scope":
            _, caller_key, name = callee
            # Innermost enclosing scope first, then module level.
            prefix = caller_key
            while ":" in prefix:
                candidate = f"{prefix}.{name}"
                if candidate in self.functions:
                    return candidate
                base, sep, _ = prefix.rpartition(".")
                if not sep:
                    break
                prefix = base
            module = caller_key.partition(":")[0]
            return f"{module}:{name}"
        return None

    # --------------------------------------------------------- plumbing
    def _waived(self, line: int) -> bool:
        return self._waived_lines(self._lines, line)

    def _waived_in(self, module: str, line: int) -> bool:
        return self._waived_lines(
            self._module_lines.get(module, self._lines), line)

    @staticmethod
    def _waived_lines(lines: list[str], line: int) -> bool:
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(lines) and WAIVER_MARK in lines[lineno - 1]:
                return True
        return False

    def _add(self, rule_id: str, line: int, message: str) -> None:
        self.findings.append(ConcurrencyFinding(
            rule_id, message, path=self._path, line=line))


# ----------------------------------------------------------------- API
def check_modules(modules: Iterable[tuple[str, str, str]],
                  require_all_locks: bool = False
                  ) -> list[ConcurrencyFinding]:
    """Check ``(module_name, source, path)`` triples as one program."""
    checker = _Checker()
    for module, source, path in modules:
        checker.scan_module(module, source, path)
    return checker.finalize(require_all_locks=require_all_locks)


def check_source(source: str, module: str = "fixture",
                 path: str = "<fixture>") -> list[ConcurrencyFinding]:
    """Check one source blob (test fixtures, editor integration)."""
    return check_modules([(module, source, path)])


def package_root() -> Path:
    """The installed ``repro`` package directory (the tree to check)."""
    return Path(__file__).resolve().parent.parent


def check_package(root: Optional[Path] = None) -> list[ConcurrencyFinding]:
    """Check every module under ``root`` (default: the repro package)."""
    base = root if root is not None else package_root()
    modules = []
    for file in sorted(base.rglob("*.py")):
        rel = file.relative_to(base.parent)
        module = ".".join(rel.with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        modules.append((module, file.read_text(), str(file)))
    return check_modules(modules, require_all_locks=True)
