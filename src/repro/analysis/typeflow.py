"""Type-flow inference over data-quantum types (analysis pass 1).

Rheem edges carry *data quanta*; the paper leaves their types implicit.
This pass recovers them: sources seed concrete types (text files yield
strings, relations yield records, collections are sampled), operator
signatures transfer them (``GroupBy`` wraps its input into
``(key, [members])`` pairs, joins produce ``(left, right)`` pairs), and UDF
annotations refine them.  The inference is deliberately *optimistic*: the
unknown type ``any`` unifies with everything, so only provably incompatible
edges are flagged — a lint must not cry wolf on untyped lambdas.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core import operators as ops
from ..core.udf import Udf
from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class QType:
    """A data-quantum type: a kind plus optional element parameters.

    Kinds: ``any`` (unknown), ``text``, ``number``, ``bool``, ``record``
    (dict-shaped), ``list`` (one element param), ``tuple`` (one param per
    component; a 2-tuple is a pair).
    """

    kind: str
    params: tuple["QType", ...] = ()

    def __str__(self) -> str:
        if self.params:
            inner = ", ".join(str(p) for p in self.params)
            return f"{self.kind}[{inner}]"
        return self.kind


ANY = QType("any")
TEXT = QType("text")
NUMBER = QType("number")
BOOL = QType("bool")
RECORD = QType("record")


def list_of(elem: QType) -> QType:
    return QType("list", (elem,))


def pair_of(left: QType, right: QType) -> QType:
    return QType("tuple", (left, right))


def compatible(have: QType, want: QType) -> bool:
    """Whether a quantum of type ``have`` can flow where ``want`` is needed.

    ``any`` unifies with everything; ``bool`` and ``number`` unify (Python
    bools are ints); parameterized kinds compare element-wise, and an
    unparameterized ``tuple``/``list`` matches any arity.
    """
    if have.kind == "any" or want.kind == "any":
        return True
    if {have.kind, want.kind} <= {"number", "bool"}:
        return True
    if have.kind != want.kind:
        return False
    if not have.params or not want.params:
        return True
    if len(have.params) != len(want.params):
        return False
    return all(compatible(h, w) for h, w in zip(have.params, want.params))


def lub(a: QType, b: QType) -> QType:
    """Least upper bound: the most specific type covering both."""
    if a == b:
        return a
    if a.kind == "any" or b.kind == "any":
        return ANY
    if {a.kind, b.kind} <= {"number", "bool"}:
        return NUMBER
    if a.kind != b.kind:
        return ANY
    if len(a.params) != len(b.params):
        return QType(a.kind)
    return QType(a.kind, tuple(lub(x, y) for x, y in zip(a.params, b.params)))


# --------------------------------------------------------------------------
# Python value / annotation -> QType
# --------------------------------------------------------------------------
def type_of_value(value: Any, depth: int = 2) -> QType:
    """Infer the quantum type of a sample value (bounded recursion)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, str):
        return TEXT
    if isinstance(value, dict):
        return RECORD
    if isinstance(value, tuple):
        if depth <= 0 or not value:
            return QType("tuple")
        return QType("tuple",
                     tuple(type_of_value(v, depth - 1) for v in value))
    if isinstance(value, list):
        if depth <= 0 or not value:
            return QType("list")
        return list_of(type_of_value(value[0], depth - 1))
    return ANY


def type_of_collection(data: list, sample: int = 8) -> QType:
    """Sampled element type of a driver-side collection."""
    result: Optional[QType] = None
    for value in data[:sample]:
        t = type_of_value(value)
        result = t if result is None else lub(result, t)
    return result if result is not None else ANY


_SIMPLE_ANNOTATIONS = {
    str: TEXT, int: NUMBER, float: NUMBER, bool: BOOL,
    dict: RECORD, list: QType("list"), tuple: QType("tuple"),
    Any: ANY, None: ANY, type(None): ANY,
}

_ITERABLE_ORIGINS = {list, set, frozenset, typing.Iterable, typing.Iterator,
                     typing.Sequence, typing.Generator}


def type_of_annotation(annotation: Any) -> QType:
    """Map a Python type annotation to a quantum type (``any`` fallback)."""
    if annotation in _SIMPLE_ANNOTATIONS:
        return _SIMPLE_ANNOTATIONS[annotation]
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is None:
        return ANY
    if origin is tuple:
        if not args or args[-1] is Ellipsis:
            return QType("tuple")
        return QType("tuple", tuple(type_of_annotation(a) for a in args))
    if origin is dict:
        return RECORD
    if origin in _ITERABLE_ORIGINS or (
            isinstance(origin, type) and issubclass(origin, (list, set))):
        return list_of(type_of_annotation(args[0])) if args else QType("list")
    return ANY


def element_of(t: QType) -> QType:
    """The element type produced by iterating a quantum of type ``t``."""
    if t.kind == "list" and t.params:
        return t.params[0]
    if t.kind == "text":
        return TEXT  # iterating a string yields strings
    return ANY


# --------------------------------------------------------------------------
# UDF signatures
# --------------------------------------------------------------------------
def udf_signature(udf: Udf | None) -> tuple[QType, QType]:
    """(first-parameter type, return type) from a UDF's annotations."""
    if udf is None:
        return ANY, ANY
    fn = udf.fn
    try:
        hints = typing.get_type_hints(fn)
    except Exception:
        return ANY, ANY
    code = getattr(fn, "__code__", None)
    param = ANY
    if code is not None and code.co_argcount:
        first = code.co_varnames[0]
        if first in hints:
            param = type_of_annotation(hints[first])
    ret = type_of_annotation(hints["return"]) if "return" in hints else ANY
    return param, ret


# --------------------------------------------------------------------------
# The inference pass
# --------------------------------------------------------------------------
@dataclass
class TypeFlowResult:
    """Output types per operator id, plus the incompatible-edge findings."""

    types: dict[int, QType] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)


def _mismatch(op: ops.Operator, have: QType, want: QType,
              what: str, hint: str) -> Diagnostic:
    return Diagnostic(
        rule_id="RP002",
        severity=Severity.ERROR,
        message=(f"type mismatch on {what}: produces {have} but "
                 f"{want} is required"),
        op_id=op.id,
        op_name=op.name,
        hint=hint,
    )


def infer_types(ordered: list[ops.Operator],
                seeds: dict[int, QType] | None = None) -> TypeFlowResult:
    """Propagate quantum types through ``ordered`` (producers first).

    Args:
        ordered: Operators in topological order (loop bodies included,
            before their loop operator).
        seeds: Pre-pinned types (e.g. loop inputs bound to the enclosing
            loop's argument types).
    """
    result = TypeFlowResult(types=dict(seeds or {}))
    types = result.types

    for op in ordered:
        if op.id in types:
            continue
        ins = [types.get(ref.op.id, ANY) if ref is not None else ANY
               for ref in op.inputs]
        types[op.id] = _transfer(op, ins, types, result.diagnostics)
    return result


def _check_udf_param(op: ops.Operator, udf: Udf | None, have: QType,
                     what: str, diags: list[Diagnostic]) -> None:
    if udf is None:
        return
    want, __ = udf_signature(udf)
    if not compatible(have, want):
        diags.append(_mismatch(
            op, have, want, what,
            f"change the {what} annotation or the upstream operator"))


def _transfer(op: ops.Operator, ins: list[QType], types: dict[int, QType],
              diags: list[Diagnostic]) -> QType:
    """One operator's output type; appends RP002 diagnostics on conflicts."""
    first = ins[0] if ins else ANY

    # ------------------------------------------------------------- sources
    if isinstance(op, ops.TextFileSource):
        return TEXT
    if isinstance(op, ops.CollectionSource):
        return type_of_collection(op.data)
    if isinstance(op, ops.TableSource):
        return RECORD
    if isinstance(op, (ops.ChannelSource, ops.LoopInput)):
        return ANY

    # --------------------------------------------------------------- unary
    if isinstance(op, ops.Map):
        _check_udf_param(op, op.udf, first, "map UDF input", diags)
        __, ret = udf_signature(op.udf)
        return ret
    if isinstance(op, ops.FlatMap):
        _check_udf_param(op, op.udf, first, "flatmap UDF input", diags)
        __, ret = udf_signature(op.udf)
        return element_of(ret)
    if isinstance(op, ops.MapPartitions):
        __, ret = udf_signature(op.udf)
        return element_of(ret)
    if isinstance(op, ops.Filter):
        if op.column is not None and not compatible(first, RECORD):
            diags.append(_mismatch(
                op, first, RECORD, "range filter input",
                "range filters need dict-shaped quanta"))
        _check_udf_param(op, op.udf, first, "filter predicate input", diags)
        return first
    if isinstance(op, ops.ZipWithId):
        return pair_of(NUMBER, first)
    if isinstance(op, (ops.Sample, ops.Distinct, ops.Sort, ops.Cache)):
        key = getattr(op, "key", None)
        _check_udf_param(op, key, first, f"{op.name} key input", diags)
        return first
    if isinstance(op, ops.GroupBy):
        _check_udf_param(op, op.key, first, "groupby key input", diags)
        return pair_of(ANY, list_of(first))
    if isinstance(op, ops.ReduceBy):
        _check_udf_param(op, op.key, first, "reduceby key input", diags)
        return first  # the reduced quanta keep the input shape
    if isinstance(op, (ops.GlobalReduce,)):
        return first
    if isinstance(op, ops.Count):
        return NUMBER
    if isinstance(op, ops.PageRank):
        # Engines unpack any 2-sequence, so lists (e.g. JSON-submitted
        # edges, where tuples arrive as lists) are as good as tuples.
        if not (compatible(first, QType("tuple", (ANY, ANY)))
                or compatible(first, QType("list", (ANY,)))):
            diags.append(_mismatch(
                op, first, QType("tuple", (ANY, ANY)), "pagerank input",
                "feed (src, dst) edge pairs, e.g. via a map"))
        return pair_of(ANY, NUMBER)

    # -------------------------------------------------------------- binary
    if isinstance(op, (ops.Union, ops.Intersect)):
        return lub(ins[0], ins[1]) if len(ins) == 2 else first
    if isinstance(op, ops.Join):
        _check_udf_param(op, op.left_key, ins[0], "join left key input",
                         diags)
        if len(ins) == 2:
            _check_udf_param(op, op.right_key, ins[1],
                             "join right key input", diags)
        return pair_of(ins[0], ins[1] if len(ins) == 2 else ANY)
    if isinstance(op, (ops.CartesianProduct, ops.IEJoin)):
        return pair_of(ins[0], ins[1] if len(ins) == 2 else ANY)

    # --------------------------------------------------------------- loops
    if isinstance(op, ops.LoopOperator):
        # Pin the body placeholders to the loop arguments and infer the
        # body; the loop's output is the body output's type.
        seeds = {inp.id: t for inp, t in zip(op.body.inputs, ins)}
        body = infer_types(op.body.operators(), seeds)
        types.update(body.types)
        diags.extend(body.diagnostics)
        return body.types.get(op.body.outputs[0].op.id, ANY)

    # --------------------------------------------------------------- sinks
    if isinstance(op, ops.SinkOperator):
        return first
    return ANY
