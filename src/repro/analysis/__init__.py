"""Static plan analysis: typed data-quantum flow, UDF introspection and a
severity-tiered lint-rule engine that runs before the optimizer.

Public surface::

    from repro.analysis import analyze_plan, Diagnostic, LintReport, Severity

    report = analyze_plan(plan, ctx)   # registry-aware when ctx is given
    for diag in report.errors:
        print(diag.render())

Heavy submodules are loaded lazily (PEP 562) so that ``core.plan`` can
import the leaf ``diagnostics``/``collector`` modules without dragging the
mapping/channel layers into its import cycle.
"""

from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "PlanAnalyzer",
    "analyze_plan",
    "AnalysisContext",
    "Rule",
    "all_rules",
    "register_rule",
    "QType",
    "infer_types",
    "introspect_udf",
    "UdfReport",
    "LintCollector",
    "collecting",
    "ConcurrencyFinding",
    "check_package",
    "check_source",
]

_LAZY = {
    "PlanAnalyzer": ("engine", "PlanAnalyzer"),
    "analyze_plan": ("engine", "analyze_plan"),
    "AnalysisContext": ("rules", "AnalysisContext"),
    "Rule": ("rules", "Rule"),
    "all_rules": ("rules", "all_rules"),
    "register_rule": ("rules", "register_rule"),
    "QType": ("typeflow", "QType"),
    "infer_types": ("typeflow", "infer_types"),
    "introspect_udf": ("udfs", "introspect_udf"),
    "UdfReport": ("udfs", "UdfReport"),
    "LintCollector": ("collector", "LintCollector"),
    "collecting": ("collector", "collecting"),
    "ConcurrencyFinding": ("locks", "ConcurrencyFinding"),
    "check_package": ("locks", "check_package"),
    "check_source": ("locks", "check_source"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)
