"""Structured diagnostics for the static plan analyzer.

Every finding — from the structural validator, the type-flow pass, the UDF
introspector or a lint rule — is a :class:`Diagnostic`: a rule id, a
severity tier, the offending operator and an optional fix-it hint.  A
:class:`LintReport` aggregates the diagnostics of one plan and knows how to
render them for the CLI, the REST API and the studio.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity tiers (ordered: higher is worse)."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored at an operator.

    Attributes:
        rule_id: Stable rule identifier (``RP001``...); structural
            validator findings use the ``RP1xx`` range.
        severity: Error diagnostics abort optimization; warnings and infos
            annotate the plan.
        message: Human-readable description of the defect.
        op_id: Id of the offending operator (0 when the finding concerns
            the plan as a whole).
        op_name: Name of the offending operator ("" for plan-level).
        hint: Optional fix-it suggestion.
    """

    rule_id: str
    severity: Severity
    message: str
    op_id: int = 0
    op_name: str = ""
    hint: str | None = None

    def render(self) -> str:
        """One CLI line: ``RP002 error  map <#7>: ... (fix: ...)``."""
        where = f" {self.op_name} <#{self.op_id}>" if self.op_id else ""
        line = f"{self.rule_id} {str(self.severity):<7}{where}: {self.message}"
        if self.hint:
            line += f" (fix: {self.hint})"
        return line

    def to_json(self) -> dict:
        """JSON-ready shape for the REST response."""
        out = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "operator": {"id": self.op_id, "name": self.op_name},
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def __str__(self) -> str:
        return self.render()


@dataclass
class LintReport:
    """All diagnostics of one analyzed plan, plus estimation side effects.

    Attributes:
        diagnostics: Findings, ordered by severity (errors first), then by
            operator id.
        confidence_penalties: Per-operator multiplicative confidence decay
            the analyzer derived from UDF introspection (nondeterministic
            or state-capturing UDFs make cardinality hints less
            trustworthy); consumed by the optimizer's estimation step.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    confidence_penalties: dict[int, float] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        self.diagnostics.sort(key=lambda d: (-d.severity, d.rule_id, d.op_id))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when the plan carries no error-level diagnostics."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self.diagnostics}

    def render(self) -> str:
        """Multi-line CLI rendering; "" when the report is empty."""
        return "\n".join(d.render() for d in self.diagnostics)

    def summary(self) -> str:
        return (f"{len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s), {len(self.infos)} info(s)")

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
