"""The multi-pass static plan analyzer.

Runs over a :class:`~repro.core.plan.RheemPlan` *before* inflation and
enumeration:

1. **structural re-traversal** — a fresh, iterative walk from the sinks
   (the plan's cached topology may be stale after mutation) with cycle
   detection;
2. **type-flow inference** (:mod:`repro.analysis.typeflow`) — data-quantum
   types from sources through operator signatures, flagging provably
   incompatible edges;
3. **UDF introspection** (:mod:`repro.analysis.udfs`) — bytecode/closure
   scanning for purity violations, which also feeds per-operator
   *confidence penalties* into cardinality estimation;
4. **lint rules** (:mod:`repro.analysis.rules`) — the severity-tiered rule
   registry.

The optimizer aborts on error-level findings and annotates the plan with
the rest; the CLI (``python -m repro lint``) and the REST service surface
the same report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core import operators as ops
from ..core.operators import EstimationContext, Operator
from .diagnostics import Diagnostic, LintReport, Severity
from .rules import AnalysisContext, Rule, run_rules
from .typeflow import infer_types
from .udfs import introspect_plan_udfs

if TYPE_CHECKING:  # pragma: no cover
    from ..core.channels import ChannelConversionGraph
    from ..core.mappings import MappingRegistry
    from ..core.plan import RheemPlan

#: Confidence decay applied to estimates flowing through impure UDFs.
IMPURE_UDF_CONFIDENCE = 0.8


def _traverse(sinks: list[Operator]) -> tuple[list[Operator],
                                              Optional[Diagnostic]]:
    """Iterative post-order DFS from ``sinks`` (producers first).

    Returns the topological order and, if a cycle is found, an RP102
    diagnostic anchored at the operator closing the cycle (order is then
    partial).
    """
    order: list[Operator] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done
    for root in sinks:
        stack: list[tuple[Operator, Iterable]] = []
        if state.get(root.id) == 1:
            continue
        state[root.id] = 0
        stack.append((root, iter(list(root.inputs) + list(root.side_inputs))))
        while stack:
            op, children = stack[-1]
            advanced = False
            for ref in children:
                if ref is None:
                    continue
                mark = state.get(ref.op.id)
                if mark == 1:
                    continue
                if mark == 0:
                    return order, Diagnostic(
                        rule_id="RP102", severity=Severity.ERROR,
                        message=f"cycle detected through {ref.op.name} "
                                f"<#{ref.op.id}>; feedback edges are only "
                                f"legal inside loop bodies",
                        op_id=ref.op.id, op_name=ref.op.name,
                        hint="express the iteration with a loop operator")
                state[ref.op.id] = 0
                stack.append((ref.op, iter(list(ref.op.inputs)
                                           + list(ref.op.side_inputs))))
                advanced = True
                break
            if not advanced:
                state[op.id] = 1
                order.append(op)
                stack.pop()
    return order, None


def _with_loop_bodies(ordered: list[Operator]) -> list[Operator]:
    out: list[Operator] = []
    for op in ordered:
        if isinstance(op, ops.LoopOperator):
            for body_op in op.body.operators():
                out.extend(_with_loop_bodies([body_op])
                           if isinstance(body_op, ops.LoopOperator)
                           else [body_op])
        out.append(op)
    return out


class PlanAnalyzer:
    """Analyzes plans; optionally bound to an optimizer's registries.

    Args:
        registry: Operator mappings (enables the platform-capability and
            channel-reachability rules).
        conversion_graph: The channel conversion graph (reachability rule).
        estimation_ctx: Source metadata; enables cardinality-based rules
            (oversized broadcasts).
        rules: Restrict to a subset of the registry (default: all rules).
    """

    def __init__(
        self,
        registry: Optional["MappingRegistry"] = None,
        conversion_graph: Optional["ChannelConversionGraph"] = None,
        estimation_ctx: EstimationContext | None = None,
        rules: Optional[list[Rule]] = None,
    ) -> None:
        self.registry = registry
        self.graph = conversion_graph
        self.estimation_ctx = estimation_ctx
        self.rules = rules

    def analyze(self, plan: "RheemPlan") -> LintReport:
        """Run all passes; the report is also attached to ``plan``."""
        report = LintReport()
        ordered, cycle = _traverse(list(plan.sinks))
        if cycle is not None:
            report.add(cycle)
            report.sort()
            plan.diagnostics = report
            return report

        ordered_all = _with_loop_bodies(ordered)
        op_ids = {op.id for op in ordered_all}
        body_op_ids = op_ids - {op.id for op in ordered}
        consumers: dict[int, list[Operator]] = {}
        for op in ordered_all:
            for ref in list(op.inputs) + list(op.side_inputs):
                if ref is not None:
                    consumers.setdefault(ref.op.id, []).append(op)

        # Pass 1: type flow (loop bodies are inferred via their loop).
        flow = infer_types(ordered)
        report.extend(self._filter_suppressed(flow.diagnostics, ordered_all))

        # Pass 2: UDF introspection -> confidence penalties.
        udf_reports = introspect_plan_udfs(ordered_all)
        for op_id, reports in udf_reports.items():
            if any(not r.clean for __, r in reports):
                report.confidence_penalties[op_id] = IMPURE_UDF_CONFIDENCE

        # Cardinalities for estimate-based rules (best effort).
        cards: dict = {}
        if self.estimation_ctx is not None:
            try:
                cards = plan.estimate_cardinalities(self.estimation_ctx)
            except Exception:  # estimation must never break linting
                cards = {}

        # Pass 3: the rule registry.
        ctx = AnalysisContext(
            ordered=ordered_all,
            op_ids=op_ids,
            consumers=consumers,
            types=flow.types,
            udf_reports=udf_reports,
            registry=self.registry,
            graph=self.graph,
            cards=cards,
            body_op_ids=body_op_ids,
        )
        report.extend(run_rules(ctx, self.rules))
        report.sort()
        plan.diagnostics = report
        return report

    @staticmethod
    def _filter_suppressed(diagnostics: list[Diagnostic],
                           ordered: list[Operator]) -> list[Diagnostic]:
        by_id = {op.id: op for op in ordered}
        out = []
        for diag in diagnostics:
            op = by_id.get(diag.op_id)
            if op is not None and diag.rule_id in op.lint_suppressions:
                continue
            out.append(diag)
        return out


def analyze_plan(plan: "RheemPlan", context=None) -> LintReport:
    """Analyze ``plan``; with a :class:`RheemContext`, registry-aware rules
    (platform capability, channel reachability, broadcast sizing) run too.
    """
    if context is not None:
        analyzer = PlanAnalyzer(
            registry=context.registry,
            conversion_graph=context.graph,
            estimation_ctx=context.estimation_context(),
        )
    else:
        analyzer = PlanAnalyzer()
    return analyzer.analyze(plan)
