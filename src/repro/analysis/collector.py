"""Session-wide diagnostic collection for the lint CLI.

``python -m repro lint SCRIPT`` executes the script under an active
:class:`LintCollector`: every :class:`~repro.core.plan.RheemPlan`
constructed while the collector is active registers itself, and every
analyzer run (the optimizer lints each plan before enumeration) records its
report.  After the script finishes, plans that were built but never
optimized are analyzed post-hoc, so sink-less scripts still get linted.

This module must stay import-light (no core imports): ``core.plan`` calls
into it from the ``RheemPlan`` constructor.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import TYPE_CHECKING

from .diagnostics import LintReport

if TYPE_CHECKING:  # pragma: no cover
    from ..core.plan import RheemPlan

_active: contextvars.ContextVar["LintCollector | None"] = \
    contextvars.ContextVar("repro_lint_collector", default=None)


class LintCollector:
    """Accumulates (plan, report) pairs across one linted session."""

    def __init__(self) -> None:
        self.plans: list["RheemPlan"] = []
        self.reports: list[tuple["RheemPlan", LintReport]] = []
        self._seen_plans: set[int] = set()
        self._reported: set[int] = set()

    def record_plan(self, plan: "RheemPlan") -> None:
        if id(plan) not in self._seen_plans:
            self._seen_plans.add(id(plan))
            self.plans.append(plan)

    def record_report(self, plan: "RheemPlan", report: LintReport) -> None:
        self.record_plan(plan)
        if id(plan) in self._reported:
            # Re-analysis of the same plan (e.g. progressive re-planning):
            # keep the latest report only.
            self.reports = [(p, r) for p, r in self.reports if p is not plan]
        self._reported.add(id(plan))
        self.reports.append((plan, report))

    def finalize(self, context=None) -> list[tuple["RheemPlan", LintReport]]:
        """Analyze any plan that never went through the optimizer."""
        from .engine import analyze_plan  # lazy: keep this module light

        for plan in self.plans:
            if id(plan) not in self._reported:
                self.record_report(plan, analyze_plan(plan, context))
        return self.reports


def active_collector() -> LintCollector | None:
    return _active.get()


def notify_plan(plan: "RheemPlan") -> None:
    """Called by the ``RheemPlan`` constructor (no-op when not linting)."""
    collector = _active.get()
    if collector is not None:
        collector.record_plan(plan)


def notify_report(plan: "RheemPlan", report: LintReport) -> None:
    """Called by the optimizer after analyzing a plan."""
    collector = _active.get()
    if collector is not None:
        collector.record_report(plan, report)


@contextlib.contextmanager
def collecting():
    """Activate a fresh collector for the duration of the block."""
    collector = LintCollector()
    token = _active.set(collector)
    try:
        yield collector
    finally:
        _active.reset(token)
