"""The lint-rule registry (analysis pass 3).

Each rule is a small function over an :class:`AnalysisContext` yielding
:class:`Diagnostic` objects; the registry is severity-tiered and openly
extensible (register new rules the way platforms register mappings).

Rule catalog
------------

========  ========  =====================================================
id        severity  finding
========  ========  =====================================================
RP001     warning   dead operator: attached to the DAG but feeds no sink
RP002     error     incompatible data-quantum types on an edge (typeflow)
RP003     warning   cartesian product whose output is never restricted
RP004     warning   loop-invariant input not cached before the loop
RP005     error     operator pinned to a platform that cannot run it
RP006     error     pinned producer/consumer with no channel conversion
RP007     info      the same source is scanned more than once
RP008     warning   broadcast side-input is provably large
RP009     warning   nondeterministic UDF (random/time/uuid use)
RP010     warning   UDF captures mutable state / writes globals
RP011     info      Filter/FlatMap UDF without a selectivity hint
RP012     warning   union/intersect inputs have diverging types
RP013     warning   declared loop input unused by the loop body
RP014     info      operator attribute defeats plan fingerprinting
RP100+    error     structural violations (unwired input, cycle, ...)
RP201     warning   UDFs on potentially concurrent stages share one
                    captured mutable object (lane-aware RP010)
========  ========  =====================================================

Suppression: ``op.suppress_lint("RP003")`` silences one rule for one
operator (the engine filters suppressed findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..core import operators as ops
from ..core.channels import ChannelConversionError, ChannelConversionGraph
from ..core.mappings import MappingRegistry, NoMappingError
from .diagnostics import Diagnostic, Severity
from .typeflow import QType, compatible
from .udfs import UdfReport

#: Broadcast side inputs whose cardinality LOWER bound exceeds this many
#: simulated records are flagged as oversized (provably large, not merely
#: unknown — lint must not cry wolf on wide estimates).
BROADCAST_RECORD_LIMIT = 1e7


@dataclass
class AnalysisContext:
    """Everything a lint rule may consult."""

    #: All reachable operators, producers first, loop bodies included.
    ordered: list[ops.Operator]
    #: Ids of ``ordered`` (fast membership checks).
    op_ids: set[int] = field(default_factory=set)
    #: Producer id -> consuming operators (within the plan).
    consumers: dict[int, list[ops.Operator]] = field(default_factory=dict)
    #: Inferred quantum type per operator id (typeflow pass).
    types: dict[int, QType] = field(default_factory=dict)
    #: UDF introspection reports per operator id.
    udf_reports: dict[int, list[tuple[str, UdfReport]]] = field(
        default_factory=dict)
    #: Optimizer-side context, when analysis runs inside the optimizer.
    registry: Optional[MappingRegistry] = None
    graph: Optional[ChannelConversionGraph] = None
    #: Cardinality estimates per operator id (may be empty standalone).
    cards: dict = field(default_factory=dict)
    #: Operators that belong to a loop body (their id).
    body_op_ids: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    check: Callable[[AnalysisContext], Iterator[Diagnostic]]


_RULES: dict[str, Rule] = {}


def register_rule(rule_id: str, name: str, severity: Severity,
                  description: str):
    """Decorator registering a rule check under ``rule_id``."""

    def decorate(fn: Callable[[AnalysisContext], Iterator[Diagnostic]]):
        _RULES[rule_id] = Rule(rule_id, name, severity, description, fn)
        return fn

    return decorate


def all_rules() -> list[Rule]:
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    return _RULES[rule_id]


def _diag(rule: str, op: ops.Operator, message: str,
          hint: str | None = None) -> Diagnostic:
    r = _RULES[rule]
    return Diagnostic(rule_id=rule, severity=r.severity, message=message,
                      op_id=op.id, op_name=op.name, hint=hint)


# --------------------------------------------------------------------------
# RP001 dead operator
# --------------------------------------------------------------------------
@register_rule("RP001", "dead-operator", Severity.WARNING,
               "an operator consumes plan data but feeds no sink")
def _dead_operator(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    reported: set[int] = set()
    for op in ctx.ordered:
        for consumer in op.downstream:
            if consumer.id in ctx.op_ids or consumer.id in reported:
                continue
            refs = list(consumer.inputs) + list(consumer.side_inputs)
            if not any(ref is not None and ref.op is op for ref in refs):
                continue  # stale back-reference (input was rewired)
            reported.add(consumer.id)
            if "RP001" in consumer.lint_suppressions:
                continue  # the dead op is outside ctx.ordered: check here
            yield _diag(
                "RP001", consumer,
                f"operator consumes {op.name} <#{op.id}> but no sink is "
                f"reachable from it; it will never execute",
                hint="attach a sink to this branch or drop the operator")


# --------------------------------------------------------------------------
# RP003 cartesian product without restriction
# --------------------------------------------------------------------------
@register_rule("RP003", "cartesian-without-restriction", Severity.WARNING,
               "a cartesian product whose output is never filtered")
def _cartesian(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        if not isinstance(op, ops.CartesianProduct):
            continue
        downstream_ok = any(
            isinstance(c, (ops.Filter, ops.Join, ops.IEJoin, ops.Sample))
            for c in ctx.consumers.get(op.id, []))
        if not downstream_ok:
            yield _diag(
                "RP003", op,
                "cartesian product output flows on unrestricted; its size "
                "is the product of both inputs",
                hint="use a keyed Join, an IEJoin, or filter the product")


# --------------------------------------------------------------------------
# RP004 uncached loop invariant
# --------------------------------------------------------------------------
@register_rule("RP004", "uncached-loop-invariant", Severity.WARNING,
               "a loop-invariant input recomputed every iteration")
def _uncached_invariant(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        if not isinstance(op, ops.LoopOperator):
            continue
        for slot, ref in enumerate(op.inputs):
            if slot == 0 or ref is None:
                continue  # slot 0 is the loop variable
            producer = ref.op
            if isinstance(producer, (ops.Cache, ops.SourceOperator)):
                continue
            yield _diag(
                "RP004", op,
                f"loop-invariant input {slot} comes from "
                f"{producer.name} <#{producer.id}> without a cache; the "
                f"executor may rematerialize it each iteration",
                hint=f"insert .cache() after {producer.name}")


# --------------------------------------------------------------------------
# RP005 platform capability mismatch
# --------------------------------------------------------------------------
@register_rule("RP005", "platform-capability-mismatch", Severity.ERROR,
               "an operator pinned to a platform that cannot execute it")
def _capability(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if ctx.registry is None:
        return
    for op in ctx.ordered:
        if op.target_platform is None:
            continue
        if isinstance(op, (ops.LoopInput, ops.LoopOperator)):
            continue
        try:
            ctx.registry.alternatives_for(op)
        except NoMappingError:
            yield _diag(
                "RP005", op,
                f"pinned to platform {op.target_platform!r}, which has no "
                f"mapping for {type(op).__name__}",
                hint="drop the pin or pick a platform from the registry")


# --------------------------------------------------------------------------
# RP006 channel unreachable between pinned operators
# --------------------------------------------------------------------------
def _pinned_alternatives(ctx: AnalysisContext, op: ops.Operator):
    try:
        return ctx.registry.alternatives_for(op)
    except NoMappingError:
        return []


@register_rule("RP006", "channel-unreachable", Severity.ERROR,
               "pinned producer/consumer with no conversion path")
def _channel_unreachable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if ctx.registry is None or ctx.graph is None:
        return
    for op in ctx.ordered:
        if op.target_platform is None or isinstance(op, ops.LoopOperator):
            continue
        consumer_alts = _pinned_alternatives(ctx, op)
        if not consumer_alts:
            continue  # RP005 already fired
        for slot, ref in enumerate(op.inputs):
            if ref is None:
                continue
            producer = ref.op
            if (producer.target_platform is None
                    or producer.target_platform == op.target_platform
                    or isinstance(producer, (ops.LoopOperator,
                                             ops.LoopInput))):
                continue
            producer_alts = _pinned_alternatives(ctx, producer)
            if not producer_alts:
                continue
            if not _some_path(ctx.graph, producer_alts, consumer_alts, slot):
                yield _diag(
                    "RP006", op,
                    f"no channel conversion path from "
                    f"{producer.name} <#{producer.id}> on "
                    f"{producer.target_platform!r} to this operator on "
                    f"{op.target_platform!r}",
                    hint="relax one of the platform pins or register a "
                         "conversion")


def _some_path(graph, producer_alts, consumer_alts, slot) -> bool:
    for pa in producer_alts:
        have = pa.output_descriptor()
        for ca in consumer_alts:
            want = ca.input_descriptors()[slot]
            try:
                graph.cheapest_path(have, want, 1.0)
                return True
            except ChannelConversionError:
                continue
    return False


# --------------------------------------------------------------------------
# RP007 duplicate source scan
# --------------------------------------------------------------------------
@register_rule("RP007", "duplicate-source-scan", Severity.INFO,
               "the same file/table is scanned by several sources")
def _duplicate_scan(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    seen: dict[tuple, ops.Operator] = {}
    for op in ctx.ordered:
        if isinstance(op, ops.TextFileSource):
            key = ("file", op.path)
        elif isinstance(op, ops.TableSource):
            key = ("table", op.table)
        else:
            continue
        if key in seen:
            first = seen[key]
            yield _diag(
                "RP007", op,
                f"re-scans {key[1]!r} already read by "
                f"{first.name} <#{first.id}>",
                hint="read once and fan out (cache the shared scan)")
        else:
            seen[key] = op


# --------------------------------------------------------------------------
# RP008 oversized broadcast
# --------------------------------------------------------------------------
@register_rule("RP008", "oversized-broadcast", Severity.WARNING,
               "a broadcast side-input is provably large")
def _oversized_broadcast(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        for ref in op.side_inputs:
            est = ctx.cards.get(ref.op.id)
            if est is None:
                continue
            if est.lower > BROADCAST_RECORD_LIMIT:
                yield _diag(
                    "RP008", op,
                    f"broadcasts {ref.op.name} <#{ref.op.id}> with at "
                    f"least {est.lower:.0f} simulated records to every "
                    f"worker",
                    hint="join instead of broadcasting, or shrink the "
                         "side input first")


# --------------------------------------------------------------------------
# RP009 / RP010: UDF hygiene
# --------------------------------------------------------------------------
@register_rule("RP009", "nondeterministic-udf", Severity.WARNING,
               "a UDF calls nondeterministic APIs")
def _nondeterministic(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op_id, reports in ctx.udf_reports.items():
        op = next(o for o in ctx.ordered if o.id == op_id)
        for attr, report in reports:
            if report.nondeterministic_calls:
                names = ", ".join(report.nondeterministic_calls)
                yield _diag(
                    "RP009", op,
                    f"UDF {report.name!r} ({attr}) uses nondeterministic "
                    f"APIs: {names}; re-runs and platform migration may "
                    f"produce different data",
                    hint="seed explicitly or use the Sample operator's "
                         "seeded methods")


@register_rule("RP010", "mutable-closure-capture", Severity.WARNING,
               "a UDF captures mutable state or writes globals")
def _mutable_capture(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op_id, reports in ctx.udf_reports.items():
        op = next(o for o in ctx.ordered if o.id == op_id)
        for attr, report in reports:
            found = []
            if report.mutable_captures:
                found.append("captures mutable "
                             + ", ".join(report.mutable_captures))
            if report.global_writes:
                found.append("writes globals "
                             + ", ".join(report.global_writes))
            if found:
                yield _diag(
                    "RP010", op,
                    f"UDF {report.name!r} ({attr}) {'; '.join(found)}; "
                    f"side effects are not migrated across platforms",
                    hint="pass state via broadcast side-inputs instead")


# --------------------------------------------------------------------------
# RP011 missing selectivity hint
# --------------------------------------------------------------------------
@register_rule("RP011", "missing-selectivity-hint", Severity.INFO,
               "a selective UDF without a selectivity annotation")
def _missing_selectivity(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        if isinstance(op, (ops.Filter, ops.FlatMap)) \
                and op.udf.selectivity is None:
            kind = "retention" if isinstance(op, ops.Filter) else "expansion"
            yield _diag(
                "RP011", op,
                f"UDF {op.udf.name!r} carries no {kind} hint; the "
                f"optimizer falls back to low-confidence defaults",
                hint=f"wrap it: Udf(fn, selectivity=...) to pin the {kind}")


# --------------------------------------------------------------------------
# RP012 union type divergence
# --------------------------------------------------------------------------
@register_rule("RP012", "union-type-divergence", Severity.WARNING,
               "union/intersect inputs with incompatible types")
def _union_divergence(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        if not isinstance(op, (ops.Union, ops.Intersect)):
            continue
        ins = [ctx.types.get(ref.op.id, QType("any"))
               for ref in op.inputs if ref is not None]
        if len(ins) == 2 and not compatible(ins[0], ins[1]):
            yield _diag(
                "RP012", op,
                f"combines {ins[0]} with {ins[1]}; downstream operators "
                f"see a mixed bag",
                hint="map both branches to a common shape first")


# --------------------------------------------------------------------------
# RP013 unused loop input
# --------------------------------------------------------------------------
@register_rule("RP013", "unused-loop-input", Severity.WARNING,
               "a declared loop input the body never consumes")
def _unused_loop_input(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for op in ctx.ordered:
        if not isinstance(op, ops.LoopOperator):
            continue
        consumed: set[int] = set()
        for body_op in op.body.operators():
            for ref in list(body_op.inputs) + list(body_op.side_inputs):
                if ref is not None:
                    consumed.add(ref.op.id)
        for inp in op.body.inputs:
            if inp.index > 0 and inp.id not in consumed:
                yield _diag(
                    "RP013", op,
                    f"loop input {inp.index} ({inp.name}) is declared but "
                    f"never consumed by the body",
                    hint="drop the invariant input or use it in the body")


# --------------------------------------------------------------------------
# RP014 unstable fingerprint attribute
# --------------------------------------------------------------------------
@register_rule("RP014", "unstable-fingerprint", Severity.INFO,
               "an operator attribute defeats plan fingerprinting")
def _unstable_fingerprint(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    from ..core.fingerprint import unstable_attribute

    for op in ctx.ordered:
        if isinstance(op, ops.ChannelSource):
            continue  # residual-plan plumbing, never user-addressable
        attr = unstable_attribute(op)
        if attr is not None:
            yield _diag(
                "RP014", op,
                f"attribute {attr!r} cannot be fingerprinted stably "
                f"(object addresses, open handles, ...); this plan is "
                f"invisible to the plan cache and to cross-job result "
                f"reuse",
                hint="replace the value with picklable/canonical data, "
                     "or accept the deliberate cache opt-out")


# --------------------------------------------------------------------------
# RP201 shared mutable capture across potentially concurrent stages
# --------------------------------------------------------------------------
def _ancestor_sets(ordered: list[ops.Operator]) -> dict[int, set[int]]:
    """Transitive producer ids per operator (``ordered`` is topological)."""
    anc: dict[int, set[int]] = {}
    for op in ordered:
        ids: set[int] = set()
        for ref in list(op.inputs) + list(op.side_inputs):
            if ref is not None:
                ids.add(ref.op.id)
                ids |= anc.get(ref.op.id, set())
        anc[op.id] = ids
    return anc


@register_rule("RP201", "shared-capture-across-lanes", Severity.WARNING,
               "UDFs on potentially concurrent stages share one captured "
               "mutable object")
def _shared_capture(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    # RP010 flags each mutable capture in isolation; this rule is its
    # lane-aware upgrade.  The stage scheduler (PR 5) overlaps stages
    # that are not ancestors of one another on different lanes, so two
    # UDFs closing over the *same* list/dict/set can mutate it from two
    # threads at once — a real data race, not just a migration hazard.
    holders: dict[int, list[tuple[ops.Operator, str, str, str]]] = {}
    by_id = {op.id: op for op in ctx.ordered}
    for op_id, reports in ctx.udf_reports.items():
        op = by_id[op_id]
        for attr, report in reports:
            for var, obj_id in report.mutable_capture_ids:
                holders.setdefault(obj_id, []).append(
                    (op, attr, var, report.name))
    shared = {obj_id: entries for obj_id, entries in holders.items()
              if len({op.id for op, _, _, _ in entries}) > 1}
    if not shared:
        return
    ancestors = _ancestor_sets(ctx.ordered)
    reported: set[tuple[int, int]] = set()
    for entries in shared.values():
        entries.sort(key=lambda e: e[0].id)
        for i, (op_a, _, var_a, _) in enumerate(entries):
            for op_b, attr_b, var_b, udf_b in entries[i + 1:]:
                if op_a.id == op_b.id:
                    continue
                if op_a.id in ancestors.get(op_b.id, set()) \
                        or op_b.id in ancestors.get(op_a.id, set()):
                    continue  # serial chain: never on two lanes at once
                key = (op_a.id, op_b.id)
                if key in reported:
                    continue
                reported.add(key)
                yield _diag(
                    "RP201", op_b,
                    f"UDF {udf_b!r} ({attr_b}) captures mutable "
                    f"{var_b!r}, the same object {op_a.name} "
                    f"<#{op_a.id}> captures as {var_a!r}; neither stage "
                    f"depends on the other, so the scheduler may run "
                    f"both concurrently on different lanes",
                    hint="give each branch its own copy, or pass the "
                         "state as a broadcast side-input")


def run_rules(ctx: AnalysisContext,
              rules: Iterable[Rule] | None = None) -> list[Diagnostic]:
    """Run all (or the given) rules; suppressions are honoured here."""
    out: list[Diagnostic] = []
    by_id = {op.id: op for op in ctx.ordered}
    for rule in (rules if rules is not None else all_rules()):
        for diag in rule.check(ctx):
            op = by_id.get(diag.op_id)
            if op is not None and diag.rule_id in op.lint_suppressions:
                continue
            out.append(diag)
    return out
