"""UDF introspection (analysis pass 2).

The optimizer trusts UDF annotations (selectivity, CPU weight) and assumes
UDFs are pure; RHEEMix observes that dishonest hints are the dominant cause
of mis-chosen platforms.  This pass inspects the *code* behind each UDF —
closure cells, referenced globals, bytecode — to detect:

* **mutable-state captures** — a closed-over list/dict/set the UDF can
  mutate between records (breaks re-execution and platform migration);
* **nondeterminism** — calls into ``random``/``time``/``uuid``-style APIs
  (breaks fault-tolerant re-runs and makes measured cardinalities
  unrepeatable);
* **global writes** — ``global``-statement stores inside the UDF.

Findings feed both lint rules (RP009/RP010) and the optimizer's cardinality
confidence: estimates flowing through a flagged UDF are trusted less.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field
from types import CodeType, ModuleType

from ..core import operators as ops
from ..core.udf import Udf

#: Modules whose use inside a UDF marks it nondeterministic.
NONDETERMINISTIC_MODULES = {"random", "time", "uuid", "secrets"}

#: Bare names that resolve to nondeterministic calls even without their
#: module prefix (``from random import random``).
NONDETERMINISTIC_NAMES = {
    "random", "randint", "randrange", "uniform", "shuffle", "choice",
    "choices", "sample", "getrandbits", "time", "time_ns", "perf_counter",
    "monotonic", "uuid1", "uuid4", "token_bytes", "token_hex", "urandom",
}

_MUTABLE_TYPES = (list, dict, set, bytearray)


@dataclass
class UdfReport:
    """What introspection found out about one UDF."""

    name: str
    mutable_captures: list[str] = field(default_factory=list)
    nondeterministic_calls: list[str] = field(default_factory=list)
    global_writes: list[str] = field(default_factory=list)
    #: ``(variable, id(object))`` per mutable capture — lets the race
    #: lint (RP201) see when two UDFs close over the *same* object.
    mutable_capture_ids: list[tuple[str, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.mutable_captures or self.nondeterministic_calls
                    or self.global_writes)


def _resolves_nondeterministic(name: str, globals_ns: dict) -> bool:
    """Whether ``name`` in the UDF's globals is a nondeterminism source."""
    target = globals_ns.get(name)
    if isinstance(target, ModuleType):
        return target.__name__.split(".")[0] in NONDETERMINISTIC_MODULES
    module = getattr(target, "__module__", None)
    if module and module.split(".")[0] in NONDETERMINISTIC_MODULES:
        return True
    # Unresolvable names (builtins, late-bound) fall back to the name list.
    return target is None and name in NONDETERMINISTIC_NAMES


def _scan_code(code: CodeType, globals_ns: dict, report: UdfReport,
               depth: int = 3) -> None:
    """Walk one code object (and nested lambdas/comprehensions)."""
    for instr in dis.get_instructions(code):
        if instr.opname in ("LOAD_GLOBAL", "LOAD_NAME"):
            name = instr.argval
            if _resolves_nondeterministic(name, globals_ns):
                if name not in report.nondeterministic_calls:
                    report.nondeterministic_calls.append(name)
        elif instr.opname in ("STORE_GLOBAL", "DELETE_GLOBAL"):
            if instr.argval not in report.global_writes:
                report.global_writes.append(instr.argval)
    if depth > 0:
        for const in code.co_consts:
            if isinstance(const, CodeType):
                _scan_code(const, globals_ns, report, depth - 1)


def introspect_udf(udf) -> UdfReport:
    """Analyze one UDF (a :class:`Udf` or any plain callable); results are
    cached on the instance."""
    cached = getattr(udf, "_introspection", None)
    if cached is not None:
        return cached
    fn = udf.fn if isinstance(udf, Udf) else udf
    name = udf.name if isinstance(udf, Udf) else getattr(
        fn, "__name__", repr(fn))
    report = UdfReport(name=name)
    code = getattr(fn, "__code__", None)
    if code is not None:
        closure = getattr(fn, "__closure__", None) or ()
        for var, cell in zip(code.co_freevars, closure):
            try:
                value = cell.cell_contents
            except ValueError:  # empty cell
                continue
            if isinstance(value, _MUTABLE_TYPES):
                report.mutable_captures.append(var)
                report.mutable_capture_ids.append((var, id(value)))
        _scan_code(code, getattr(fn, "__globals__", {}), report)
    try:
        udf._introspection = report
    except AttributeError:  # pragma: no cover - exotic callables
        pass
    return report


#: Operator attributes that may hold UDFs, in reporting order.
_UDF_ATTRS = ("udf", "key", "reducer", "left_key", "right_key", "condition")


def operator_udfs(op: ops.Operator) -> list[tuple[str, Udf]]:
    """All UDFs attached to ``op`` as ``(attribute, udf)`` pairs."""
    out = []
    for attr in _UDF_ATTRS:
        value = getattr(op, attr, None)
        if isinstance(value, Udf):
            out.append((attr, value))
    return out


def introspect_plan_udfs(
        ordered: list[ops.Operator]) -> dict[int, list[tuple[str, UdfReport]]]:
    """Introspect every UDF of every operator; keyed by operator id."""
    out: dict[int, list[tuple[str, UdfReport]]] = {}
    for op in ordered:
        reports = [(attr, introspect_udf(udf))
                   for attr, udf in operator_udfs(op)]
        if reports:
            out[op.id] = reports
    return out
