"""Structured tracing: spans with parent/child nesting and attributes.

A :class:`Tracer` records a tree of :class:`Span` objects — one per unit
of interesting work (an optimizer phase, an executor stage attempt, a
channel conversion).  Spans measure *wall-clock* driver time (via a
monotonic clock) and carry arbitrary attributes; simulated seconds are
attached as attributes so both timelines can be inspected side by side.

The subsystem is zero-cost when disabled: :data:`NO_TRACER` hands out a
shared no-op span and records nothing, so instrumented code never needs
an ``if tracing:`` guard.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..concurrency.runtime import OrderedLock


@dataclass
class Span:
    """One traced unit of work.

    Attributes:
        name: Span name, e.g. ``"optimizer.enumerate"`` or
            ``"stage:stage2"``.
        span_id: Unique id within the owning tracer.
        parent_id: ``span_id`` of the enclosing span (``None`` for roots).
        start: Seconds since the tracer's epoch when the span opened.
        end: Seconds since the epoch when it closed (``None`` while open).
        attributes: Free-form key/value annotations.
        children: Nested spans, in creation order.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock seconds this span was open (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready nested representation (for REST responses)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [c.to_json() for c in self.children],
        }


class _SpanHandle:
    """Context manager opening one span on ``__enter__``."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any],
                 parent: Span | None = None) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._parent = parent
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes,
                                        parent=self._parent)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        assert self._span is not None
        self._tracer._close(self._span)


class Tracer:
    """Records a tree of spans against a monotonic wall clock.

    The span stack is thread-local, so worker threads (the executor's
    stage lanes) can nest spans independently; the span *tree* itself is
    shared and guarded by a lock.  :meth:`span_under` opens a span with
    an explicit parent, which is how a worker thread attaches its stage
    span under the driver's ``executor.run`` span.

    Args:
        clock: Monotonic time source (injectable for deterministic tests).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._local = threading.local()
        self._lock = OrderedLock("tracer.spans")
        self._ids = itertools.count(1)
        self.roots: list[Span] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child span of the current span for a ``with`` block."""
        return _SpanHandle(self, name, attributes)

    def span_under(self, parent: Span | None, name: str,
                   **attributes: Any) -> _SpanHandle:
        """Open a span under an *explicit* parent (cross-thread nesting).

        The new span still pushes onto the calling thread's stack, so
        further plain :meth:`span` calls on that thread nest beneath it.
        A ``None`` parent falls back to the thread's current span.
        """
        return _SpanHandle(self, name, attributes, parent=parent)

    def _open(self, name: str, attributes: dict[str, Any],
              parent: Span | None = None) -> Span:
        stack = self._thread_stack()
        if parent is None:
            parent = stack[-1] if stack else None
        with self._lock:
            span = Span(name, next(self._ids),
                        parent.span_id if parent is not None else None,
                        self._now(), attributes=dict(attributes))
            (parent.children if parent is not None else self.roots).append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._now()
        stack = self._thread_stack()
        while stack and stack[-1] is not span:
            stack.pop()  # orphaned children of an escaped exception
        if stack:
            stack.pop()

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._thread_stack()
        return stack[-1] if stack else None

    def walk(self) -> Iterator[Span]:
        """Pre-order traversal over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every recorded span with the given name."""
        return [s for s in self.walk() if s.name == name]


class _NullSpan(Span):
    """Shared do-nothing span handed out by :data:`NO_TRACER`."""

    def set(self, key: str, value: Any) -> None:
        return None


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan("null", 0, None, 0.0, end=0.0)
_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The disabled tracer: every span is the same throwaway object."""

    enabled = False
    roots: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullHandle:
        return _NULL_HANDLE

    def span_under(self, parent: Span | None, name: str,
                   **attributes: Any) -> _NullHandle:
        return _NULL_HANDLE

    def current(self) -> Span | None:
        return None

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> list[Span]:
        return []


#: Process-wide disabled tracer (safe to share: it holds no state).
NO_TRACER = NullTracer()
