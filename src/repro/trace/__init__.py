"""Structured tracing and metrics for the cross-platform runtime.

Spans (:mod:`repro.trace.spans`) wrap every optimizer phase and every
executor stage attempt/conversion; a shared :class:`MetricsRegistry`
(:mod:`repro.trace.metrics`) collects counters, gauges and histograms
from the monitor, the cost learner and the REST service; exporters
(:mod:`repro.trace.export`) render the in-memory tree, JSON-lines and
the Chrome trace-event format.
"""

from .export import (
    chrome_trace,
    profile_summary,
    span_records,
    trace_block,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .spans import NO_TRACER, NullTracer, Span, Tracer

__all__ = [
    "chrome_trace",
    "profile_summary",
    "span_records",
    "trace_block",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "NO_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]
