"""Trace exporters: JSON-lines, Chrome ``chrome://tracing`` and summaries.

Three consumers, three formats:

* tests and the REST service read the in-memory span tree directly
  (:meth:`Span.to_json` / :func:`trace_block`);
* :func:`write_jsonl` streams one JSON object per span (plus a final
  metrics record) for offline processing;
* :func:`chrome_trace` renders the *wall-clock* span tree and the
  *simulated* :class:`~repro.simulation.clock.CriticalPathTracker`
  timelines into the Chrome trace-event format, so a whole cross-platform
  job — optimizer phases, every stage attempt, conversions, retries — can
  be inspected visually in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence, TextIO

from .metrics import MetricsRegistry
from .spans import Span, Tracer

#: Chrome trace-event pids for the two timelines.
WALL_PID = 1
SIMULATED_PID_BASE = 2


def span_records(tracer: Tracer) -> list[dict[str, Any]]:
    """Flat JSON-ready records (with parent ids) for every span."""
    out = []
    for span in tracer.walk():
        out.append({
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "start": span.start,
            "duration": span.duration,
            "attributes": dict(span.attributes),
        })
    return out


def write_jsonl(handle: TextIO, tracer: Tracer,
                metrics: MetricsRegistry | None = None) -> int:
    """Write one JSON object per line: spans, then a metrics record.

    Returns the number of lines written.
    """
    records: list[dict[str, Any]] = span_records(tracer)
    if metrics is not None:
        records.append({"type": "metrics", **metrics.snapshot()})
    for record in records:
        handle.write(json.dumps(record, default=repr) + "\n")
    return len(records)


def _wall_events(tracer: Tracer) -> list[dict[str, Any]]:
    """Wall-clock spans as X events; stage lanes get their own tids.

    Spans carrying a ``lane`` attribute (executor stages dispatched by
    the concurrent stage scheduler) — and their descendants — land on
    ``tid = lane + 2``, so chrome://tracing shows the true wall-clock
    overlap of concurrent stages.  Driver-side spans stay on tid 1.
    """
    events: list[dict[str, Any]] = []
    lanes_seen: set[int] = set()

    def walk(span: Span, tid: int) -> None:
        lane = span.attributes.get("lane")
        if isinstance(lane, int):
            tid = lane + 2
            lanes_seen.add(lane)
        events.append({
            "name": span.name,
            "cat": "driver",
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": WALL_PID,
            "tid": tid,
            "args": dict(span.attributes),
        })
        for child in span.children:
            walk(child, tid)

    for root in tracer.roots:
        walk(root, 1)
    for lane in sorted(lanes_seen):
        events.append({"name": "thread_name", "ph": "M", "pid": WALL_PID,
                       "tid": lane + 2, "args": {"name": f"lane {lane}"}})
    return events


def _lane_of(start: float, lanes: list[float]) -> int:
    """First free lane for an event starting at ``start`` (greedy)."""
    for lane, busy_until in enumerate(lanes):
        if start >= busy_until - 1e-12:
            return lane
    lanes.append(0.0)
    return len(lanes) - 1


def _simulated_events(tracker: Any, pid: int) -> list[dict[str, Any]]:
    """Stage timings as overlap-stacked X events on one simulated pid."""
    events: list[dict[str, Any]] = []
    lanes: list[float] = []
    for timing in sorted(tracker.timings(), key=lambda t: (t.start, t.stage_id)):
        lane = _lane_of(timing.start, lanes)
        lanes[lane] = timing.end
        events.append({
            "name": timing.stage_id,
            "cat": "simulated",
            "ph": "X",
            "ts": round(timing.start * 1e6, 3),
            "dur": round(timing.duration * 1e6, 3),
            "pid": pid,
            "tid": lane + 1,
            "args": {k: round(v, 6)
                     for k, v in timing.meter.by_category().items()},
        })
    return events


def chrome_trace(tracer: Tracer | None = None,
                 trackers: Sequence[Any] = (),
                 metrics: MetricsRegistry | None = None) -> dict[str, Any]:
    """Build a Chrome trace-event document.

    The driver's wall-clock spans land on pid 1; each tracker's simulated
    stage timeline gets its own pid (2, 3, ...).  Both timelines use
    microseconds, so durations are comparable lane by lane even though
    their clocks differ.
    """
    events: list[dict[str, Any]] = []
    if tracer is not None:
        events.append(_process_name(WALL_PID, "driver (wall-clock)"))
        events.extend(_wall_events(tracer))
    for index, tracker in enumerate(trackers):
        pid = SIMULATED_PID_BASE + index
        events.append(_process_name(pid, f"job {index} (simulated)"))
        events.extend(_simulated_events(tracker, pid))
    document: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = metrics.snapshot()
    return document


def _process_name(pid: int, name: str) -> dict[str, Any]:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name}}


def write_chrome_trace(handle: TextIO, tracer: Tracer | None = None,
                       trackers: Sequence[Any] = (),
                       metrics: MetricsRegistry | None = None) -> int:
    """Serialize :func:`chrome_trace` to ``handle``; returns event count."""
    document = chrome_trace(tracer, trackers, metrics)
    json.dump(document, handle, default=repr)
    handle.write("\n")
    return len(document["traceEvents"])


def trace_block(tracer: Tracer | None = None,
                metrics: MetricsRegistry | None = None) -> dict[str, Any]:
    """The ``trace`` block attached to REST responses."""
    block: dict[str, Any] = {
        "spans": [root.to_json() for root in tracer.roots]
        if tracer is not None else [],
    }
    if metrics is not None:
        block["metrics"] = metrics.snapshot()
    return block


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"  {'  ' * depth}{span.name:<{max(1, 40 - 2 * depth)}} "
                 f"{span.duration * 1e3:9.3f} ms{suffix}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


#: Hit/miss counter pairs rendered as derived "cache hit rates" lines.
_CACHE_RATE_SOURCES = (
    ("conversion paths", "conversion_cache.path_hits",
     "conversion_cache.path_misses"),
    ("conversion trees", "conversion_cache.tree_hits",
     "conversion_cache.tree_misses"),
    ("execution plans", "plan_cache.hits", "plan_cache.misses"),
    ("intermediate results", "intermediate.hits", "intermediate.misses"),
)


def profile_summary(tracer: Tracer | None = None,
                    metrics: MetricsRegistry | None = None,
                    spans: Iterable[Span] | None = None) -> str:
    """Human-readable profile: the span tree plus the metrics snapshot."""
    lines: list[str] = []
    roots = list(spans) if spans is not None else (
        list(tracer.roots) if tracer is not None else [])
    if roots:
        lines.append("wall-clock spans:")
        for root in roots:
            _render_span(root, 0, lines)
    if metrics is not None:
        snapshot = metrics.snapshot()
        if snapshot["counters"]:
            lines.append("counters:")
            for name, value in snapshot["counters"].items():
                lines.append(f"  {name:<40} {value:12g}")
            rates = []
            for label, hit_key, miss_key in _CACHE_RATE_SOURCES:
                hits = snapshot["counters"].get(hit_key, 0)
                total = hits + snapshot["counters"].get(miss_key, 0)
                if total:
                    rates.append(f"  {label:<40} {hits / total:11.1%} "
                                 f"({hits:g}/{total:g})")
            if rates:
                lines.append("cache hit rates:")
                lines.extend(rates)
        if snapshot["gauges"]:
            lines.append("gauges:")
            for name, value in snapshot["gauges"].items():
                lines.append(f"  {name:<40} {value:12g}")
        if snapshot["histograms"]:
            lines.append("histograms:")
            for name, stats in snapshot["histograms"].items():
                lines.append(
                    f"  {name:<40} n={stats['count']} mean={stats['mean']:g} "
                    f"min={stats['min']:g} max={stats['max']:g}")
    return "\n".join(lines)
