"""A process-local metrics registry: counters, gauges and histograms.

One registry is shared per :class:`~repro.core.context.RheemContext` by the
monitor, the executor, the optimizer, the cost learner and the REST
service, so a whole cross-platform job rolls up into a single snapshot.
Instruments are created on first use (``registry.counter("x").inc()``)
and are deliberately tiny — a few float fields — so the hot path can
update them unconditionally.

The registry is shared across the job server's worker threads, so every
instrument update happens under one process-wide lock (``a += b`` on a
float is not atomic at the bytecode level).  The lock is the *innermost*
lock of the runtime (see ``DESIGN.md``, "Lock order"): no code path may
acquire another lock while holding it, which makes it always safe to take.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..concurrency.runtime import OrderedLock

#: Guards every instrument mutation and the registry's instrument tables.
#: Innermost lock in the documented lock order: never acquire any other
#: lock while holding it.
_METRICS_LOCK = OrderedLock("metrics")


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount!r}")
        with _METRICS_LOCK:
            self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        with _METRICS_LOCK:
            self.value = float(value)


@dataclass
class Histogram:
    """Summary statistics over observed samples.

    Keeps count/sum/min/max plus a bounded reservoir of the most recent
    samples for percentile queries in tests and reports.
    """

    name: str
    reservoir_size: int = 256
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with _METRICS_LOCK:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self.samples) < self.reservoir_size:
                self.samples.append(value)
            else:  # ring-buffer the reservoir: keep the most recent window
                self.samples[self.count % self.reservoir_size] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the retained reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with _METRICS_LOCK:
            ordered = sorted(self.samples)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_json(self) -> dict[str, float]:
        with _METRICS_LOCK:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0}
            return {"count": self.count, "sum": self.total, "min": self.min,
                    "max": self.max, "mean": self.total / self.count}


class MetricsRegistry:
    """Creates-and-caches named instruments; snapshots to JSON."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._histograms.setdefault(
                    name, Histogram(name))
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_json()
                           for n, h in sorted(self._histograms.items())},
        }
