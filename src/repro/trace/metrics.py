"""A process-local metrics registry: counters, gauges and histograms.

One registry is shared per :class:`~repro.core.context.RheemContext` by the
monitor, the executor, the optimizer, the cost learner and the REST
service, so a whole cross-platform job rolls up into a single snapshot.
Instruments are created on first use (``registry.counter("x").inc()``)
and are deliberately tiny — a few float fields — so the hot path can
update them unconditionally.

The registry is shared across the job server's worker threads, so every
instrument update happens under one process-wide lock (``a += b`` on a
float is not atomic at the bytecode level).  The lock is the *innermost*
lock of the runtime (see ``DESIGN.md``, "Lock order"): no code path may
acquire another lock while holding it, which makes it always safe to take.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..concurrency.runtime import OrderedLock

#: Guards every instrument mutation and the registry's instrument tables.
#: Innermost lock in the documented lock order: never acquire any other
#: lock while holding it.
_METRICS_LOCK = OrderedLock("metrics")


def _reset_metrics_lock_after_fork() -> None:
    """Replace the module lock with a fresh one in a forked child.

    The job server's process shards are forked while parent threads may
    hold the metrics lock (every instrument update takes it); the child
    would inherit it in the locked state and deadlock on its first
    counter increment.  Instruments look the lock up through the module
    global on every use, so swapping the global is sufficient.
    """
    global _METRICS_LOCK
    _METRICS_LOCK = OrderedLock("metrics")


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reset_metrics_lock_after_fork)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount!r}")
        with _METRICS_LOCK:
            self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        with _METRICS_LOCK:
            self.value = float(value)


@dataclass
class Histogram:
    """Summary statistics over observed samples.

    Keeps count/sum/min/max plus a bounded reservoir of the most recent
    samples for percentile queries in tests and reports.
    """

    name: str
    reservoir_size: int = 256
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with _METRICS_LOCK:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if len(self.samples) < self.reservoir_size:
                self.samples.append(value)
            else:  # ring-buffer the reservoir: keep the most recent window
                self.samples[self.count % self.reservoir_size] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the retained reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with _METRICS_LOCK:
            ordered = sorted(self.samples)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_json(self) -> dict[str, float]:
        with _METRICS_LOCK:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0}
            return {"count": self.count, "sum": self.total, "min": self.min,
                    "max": self.max, "mean": self.total / self.count}


class MetricsRegistry:
    """Creates-and-caches named instruments; snapshots to JSON."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with _METRICS_LOCK:
                instrument = self._histograms.setdefault(
                    name, Histogram(name))
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_json()
                           for n, h in sorted(self._histograms.items())},
        }


def merge_snapshots(*snapshots: dict[str, Any]) -> dict[str, Any]:
    """Aggregate registry snapshots from several processes into one.

    The process-backend job server keeps one :class:`MetricsRegistry` per
    worker shard (plus the parent's own); ``/metrics`` merges them into a
    single snapshot with the exact single-registry shape:

    * **counters** sum — each shard counted disjoint events;
    * **gauges** sum — every multi-process gauge in the tree is an
      occupancy or byte total (queue depth, in-flight stages, store
      bytes), for which the fleet-wide value is the sum;
    * **histograms** merge exactly on count/sum/min/max, with the mean
      recomputed from the merged totals (reservoir percentiles are
      per-process and are not merged).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist in snap.get("histograms", {}).items():
            if not hist.get("count"):
                continue
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(hist)
                continue
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
            merged["min"] = min(merged["min"], hist["min"])
            merged["max"] = max(merged["max"], hist["max"])
    for hist in histograms.values():
        hist["mean"] = hist["sum"] / hist["count"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
