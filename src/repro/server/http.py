"""A WSGI front end for :class:`~repro.server.server.JobServer`.

Routes::

    POST /jobs                submit and wait for the response (200/400);
                              queue-full admission rejections map to 429
                              with a ``Retry-After`` header, shutdown
                              rejections to 503, deadline timeouts to 408
    POST /jobs?mode=async     submit and return ``202 {"job_id": ...}``
    GET  /jobs/<id>           job status (plus the response once terminal)
    GET  /metrics             the metrics snapshot — aggregated across
                              every worker process on the process backend

Multi-tenant envelope: ``?tenant=`` (or an ``X-Tenant`` header) and
``?priority=`` tag the submission for fair-share admission; both default
to the document's own ``tenant``/``priority`` fields.

Usable with any WSGI server or called directly in tests; no sockets
required.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs

from .jobs import JobState
from .server import JobServer

StartResponse = Callable[..., Any]
WsgiApp = Callable[[dict[str, Any], StartResponse], Iterable[bytes]]

_STATUS_LINES = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    408: "408 Request Timeout",
    429: "429 Too Many Requests",
    503: "503 Service Unavailable",
}


def _reply(start_response: StartResponse, code: int,
           payload: dict[str, Any]) -> list[bytes]:
    headers = [("Content-Type", "application/json")]
    if code == 429 and "retry_after_s" in payload:
        # RFC-style backpressure hint: the 429 body's estimate (derived
        # from the server's service-time EWMA), rounded up to whole
        # seconds for the header form.
        headers.append(("Retry-After",
                        str(max(1, round(payload["retry_after_s"])))))
    start_response(_STATUS_LINES[code], headers)
    return [json.dumps(payload).encode()]


def _response_code(response: dict[str, Any]) -> int:
    if response.get("status") == "ok":
        return 200
    if response.get("status") == "rejected":
        return int(response.get("code", 429))
    if response.get("kind") == "Timeout":
        return 408
    return 400


def make_wsgi_app(server: JobServer) -> WsgiApp:
    """A WSGI application serving the job server's REST interface."""

    def app(environ: dict[str, Any],
            start_response: StartResponse) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "")
        path = environ.get("PATH_INFO", "")

        if method == "GET" and path == "/metrics":
            return _reply(start_response, 200, server.metrics_snapshot())

        if method == "GET" and path.startswith("/jobs/"):
            status = server.status(path[len("/jobs/"):])
            if status is None:
                return _reply(start_response, 404, {
                    "status": "error", "error": "unknown job id"})
            return _reply(start_response, 200, status)

        if method != "POST" or path != "/jobs":
            return _reply(start_response, 404, {
                "status": "error",
                "error": "POST /jobs, GET /jobs/<id> or GET /metrics"})

        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
            body = environ["wsgi.input"].read(length)
            document = json.loads(body)
        except (ValueError, KeyError) as exc:
            return _reply(start_response, 400, {
                "status": "error", "error": f"bad JSON: {exc}"})

        query = parse_qs(environ.get("QUERY_STRING", ""))
        deadline_s: float | None = None
        if "deadline_s" in query:
            try:
                deadline_s = float(query["deadline_s"][0])
            except ValueError:
                return _reply(start_response, 400, {
                    "status": "error", "error": "bad deadline_s"})
        tenant: str | None = None
        if "tenant" in query:
            tenant = query["tenant"][0]
        elif environ.get("HTTP_X_TENANT"):
            tenant = str(environ["HTTP_X_TENANT"])
        priority: int | None = None
        if "priority" in query:
            try:
                priority = int(query["priority"][0])
            except ValueError:
                return _reply(start_response, 400, {
                    "status": "error", "error": "bad priority"})

        job = server.submit(document, deadline_s=deadline_s,
                            tenant=tenant, priority=priority)
        if job.state is JobState.REJECTED:
            assert job.response is not None
            return _reply(start_response, _response_code(job.response),
                          job.response)
        if query.get("mode", [""])[0] == "async":
            return _reply(start_response, 202, {
                "status": "queued", "job_id": job.job_id})
        response = server.result(job.job_id)
        return _reply(start_response, _response_code(response), response)

    return app
