"""Process shards: per-process context replicas behind the job server.

CPython's GIL caps the thread backend at the CPU-bound ceiling measured
in ``BENCH_concurrency.json``; this module scales the serving layer past
it.  A :class:`ShardPool` keeps ``N`` worker *processes*, each owning a
full :class:`~repro.core.context.RheemContext` replica (its own plan
cache, conversion-graph memo tables, intermediate-result store and
metrics registry) built by a caller-supplied ``context_factory``.

Jobs are routed **stickily** by plan fingerprint — a stable digest over
the document's operator/sink/execution shape — so resubmissions of one
plan land on the shard whose signature-keyed caches are already hot for
it.  When the home shard is busy the router *spills* to the least-loaded
live shard (cache locality is a tie-break, never a reason to idle a
core); a spilled shard warms its own caches on first contact and serves
later spills warm.

The IPC protocol is deliberately tiny: one duplex pipe per shard carrying
``(request_id, kind, payload)`` tuples.  The shard process executes one
request at a time, which makes the child itself the critical section —
the parent-side :class:`ProcessShard` lock only serializes access to the
pipe.  Shard death (a killed or crashed worker) surfaces as
:class:`ShardDied` on whichever call was in flight; the pool retires the
slot (optionally respawning a fresh replica into it) and sticky routing
re-maps the slot's fingerprints onto the surviving shards.

Cross-process coordination:

* :meth:`ShardPool.publish` broadcasts learned cost parameters to every
  shard (each replica bumps its cost-model version and flushes its plan
  cache); the last publication is replayed into respawned shards so a
  replacement never serves plans priced under stale parameters;
* :meth:`ShardPool.metrics_snapshot` aggregates every shard's registry
  snapshot (plus last-known snapshots of dead shards, so their counters
  are not lost — and never double-counted) into the single-registry
  shape via :func:`repro.trace.metrics.merge_snapshots`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import signal
import time
from multiprocessing.connection import Connection
from typing import Any, Callable, Iterator

from ..concurrency import OrderedLock
from ..trace import MetricsRegistry, merge_snapshots

#: Seconds between liveness checks while waiting on a shard response.
_POLL_S = 0.05


class ShardDied(RuntimeError):
    """The worker process behind a shard exited (crash, kill, OOM)."""


class ShardCallTimeout(RuntimeError):
    """A shard is alive but did not answer within the call's timeout."""


def document_fingerprint(document: dict[str, Any]) -> str:
    """A stable routing fingerprint over the document's *plan shape*.

    Only the fields that determine the execution plan participate
    (``operators``, ``sink``, ``execution``): two tenants submitting the
    same plan share a home shard — and that shard's plan cache — while
    tenant/priority envelope fields never split the routing key.
    """
    shape = {key: document.get(key)
             for key in ("operators", "sink", "execution")
             if key in document}
    canonical = json.dumps(shape, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _shard_main(conn: Connection, shard_id: int,
                context_factory: Callable[[], Any],
                env: dict[str, Any] | None) -> None:
    """Worker-process entry point: serve requests until told to stop.

    Builds this shard's private context replica and service, then
    answers ``(request_id, kind, payload)`` requests one at a time.  A
    job failure is a *response*, never a process exit — the process only
    leaves the loop on ``stop``, a closed pipe or a signal.
    """
    # The parent handles Ctrl-C (drain-then-exit); an interrupted child
    # would look like a crash and trigger a pointless respawn.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — non-main thread
        pass
    from ..api.service import RheemService
    from ..core.executor import JobCancelled
    from ..trace import NO_TRACER, Tracer

    ctx = context_factory()
    service = RheemService(ctx, env)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        request_id, kind, payload = request
        status = "ok"
        value: Any = None
        try:
            if kind == "job":
                job_id, document, remaining_s, trace, observe = payload
                deadline = (None if remaining_s is None
                            else time.monotonic() + remaining_s)

                def cancel_check() -> None:
                    if deadline is not None and \
                            time.monotonic() > deadline:
                        raise JobCancelled(
                            f"{job_id} exceeded its deadline on "
                            f"shard {shard_id}")

                tracer = Tracer() if trace else NO_TRACER
                try:
                    cancel_check()  # the deadline may already be gone
                    value = service.submit(document, tracer=tracer,
                                           cancel_check=cancel_check,
                                           observations=observe)
                except JobCancelled as exc:
                    value = {"status": "error", "kind": "Timeout",
                             "error": str(exc), "job_id": job_id}
                except Exception as exc:  # noqa: BLE001 — mirror threads
                    value = {"status": "error",
                             "kind": type(exc).__name__,
                             "error": str(exc), "job_id": job_id}
            elif kind == "publish":
                ctx.publish_cost_params(payload)
            elif kind == "metrics":
                value = ctx.metrics.snapshot()
            elif kind == "ping":
                value = shard_id
            elif kind == "stop":
                break
            else:
                status = "error"
                value = f"unknown shard command {kind!r}"
        except Exception as exc:  # noqa: BLE001 — a shard must answer
            status = "error"
            value = f"{type(exc).__name__}: {exc}"
        try:
            conn.send((request_id, status, value))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class ProcessShard:
    """Parent-side handle on one worker process and its pipe.

    ``inflight`` (how many jobs the router has assigned and not yet
    released) is owned by the pool and guarded by the pool lock; the
    shard's own lock only serializes pipe traffic.
    """

    def __init__(self, slot: int, process: Any, conn: Connection,
                 metrics: MetricsRegistry) -> None:
        self.slot = slot
        self.process = process
        self.alive = True
        self.inflight = 0
        self.jobs_run = 0
        self._conn = conn
        self._lock = OrderedLock("server.shard", metrics)
        self._requests = itertools.count(1)

    def call(self, kind: str, payload: Any = None,
             timeout: float | None = None) -> Any:
        """One request/response round trip; raises on death or timeout.

        Raises:
            ShardDied: The worker process is gone (its pipe reported
                EOF, or liveness polling saw it exit).  The shard is
                marked dead; the pool retires it on the next failure
                handling pass.
            ShardCallTimeout: The worker is alive but still busy after
                ``timeout`` seconds.  The response, when it eventually
                arrives, is drained by the next call on this shard (every
                response carries its request id).
        """
        with self._lock:
            if not self.alive:
                raise ShardDied(f"shard {self.slot} is not alive")
            request_id = next(self._requests)
            give_up = None if timeout is None else \
                time.monotonic() + timeout
            try:
                self._conn.send((request_id, kind, payload))
                while True:
                    while not self._conn.poll(_POLL_S):
                        if not self.process.is_alive():
                            raise ShardDied(
                                f"shard {self.slot} died (exit code "
                                f"{self.process.exitcode}) during "
                                f"{kind!r}")
                        if give_up is not None and \
                                time.monotonic() > give_up:
                            raise ShardCallTimeout(
                                f"shard {self.slot} still busy after "
                                f"{timeout}s ({kind!r})")
                    response_id, status, value = self._conn.recv()
                    if response_id == request_id:
                        break
                    # A stale answer to a call that timed out earlier.
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.alive = False
                raise ShardDied(
                    f"shard {self.slot} died during {kind!r}: {exc}"
                ) from exc
            except ShardDied:
                self.alive = False
                raise
        if status != "ok":
            raise RuntimeError(f"shard {self.slot} {kind!r} failed: "
                               f"{value}")
        return value

    def run_job(self, job_id: str, document: dict[str, Any],
                remaining_s: float | None, trace: bool,
                observe: bool = False) -> dict[str, Any]:
        """Execute one job document on this shard; returns its response.

        ``observe`` asks the shard to attach calibration observations to
        a successful, calibration-eligible response (the parent's cost
        calibrator strips and ingests them).
        """
        response = self.call("job", (job_id, document, remaining_s, trace,
                                     observe))
        self.jobs_run += 1
        return response  # type: ignore[no-any-return]

    def stop(self) -> None:
        """Ask the worker to exit its loop (best effort)."""
        try:
            with self._lock:
                if self.alive:
                    self._conn.send((0, "stop", None))
        except (BrokenPipeError, OSError):
            pass


class ShardPool:
    """``N`` process shards with sticky routing and broadcast plumbing.

    Args:
        context_factory: Zero-argument callable building one context
            replica *inside the worker process*.  Under the default
            ``fork`` start method any callable works (closures
            included); under ``spawn`` it must be picklable.
        shards: Worker-process count (``>= 1``).
        env: Extra names exposed to document UDF expressions (passed to
            each shard's :class:`~repro.api.service.RheemService`).
        metrics: Parent-side registry for the pool's own lock and
            routing instruments.
        respawn: Replace a dead shard with a fresh replica (the last
            cost-parameter publication is replayed into it).  With
            ``False`` a dead slot stays retired and its fingerprints
            re-map permanently.
        start_method: Multiprocessing start method; defaults to ``fork``
            where available (no pickling constraints), else ``spawn``.
    """

    def __init__(self, context_factory: Callable[[], Any],
                 shards: int = 4,
                 env: dict[str, Any] | None = None,
                 metrics: MetricsRegistry | None = None,
                 respawn: bool = True,
                 start_method: str | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.size = max(1, int(shards))
        self.respawn = respawn
        self._factory = context_factory
        self._env = dict(env or {})
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._mp = multiprocessing.get_context(start_method)
        self._lock = OrderedLock("server.pool", self.metrics)
        self._published: dict[str, Any] | None = None
        # Last-known registry snapshot per shard *incarnation* (keyed by
        # slot and pid so a respawned shard never overwrites — or
        # double-counts with — its predecessor's committed counters).
        self._last_metrics: dict[str, dict[str, Any]] = {}
        self._slots: list[ProcessShard | None] = [
            self._spawn(slot) for slot in range(self.size)]

    # ------------------------------------------------------------- spawning
    def _spawn(self, slot: int) -> ProcessShard:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_shard_main,
            args=(child_conn, slot, self._factory, self._env),
            name=f"rheem-shard-{slot}", daemon=True)
        process.start()
        # The parent's copy of the child end must close so a dead child
        # reliably surfaces as EOF on the parent connection.
        child_conn.close()
        return ProcessShard(slot, process, parent_conn, self.metrics)

    def handle_failure(self, shard: ProcessShard) -> None:
        """Retire a dead shard's slot; respawn a replacement if enabled.

        Idempotent per shard object: only the first caller swaps the
        slot, so concurrent jobs failing on the same dead shard can all
        report it safely (and counters stay single-published).
        """
        replacement: ProcessShard | None = None
        if self.respawn:
            # Fork OUTSIDE the pool lock: at-fork handlers reset the
            # global metrics lock in the child, but holding our own lock
            # across the fork would still copy it locked into the child.
            replacement = self._spawn(shard.slot)
        with self._lock:
            if self._slots[shard.slot] is not shard:
                stale = replacement  # someone else already swapped it
            else:
                self.metrics.counter("server.shards.died").inc()
                self._slots[shard.slot] = replacement
                stale = None
        if stale is not None:
            stale.stop()
            stale.process.join(timeout=5)
            return
        if replacement is not None and self._published is not None:
            try:
                replacement.call("publish", self._published, timeout=60)
                self.metrics.counter("server.shards.respawned").inc()
            except (ShardDied, ShardCallTimeout):
                pass

    # -------------------------------------------------------------- routing
    def _live_locked(self) -> list[ProcessShard]:
        return [s for s in self._slots if s is not None and s.alive]

    def live_shards(self) -> list[ProcessShard]:
        """The currently live shards (routing targets)."""
        with self._lock:
            return self._live_locked()

    def pick(self, fingerprint: str) -> ProcessShard:
        """Route one job: sticky by fingerprint, spilling when busy.

        The home slot is ``digest mod size``.  Scanning the slot ring
        from home, the first *live* shard with the minimum in-flight
        count wins — so an idle home shard always takes its own
        fingerprints (cache locality), a busy home spills to the
        least-loaded survivor (utilization), and a dead home re-maps
        deterministically to the next live slot.

        Raises:
            ShardDied: When no live shard remains.
        """
        home = int(fingerprint[:16], 16) % self.size
        with self._lock:
            best: ProcessShard | None = None
            for offset in range(self.size):
                shard = self._slots[(home + offset) % self.size]
                if shard is None or not shard.alive:
                    continue
                if best is None or shard.inflight < best.inflight:
                    best = shard
                    if best.inflight == 0:
                        break
            if best is None:
                raise ShardDied("no live shards left in the pool")
            best.inflight += 1
            return best

    def release(self, shard: ProcessShard) -> None:
        """Return a routed job's slot reservation."""
        with self._lock:
            shard.inflight -= 1

    # ------------------------------------------------------------ broadcast
    def publish(self, params: dict[str, Any],
                timeout: float | None = 60.0) -> int:
        """Broadcast cost parameters to every live shard.

        Each replica applies them under its own publish lock (version
        bump + plan-cache and result-store flush).  The publication is
        remembered and replayed into respawned shards.  Returns how many
        shards acknowledged.
        """
        with self._lock:
            self._published = dict(params)
            shards = self._live_locked()
        acknowledged = 0
        for shard in shards:
            try:
                shard.call("publish", params, timeout=timeout)
                acknowledged += 1
            except (ShardDied, ShardCallTimeout):
                continue
        return acknowledged

    def broadcast_job(self, document: dict[str, Any],
                      trace: bool = False) -> list[dict[str, Any]]:
        """Run one document on EVERY live shard (replica pre-warming).

        Bypasses sticky routing on purpose: after a warm-up broadcast,
        any spill target already holds the plan hot in its caches.
        """
        responses = []
        for shard in self.live_shards():
            try:
                responses.append(shard.run_job("warmup", document, None,
                                               trace))
            except ShardDied:
                self.handle_failure(shard)
        return responses

    def metrics_snapshot(self) -> dict[str, Any]:
        """Merge every shard's registry snapshot (single-registry shape).

        A busy shard answers after its current job; a dead shard
        contributes its last-known snapshot exactly once, so committed
        counters survive the shard without double-publishing.
        """
        snapshots: list[dict[str, Any]] = []
        with self._lock:
            shards = self._live_locked()
        for shard in shards:
            try:
                snap = shard.call("metrics", timeout=120.0)
            except (ShardDied, ShardCallTimeout):
                snap = None
                if not shard.alive:
                    self.handle_failure(shard)
            if snap is not None:
                with self._lock:
                    self._last_metrics[self._metrics_key(shard)] = snap
        with self._lock:
            snapshots.extend(self._last_metrics.values())
        return merge_snapshots(*snapshots)

    @staticmethod
    def _metrics_key(shard: ProcessShard) -> str:
        return f"{shard.slot}:{shard.process.pid}"

    # ------------------------------------------------------------ lifecycle
    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready per-slot occupancy (for ``JobServer.snapshot``)."""
        with self._lock:
            slots = list(self._slots)
        return [
            {"slot": i,
             "alive": bool(s is not None and s.alive),
             "inflight": 0 if s is None else s.inflight,
             "jobs_run": 0 if s is None else s.jobs_run,
             "pid": None if s is None else s.process.pid}
            for i, s in enumerate(slots)
        ]

    def _drain_slots(self) -> Iterator[ProcessShard]:
        with self._lock:
            slots = [s for s in self._slots if s is not None]
        yield from slots

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every shard process (ask nicely, then terminate).

        Each live shard's registry is snapshotted first, so
        :meth:`metrics_snapshot` keeps reporting the full aggregate
        after the processes are gone (``/metrics`` outlives a drain).
        """
        for shard in self._drain_slots():
            if shard.alive:
                try:
                    snap = shard.call("metrics", timeout=timeout)
                except (ShardDied, ShardCallTimeout, RuntimeError):
                    continue
                with self._lock:
                    self._last_metrics[self._metrics_key(shard)] = snap
        for shard in self._drain_slots():
            shard.stop()
        deadline = time.monotonic() + timeout
        for shard in self._drain_slots():
            shard.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2)
            shard.alive = False

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


__all__ = [
    "ProcessShard",
    "ShardCallTimeout",
    "ShardDied",
    "ShardPool",
    "document_fingerprint",
]
