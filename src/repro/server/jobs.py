"""Job records and lifecycle states for the concurrent job server."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..trace import Tracer


class JobState(str, Enum):
    """Lifecycle of one submitted job.

    ``QUEUED -> RUNNING -> DONE | FAILED | TIMEOUT`` for admitted jobs;
    ``REJECTED`` is terminal at admission time (queue full or server
    stopping) — a rejected job never occupies a queue slot.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.QUEUED, JobState.RUNNING)


#: States a job can end in (mirrored as ``server.jobs.<state>`` counters).
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.TIMEOUT,
                   JobState.REJECTED)


@dataclass
class Job:
    """One submission: its document, per-job tracer and lifecycle record.

    All mutable fields are written under the server's job-table lock (or,
    for ``shard_slot``, by the single worker dispatching the job before
    any reader can see it); the ``finished`` event is set exactly once
    when the job reaches a terminal state, so waiters never poll.

    ``tenant`` and ``priority`` drive fair-share admission and pick
    order; ``fingerprint`` is the sticky-routing key (process backend
    only) and ``shard_slot`` records where the job actually ran.
    """

    job_id: str
    document: dict[str, Any]
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    deadline_s: float | None = None
    response: dict[str, Any] | None = None
    tenant: str = "default"
    priority: int = 0
    fingerprint: str | None = None
    shard_slot: int | None = None
    tracer: Any = field(default_factory=Tracer)
    finished: threading.Event = field(default_factory=threading.Event)

    @property
    def wait_s(self) -> float | None:
        """Seconds spent queued (``None`` until the job starts)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_s(self) -> float | None:
        """Seconds spent running (``None`` until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def status(self) -> dict[str, Any]:
        """A JSON-ready status document (the ``GET /jobs/<id>`` body)."""
        status: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "deadline_s": self.deadline_s,
            "tenant": self.tenant,
            "priority": self.priority,
        }
        if self.shard_slot is not None:
            status["shard"] = self.shard_slot
        if self.wait_s is not None:
            status["wait_s"] = self.wait_s
        if self.run_s is not None:
            status["run_s"] = self.run_s
        if self.state.terminal and self.response is not None:
            status["response"] = self.response
        return status
