"""The concurrent job server: worker pool, admission control, deadlines.

One :class:`JobServer` wraps one shared :class:`~repro.core.context.
RheemContext`.  Jobs are admitted into a bounded queue (capacity =
``workers + queue_size``; the structured 429-style rejection is returned
instead of blocking when it is full), dispatched to a
:class:`~concurrent.futures.ThreadPoolExecutor`, and each runs through
:class:`~repro.api.service.RheemService` with a per-job tracer and a
deadline enforced cooperatively at executor stage boundaries.

Shared-vs-isolated split (see ``DESIGN.md`` for the lock order):

* **shared, locked** — execution-plan cache, conversion-graph memo
  tables, metrics registry, learned cost parameters;
* **per-job** — tracer, channel environment, executor scratch state,
  monitor, critical-path tracker.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from ..api.service import RheemService
from ..concurrency import OrderedLock
from ..core.context import RheemContext
from ..core.executor import JobCancelled
from ..trace import Tracer
from .jobs import Job, JobState


class AdmissionError(RuntimeError):
    """Raised by :meth:`JobServer.submit_sync` on rejection.

    Carries the structured rejection ``response`` (the same dict an async
    :meth:`JobServer.submit` returns on the rejected job).
    """

    def __init__(self, response: dict[str, Any]) -> None:
        super().__init__(response.get("error", "job rejected"))
        self.response = response


class JobServer:
    """Accepts, schedules and isolates concurrent job-document executions.

    Args:
        ctx: The shared context (a fresh one by default).  Its plan cache,
            conversion graph, metrics registry and cost model are shared by
            every job; everything else a job touches is per-job state.
        env: Extra names exposed to document UDF expressions.
        workers: Worker-thread count (``>= 1``).
        queue_size: Jobs allowed to *wait* beyond the running ones; the
            admission bound is ``workers + queue_size`` jobs in the system.
        default_deadline_s: Deadline applied to jobs that do not carry one
            (``None``: no deadline).  Deadlines are measured from
            *admission*, so time spent queued counts against them.
        stage_threads: Total intra-job stage-lane budget across every
            worker (default ``2 * workers``).  Each job's executor caps
            its ``stage_parallelism`` at ``stage_threads // workers``, so
            admission control keeps bounding the real thread count even
            when jobs run wide polystore plans concurrently.
    """

    def __init__(
        self,
        ctx: RheemContext | None = None,
        env: dict[str, Any] | None = None,
        workers: int = 4,
        queue_size: int = 16,
        default_deadline_s: float | None = None,
        stage_threads: int | None = None,
    ) -> None:
        self.ctx = ctx if ctx is not None else RheemContext()
        self.service = RheemService(self.ctx, env)
        self.workers = max(1, int(workers))
        self.queue_size = max(0, int(queue_size))
        self.default_deadline_s = default_deadline_s
        self.stage_threads = max(self.workers, int(
            stage_threads if stage_threads is not None else 2 * self.workers))
        # Executors read the cap from the shared config; an explicit
        # user-configured cap wins.
        self.ctx.config.setdefault("stage_parallelism_cap",
                                   max(1, self.stage_threads // self.workers))
        self.metrics = self.ctx.metrics
        # Outermost lock of the runtime (rank 10 in the registry —
        # repro.concurrency.order): guards the job table, the
        # queued/running counters and the accepting flag.  Never held
        # while a job executes.
        self._lock = OrderedLock("server.jobs", self.metrics)
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, Future[None]] = {}
        self._queued = 0
        self._running = 0
        self._accepting = True
        self._ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="rheem-job")

    # ------------------------------------------------------------ admission
    @property
    def capacity(self) -> int:
        """Maximum jobs in the system (queued + running) at once."""
        return self.workers + self.queue_size

    def submit(self, document: dict[str, Any],
               deadline_s: float | None = None) -> Job:
        """Admit one job document; returns its :class:`Job` handle.

        The returned job is either ``queued`` (admitted — await
        :meth:`result`) or ``rejected`` with a structured 429/503-style
        ``response`` already attached; a rejected job never occupies a
        queue slot and is not retained in the job table.
        """
        now = time.monotonic()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = Job(job_id=job_id, document=document, submitted_at=now,
                      deadline_s=deadline_s)
            if not self._accepting:
                return self._reject_locked(job, code=503,
                                           kind="ServerStopping",
                                           error="server is shutting down")
            if self._queued + self._running >= self.capacity:
                return self._reject_locked(
                    job, code=429, kind="QueueFull",
                    error=(f"job queue full: {self._queued} queued + "
                           f"{self._running} running "
                           f"(capacity {self.capacity})"))
            self._jobs[job_id] = job
            self._queued += 1
            self._update_gauges_locked()
            # Pool.submit is a non-blocking enqueue; keeping it atomic
            # with admission keeps shutdown's _futures snapshot exact (a
            # cancelled job can never miss the table).
            # lock-ok: non-blocking enqueue, must stay atomic w/ admission
            self._futures[job_id] = self._pool.submit(self._run, job)
        self.metrics.counter("server.jobs.submitted").inc()
        return job

    def submit_sync(self, document: dict[str, Any],
                    deadline_s: float | None = None,
                    timeout: float | None = None) -> dict[str, Any]:
        """Admit and wait; returns the job's response document.

        Raises:
            AdmissionError: If the job was rejected at admission.
        """
        job = self.submit(document, deadline_s=deadline_s)
        if job.state is JobState.REJECTED:
            assert job.response is not None
            raise AdmissionError(job.response)
        return self.result(job.job_id, timeout=timeout)

    def _reject_locked(self, job: Job, code: int, kind: str,
                       error: str) -> Job:
        job.state = JobState.REJECTED
        job.finished_at = time.monotonic()
        job.response = {"status": "rejected", "code": code, "kind": kind,
                        "error": error, "job_id": job.job_id,
                        "queue_depth": self._queued,
                        "in_flight": self._running}
        job.finished.set()
        self.metrics.counter("server.jobs.rejected").inc()
        return job

    # -------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job | None:
        """The job handle for ``job_id`` (``None`` if unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> dict[str, Any] | None:
        """JSON-ready status for ``job_id`` (``None`` if unknown)."""
        job = self.get(job_id)
        return None if job is None else job.status()

    def result(self, job_id: str, timeout: float | None = None
               ) -> dict[str, Any]:
        """Block until ``job_id`` finishes; returns its response document.

        Raises:
            KeyError: If the job id is unknown.
            TimeoutError: If ``timeout`` elapses first.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.finished.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.state.value} "
                               f"after {timeout}s")
        assert job.response is not None
        return job.response

    def snapshot(self) -> dict[str, Any]:
        """Queue/worker occupancy and per-state job counts."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "workers": self.workers,
                "queue_size": self.queue_size,
                "capacity": self.capacity,
                "accepting": self._accepting,
                "queue_depth": self._queued,
                "in_flight": self._running,
                "states": states,
            }

    # ------------------------------------------------------------ lifecycle
    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting jobs; by default drain the queue gracefully.

        With ``drain=True`` every already-admitted job runs to completion
        before the pool stops.  With ``drain=False`` still-queued jobs are
        cancelled and finish ``failed`` (kind ``ServerShutdown``); running
        jobs are never interrupted mid-stage.
        """
        with self._lock:
            self._accepting = False
            futures = dict(self._futures)
        if drain:
            self._pool.shutdown(wait=True)
            return
        self._pool.shutdown(wait=False, cancel_futures=True)
        for job_id, future in futures.items():
            if not future.cancelled():
                continue
            with self._lock:
                job = self._jobs[job_id]
                if job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.FAILED
                job.finished_at = time.monotonic()
                job.response = {"status": "error", "kind": "ServerShutdown",
                                "error": "server shut down before the job "
                                         "ran", "job_id": job_id}
                self._queued -= 1
                self._update_gauges_locked()
            self.metrics.counter("server.jobs.failed").inc()
            job.finished.set()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)

    # -------------------------------------------------------------- workers
    def _cancel_check(self, job: Job) -> None:
        """Stage-boundary hook: raise once the job's deadline has passed."""
        if job.deadline_s is None:
            return
        if time.monotonic() - job.submitted_at > job.deadline_s:
            raise JobCancelled(
                f"{job.job_id} exceeded its deadline of {job.deadline_s}s")

    def _run(self, job: Job) -> None:
        """Worker body: run one admitted job under per-job state."""
        with self._lock:
            self._queued -= 1
            self._running += 1
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            self._update_gauges_locked()
        assert job.wait_s is not None
        self.metrics.histogram("server.wait_s").observe(job.wait_s)
        tracer: Tracer = job.tracer
        state = JobState.DONE
        try:
            # The deadline may already have passed while the job queued.
            self._cancel_check(job)
            response = self.service.submit(
                job.document, tracer=tracer,
                cancel_check=lambda: self._cancel_check(job))
            if response.get("status") != "ok":
                state = JobState.FAILED
        except JobCancelled as exc:
            state = JobState.TIMEOUT
            response = {"status": "error", "kind": "Timeout",
                        "error": str(exc), "job_id": job.job_id}
        except Exception as exc:  # noqa: BLE001 — a worker must never die
            state = JobState.FAILED
            response = {"status": "error", "kind": type(exc).__name__,
                        "error": str(exc), "job_id": job.job_id}
        with self._lock:
            job.state = state
            job.finished_at = time.monotonic()
            job.response = response
            self._running -= 1
            self._update_gauges_locked()
        assert job.run_s is not None
        self.metrics.histogram("server.run_s").observe(job.run_s)
        self.metrics.counter(f"server.jobs.{state.value}").inc()
        job.finished.set()

    def _update_gauges_locked(self) -> None:
        self.metrics.gauge("server.queue_depth").set(self._queued)
        self.metrics.gauge("server.in_flight").set(self._running)
