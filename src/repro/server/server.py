"""The concurrent job server: worker pools, admission control, deadlines.

One :class:`JobServer` schedules jobs onto one of two backends:

* ``backend="thread"`` — the baseline: a shared
  :class:`~repro.core.context.RheemContext` behind a
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Jobs share the
  expensive read-mostly state (plan cache, conversion-graph memo tables,
  metrics, learned cost parameters) under the documented lock order and
  isolate everything else per job.
* ``backend="process"`` — scale-out past the GIL: a
  :class:`~repro.server.shards.ShardPool` of worker *processes*, each
  holding a private context replica.  Jobs route stickily by plan
  fingerprint so a plan's home shard keeps its caches hot;
  :meth:`publish_cost_params` broadcasts to every shard and
  :meth:`metrics_snapshot` merges the per-shard registries back into the
  single-registry shape.

Both backends share one admission and dispatch layer: a bounded queue
(capacity = ``workers + queue_size``) whose structured 429-style
rejection carries the queue depth and a ``Retry-After`` estimate derived
from an EWMA of recent service times; priority scheduling (higher
``priority`` first); and per-tenant fair-share dispatch — an optional
hard cap on concurrently *running* jobs per tenant plus a
fewest-running-first tie-break, so one chatty tenant cannot starve the
rest of the pool.

Dispatch is token-based: every admission enqueues one drain token into
the worker pool, and each token loops *pick → run → account → re-pick*
until no eligible job remains.  The re-pick after finishing is what
makes quota-blocked jobs live-lock free — the worker whose completion
freed a tenant slot is itself the one that immediately rechecks the
queue.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..api.service import RheemService
from ..concurrency import OrderedLock
from ..core.context import RheemContext
from ..core.executor import JobCancelled
from ..learn.calibration import CostCalibrator, observation_from_json
from ..trace import NO_TRACER, MetricsRegistry, Tracer, merge_snapshots
from .jobs import Job, JobState
from .shards import ShardDied, ShardPool, document_fingerprint

#: Weight of the newest sample in the service-time EWMA feeding the
#: ``Retry-After`` estimate on queue-full rejections.
_EWMA_ALPHA = 0.2


class AdmissionError(RuntimeError):
    """Raised by :meth:`JobServer.submit_sync` on rejection.

    Carries the structured rejection ``response`` (the same dict an async
    :meth:`JobServer.submit` returns on the rejected job).
    """

    def __init__(self, response: dict[str, Any]) -> None:
        super().__init__(response.get("error", "job rejected"))
        self.response = response


class JobServer:
    """Accepts, schedules and isolates concurrent job-document executions.

    Args:
        ctx: The shared context for the thread backend (a fresh one by
            default).  Unused — and never built — under the process
            backend, where every shard owns a private replica.
        env: Extra names exposed to document UDF expressions.
        workers: Worker count (``>= 1``): pool threads for the thread
            backend, shard *processes* for the process backend.
        queue_size: Jobs allowed to *wait* beyond the running ones; the
            admission bound is ``workers + queue_size`` jobs in the system.
        default_deadline_s: Deadline applied to jobs that do not carry one
            (``None``: no deadline).  Deadlines are measured from
            *admission*, so time spent queued counts against them.
        stage_threads: Total intra-job stage-lane budget across every
            worker (default ``2 * workers``).  Each job's executor caps
            its ``stage_parallelism`` at ``stage_threads // workers``, so
            admission control keeps bounding the real thread count even
            when jobs run wide polystore plans concurrently.  (Thread
            backend only; a process shard budgets its own lanes.)
        backend: ``"thread"`` (default, the bit-for-bit baseline) or
            ``"process"``.
        context_factory: Process backend: builds one context replica
            inside each shard process (default: a plain
            :class:`RheemContext`).  Must be picklable under the
            ``spawn`` start method; any callable works under ``fork``.
        tenant_quota: Maximum concurrently *running* jobs per tenant
            (``None``: no cap).  Jobs over quota stay queued — they are
            never rejected for quota, only for capacity — while other
            tenants' jobs overtake them.
        tracing: Attach a recording per-job tracer (default).  Off, jobs
            run against the no-op tracer and responses omit the
            ``trace`` block — the serving hot path for benchmarks.
        respawn_shards: Process backend: replace dead shards with fresh
            replicas (default).  Off, a dead slot stays retired.
        start_method: Process backend: multiprocessing start method
            (default ``fork`` where available).
        calibrate: Close the trace → cost-model loop: committed jobs'
            stage observations feed a :class:`CostCalibrator`, whose
            refits publish through :meth:`publish_cost_params` (broadcast
            to every shard on the process backend).  Refits run on the
            worker thread *after* the job's response is published, so
            response latency never pays for the genetic fit.
        calibration: Extra keyword arguments for the
            :class:`CostCalibrator` (``min_samples``,
            ``drift_threshold``, ``initial_params``, ``cluster``,
            ``vectorize``, GA budget...).  ``initial_params`` defaults to
            the shared context's published snapshot on the thread
            backend; on the process backend pass the factory's params
            explicitly if drift should be measured against them.
    """

    def __init__(
        self,
        ctx: RheemContext | None = None,
        env: dict[str, Any] | None = None,
        workers: int = 4,
        queue_size: int = 16,
        default_deadline_s: float | None = None,
        stage_threads: int | None = None,
        *,
        backend: str = "thread",
        context_factory: Callable[[], Any] | None = None,
        tenant_quota: int | None = None,
        tracing: bool = True,
        respawn_shards: bool = True,
        start_method: str | None = None,
        calibrate: bool = False,
        calibration: dict[str, Any] | None = None,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', "
                             f"got {backend!r}")
        self.backend = backend
        self.workers = max(1, int(workers))
        self.queue_size = max(0, int(queue_size))
        self.default_deadline_s = default_deadline_s
        self.tenant_quota = (None if tenant_quota is None
                             else max(1, int(tenant_quota)))
        self.stage_threads = max(self.workers, int(
            stage_threads if stage_threads is not None else 2 * self.workers))
        self._tracing = bool(tracing)
        self.ctx: RheemContext | None
        self.service: RheemService | None
        self._shards: ShardPool | None
        if backend == "process":
            # The parent never executes plans: no context here, just its
            # own registry for server/lock instruments.  Shard replicas
            # are built by the factory inside each worker process.
            self.ctx = None
            self.service = None
            self.metrics = MetricsRegistry()
            self._shards = ShardPool(
                context_factory if context_factory is not None
                else RheemContext,
                shards=self.workers, env=env, metrics=self.metrics,
                respawn=respawn_shards, start_method=start_method)
        else:
            self.ctx = ctx if ctx is not None else RheemContext()
            self.service = RheemService(self.ctx, env)
            # Executors read the cap from the shared config; an explicit
            # user-configured cap wins.
            self.ctx.config.setdefault(
                "stage_parallelism_cap",
                max(1, self.stage_threads // self.workers))
            self.metrics = self.ctx.metrics
            self._shards = None
        # Outermost lock of the runtime (rank 10 in the registry —
        # repro.concurrency.order): guards the job table, the pending
        # queue, the queued/running/per-tenant counters, the service-time
        # EWMA and the accepting/cancelled flags.  Never held while a job
        # executes.
        self._lock = OrderedLock("server.jobs", self.metrics)
        self._jobs: dict[str, Job] = {}
        self._pending: list[Job] = []
        self._tenant_running: dict[str, int] = {}
        self._run_ewma: float | None = None
        self._queued = 0
        self._running = 0
        self._accepting = True
        self._cancelled = False
        self._ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="rheem-job")
        self.calibrator: CostCalibrator | None = None
        if calibrate:
            self.calibrator = self._build_calibrator(dict(calibration or {}))

    def _build_calibrator(self, knobs: dict[str, Any]) -> CostCalibrator:
        """Wire a :class:`CostCalibrator` to this server's publish path.

        The thread backend calibrates against the shared context's
        cluster and currently published parameters; the process backend
        (where the parent holds no context) uses a default
        :class:`~repro.simulation.cluster.VirtualCluster` unless the
        ``calibration`` dict supplies one — shard replicas are built from
        a factory the parent cannot introspect.
        """
        from ..simulation.cluster import VirtualCluster

        cluster = knobs.pop("cluster", None)
        if cluster is None:
            cluster = (self.ctx.cluster if self.ctx is not None
                       else VirtualCluster())
        initial = knobs.pop("initial_params", None)
        if initial is None and self.ctx is not None:
            initial = self.ctx.cost_params_snapshot()
        vectorize = knobs.pop("vectorize", None)
        if vectorize is None:
            vectorize = (bool(self.ctx.config.get("vectorize", False))
                         if self.ctx is not None else False)
        return CostCalibrator(
            cluster, self.publish_cost_params,
            vectorize=bool(vectorize), initial_params=initial,
            metrics=self.metrics, tracer=Tracer(), **knobs)

    # ------------------------------------------------------------ admission
    @property
    def capacity(self) -> int:
        """Maximum jobs in the system (queued + running) at once."""
        return self.workers + self.queue_size

    def submit(self, document: dict[str, Any],
               deadline_s: float | None = None,
               tenant: str | None = None,
               priority: int | None = None) -> Job:
        """Admit one job document; returns its :class:`Job` handle.

        The returned job is either ``queued`` (admitted — await
        :meth:`result`) or ``rejected`` with a structured 429/503-style
        ``response`` already attached; a rejected job never occupies a
        queue slot and is not retained in the job table.

        ``tenant`` and ``priority`` default to the document's own
        ``tenant``/``priority`` envelope fields (themselves defaulting to
        ``"default"``/``0``); neither participates in the routing
        fingerprint, so tenants submitting the same plan share its home
        shard's warm caches.
        """
        now = time.monotonic()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if tenant is None:
            tenant = str(document.get("tenant", "default"))
        if priority is None:
            priority = int(document.get("priority", 0))
        fingerprint = (document_fingerprint(document)
                       if self._shards is not None else None)
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = Job(job_id=job_id, document=document, submitted_at=now,
                      deadline_s=deadline_s, tenant=tenant,
                      priority=priority, fingerprint=fingerprint,
                      tracer=Tracer() if self._tracing else NO_TRACER)
            if not self._accepting:
                return self._reject_locked(job, code=503,
                                           kind="ServerStopping",
                                           error="server is shutting down")
            if self._queued + self._running >= self.capacity:
                return self._reject_locked(
                    job, code=429, kind="QueueFull",
                    error=(f"job queue full: {self._queued} queued + "
                           f"{self._running} running "
                           f"(capacity {self.capacity})"))
            self._jobs[job_id] = job
            self._pending.append(job)
            self._queued += 1
            self._update_gauges_locked()
            # Pool.submit is a non-blocking enqueue; keeping it atomic
            # with admission guarantees a drain token exists for every
            # pending job even as shutdown races the admission path.
            # lock-ok: non-blocking enqueue, must stay atomic w/ admission
            self._pool.submit(self._drain)
        self.metrics.counter("server.jobs.submitted").inc()
        return job

    def submit_sync(self, document: dict[str, Any],
                    deadline_s: float | None = None,
                    timeout: float | None = None,
                    tenant: str | None = None,
                    priority: int | None = None) -> dict[str, Any]:
        """Admit and wait; returns the job's response document.

        Raises:
            AdmissionError: If the job was rejected at admission.
        """
        job = self.submit(document, deadline_s=deadline_s, tenant=tenant,
                          priority=priority)
        if job.state is JobState.REJECTED:
            assert job.response is not None
            raise AdmissionError(job.response)
        return self.result(job.job_id, timeout=timeout)

    def _retry_after_locked(self) -> float:
        """Estimated seconds until a queue slot frees (backpressure hint).

        With ``W`` workers draining jobs that each take about the EWMA of
        recent service times, a client retrying after roughly
        ``ewma * (in_system + 1) / W`` seconds finds the backlog it saw
        fully drained.  Before any job has finished, fall back to one
        second — better an arbitrary-but-bounded hint than none.
        """
        if self._run_ewma is None:
            return 1.0
        in_system = self._queued + self._running
        return round(
            max(0.1, self._run_ewma * (in_system + 1) / self.workers), 3)

    def _reject_locked(self, job: Job, code: int, kind: str,
                       error: str) -> Job:
        job.state = JobState.REJECTED
        job.finished_at = time.monotonic()
        job.response = {"status": "rejected", "code": code, "kind": kind,
                        "error": error, "job_id": job.job_id,
                        "queue_depth": self._queued,
                        "in_flight": self._running}
        if code == 429:
            job.response["retry_after_s"] = self._retry_after_locked()
        job.finished.set()
        self.metrics.counter("server.jobs.rejected").inc()
        return job

    # -------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job | None:
        """The job handle for ``job_id`` (``None`` if unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> dict[str, Any] | None:
        """JSON-ready status for ``job_id`` (``None`` if unknown)."""
        job = self.get(job_id)
        return None if job is None else job.status()

    def result(self, job_id: str, timeout: float | None = None
               ) -> dict[str, Any]:
        """Block until ``job_id`` finishes; returns its response document.

        Raises:
            KeyError: If the job id is unknown.
            TimeoutError: If ``timeout`` elapses first.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.finished.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.state.value} "
                               f"after {timeout}s")
        assert job.response is not None
        return job.response

    def snapshot(self) -> dict[str, Any]:
        """Queue/worker occupancy and per-state job counts."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            snap: dict[str, Any] = {
                "backend": self.backend,
                "workers": self.workers,
                "queue_size": self.queue_size,
                "capacity": self.capacity,
                "accepting": self._accepting,
                "queue_depth": self._queued,
                "in_flight": self._running,
                "tenant_quota": self.tenant_quota,
                "tenants_running": dict(self._tenant_running),
                "states": states,
            }
        if self._shards is not None:
            snap["shards"] = self._shards.snapshot()
        if self.calibrator is not None:
            snap["calibration"] = self.calibrator.stats()
        return snap

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` document, aggregated across every process.

        Thread backend: the shared registry's snapshot, unchanged.
        Process backend: the parent registry (admission counters, queue
        gauges, lock histograms) merged with every shard's registry into
        the same single-registry shape.
        """
        if self._shards is None:
            return self.metrics.snapshot()
        return merge_snapshots(self.metrics.snapshot(),
                               self._shards.metrics_snapshot())

    # --------------------------------------------------------- coordination
    def publish_cost_params(self, params: dict[str, Any]) -> int:
        """Install learned cost parameters on every execution context.

        Thread backend: one publication on the shared context.  Process
        backend: broadcast to every live shard (each replica bumps its
        cost-model version and flushes its caches); the publication is
        replayed into respawned shards.  Returns how many contexts
        acknowledged.
        """
        if self._shards is not None:
            return self._shards.publish(params)
        assert self.ctx is not None
        self.ctx.publish_cost_params(params)
        return 1

    def warm(self, document: dict[str, Any]) -> list[dict[str, Any]]:
        """Pre-warm plan caches by running ``document`` out-of-band.

        Process backend: the document runs on *every* live shard, so
        later spills off its home shard still hit warm caches.  Thread
        backend: one run against the shared context.  Warm-up runs
        bypass admission control and publish no job counters.
        """
        if self._shards is not None:
            return self._shards.broadcast_job(document, trace=False)
        assert self.service is not None
        return [self.service.submit(document, tracer=NO_TRACER)]

    # ------------------------------------------------------------ lifecycle
    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting jobs; by default drain the queue gracefully.

        With ``drain=True`` every already-admitted job runs to completion
        before the pool stops.  With ``drain=False`` still-queued jobs are
        cancelled and finish ``failed`` (kind ``ServerShutdown``); running
        jobs are never interrupted mid-stage.  Process shards are stopped
        after the dispatch layer: a busy shard finishes its in-flight job
        before it sees the stop request.
        """
        cancelled: list[Job] = []
        with self._lock:
            self._accepting = False
            if not drain:
                self._cancelled = True
                cancelled = list(self._pending)
                self._pending.clear()
                self._queued -= len(cancelled)
                now = time.monotonic()
                for job in cancelled:
                    job.state = JobState.FAILED
                    job.finished_at = now
                    job.response = {
                        "status": "error", "kind": "ServerShutdown",
                        "error": "server shut down before the job ran",
                        "job_id": job.job_id}
                self._update_gauges_locked()
        if drain:
            self._pool.shutdown(wait=True)
        else:
            self._pool.shutdown(wait=False, cancel_futures=True)
            for job in cancelled:
                self.metrics.counter("server.jobs.failed").inc()
                job.finished.set()
        if self._shards is not None:
            self._shards.shutdown()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=True)

    # -------------------------------------------------------------- workers
    def _cancel_check(self, job: Job) -> None:
        """Stage-boundary hook: raise once the job's deadline has passed."""
        if job.deadline_s is None:
            return
        if time.monotonic() - job.submitted_at > job.deadline_s:
            raise JobCancelled(
                f"{job.job_id} exceeded its deadline of {job.deadline_s}s")

    def _pick_locked(self) -> Job | None:
        """The next pending job this worker should run (``None``: none).

        Eligibility: the job's tenant is under its running-jobs quota.
        Among eligible jobs the pick order is priority (higher first),
        then fewest currently-running jobs for the tenant (fair share),
        then FIFO — so with no priorities and no quotas the queue is
        exactly the baseline FIFO.
        """
        if self._cancelled:
            return None
        best: Job | None = None
        best_key: tuple[int, int] | None = None
        for job in self._pending:  # FIFO order; strict < keeps the oldest
            running = self._tenant_running.get(job.tenant, 0)
            if self.tenant_quota is not None and running >= self.tenant_quota:
                continue
            key = (-job.priority, running)
            if best_key is None or key < best_key:
                best, best_key = job, key
        return best

    def _drain(self) -> None:
        """Worker body: keep picking and running eligible pending jobs.

        One token is enqueued per admission, so there are always at least
        as many tokens as pending jobs; the re-pick after each completion
        covers jobs that were quota-blocked when their own token ran.
        """
        while True:
            with self._lock:
                job = self._pick_locked()
                if job is None:
                    return
                self._pending.remove(job)
                self._queued -= 1
                self._running += 1
                self._tenant_running[job.tenant] = \
                    self._tenant_running.get(job.tenant, 0) + 1
                job.state = JobState.RUNNING
                job.started_at = time.monotonic()
                self._update_gauges_locked()
            assert job.wait_s is not None
            self.metrics.histogram("server.wait_s").observe(job.wait_s)
            state, response = self._execute(job)
            # Observations are server-internal: stripped before the
            # response is published to the client, ingested after
            # finished.set() so a triggered refit (the genetic fit) never
            # adds to the job's observable latency.
            observations = (response.pop("calibration_observations", None)
                            if isinstance(response, dict) else None)
            with self._lock:
                job.state = state
                job.finished_at = time.monotonic()
                job.response = response
                self._running -= 1
                left = self._tenant_running.get(job.tenant, 1) - 1
                if left > 0:
                    self._tenant_running[job.tenant] = left
                else:
                    self._tenant_running.pop(job.tenant, None)
                assert job.run_s is not None
                self._run_ewma = job.run_s if self._run_ewma is None else \
                    ((1 - _EWMA_ALPHA) * self._run_ewma
                     + _EWMA_ALPHA * job.run_s)
                self._update_gauges_locked()
            self.metrics.histogram("server.run_s").observe(job.run_s)
            self.metrics.counter(f"server.jobs.{state.value}").inc()
            job.finished.set()
            if observations and self.calibrator is not None:
                self._ingest_observations(observations)
            # Loop: this completion may have freed a tenant-quota slot,
            # and this worker is the one that must recheck the queue.

    def _ingest_observations(self, docs: list[dict[str, Any]]) -> None:
        """Feed one committed job's stage observations to the calibrator.

        Runs on the worker thread after the job's response was already
        published — a refit trigger grinds the genetic fit here, off the
        response path.  Calibration is advisory: it must never kill a
        worker, so every failure lands in a counter instead.
        """
        assert self.calibrator is not None
        try:
            self.calibrator.observe(
                [observation_from_json(doc) for doc in docs])
        except Exception:  # noqa: BLE001 — advisory path, workers survive
            self.metrics.counter("calibration.errors").inc()

    def _execute(self, job: Job) -> tuple[JobState, dict[str, Any]]:
        """Run one picked job on the configured backend; never raises."""
        try:
            # The deadline may already have passed while the job queued.
            self._cancel_check(job)
            if self._shards is not None:
                return self._execute_on_shard(job)
            assert self.service is not None
            response = self.service.submit(
                job.document, tracer=job.tracer,
                cancel_check=lambda: self._cancel_check(job),
                observations=self.calibrator is not None)
        except JobCancelled as exc:
            return JobState.TIMEOUT, {
                "status": "error", "kind": "Timeout", "error": str(exc),
                "job_id": job.job_id}
        except Exception as exc:  # noqa: BLE001 — a worker must never die
            return JobState.FAILED, {
                "status": "error", "kind": type(exc).__name__,
                "error": str(exc), "job_id": job.job_id}
        state = (JobState.DONE if response.get("status") == "ok"
                 else JobState.FAILED)
        return state, response

    def _execute_on_shard(self, job: Job) -> tuple[JobState, dict[str, Any]]:
        """Route one job to its (sticky) shard and map the outcome."""
        assert self._shards is not None and job.fingerprint is not None
        remaining: float | None = None
        if job.deadline_s is not None:
            remaining = job.deadline_s - (time.monotonic() - job.submitted_at)
        shard = self._shards.pick(job.fingerprint)
        job.shard_slot = shard.slot
        try:
            response = shard.run_job(job.job_id, job.document, remaining,
                                     self._tracing,
                                     observe=self.calibrator is not None)
        except ShardDied as exc:
            # The shard's context replica died with it; the job is
            # terminally failed (no silent retry — the caller decides).
            # handle_failure retires the slot exactly once, so the
            # routing ring re-maps this fingerprint for later jobs.
            self._shards.handle_failure(shard)
            return JobState.FAILED, {
                "status": "error", "kind": "ShardFailure",
                "error": str(exc), "job_id": job.job_id,
                "shard": shard.slot}
        finally:
            self._shards.release(shard)
        if response.get("kind") == "Timeout":
            return JobState.TIMEOUT, response
        state = (JobState.DONE if response.get("status") == "ok"
                 else JobState.FAILED)
        return state, response

    def _update_gauges_locked(self) -> None:
        self.metrics.gauge("server.queue_depth").set(self._queued)
        self.metrics.gauge("server.in_flight").set(self._running)
