"""The concurrent job-execution layer (the deployment shape of the RHEEM
demo paper: many applications submitting plans to ONE shared cross-platform
layer).

:class:`JobServer` accepts JSON job documents into a bounded queue with
admission control, dispatches them to a thread worker pool, and runs each
job against an isolated per-job view — its own
:class:`~repro.trace.Tracer`, channel environment and executor scratch
state — while sharing the read-mostly expensive pieces across jobs: the
execution-plan cache, the conversion graph's memo tables, the metrics
registry and the learned cost parameters, each behind an explicit lock
(the lock order is documented in ``DESIGN.md``).

Jobs move through the states ``queued -> running -> done|failed|timeout``
(or are ``rejected`` at admission) and are queryable by job id; per-job
deadlines are enforced by cooperative cancellation at executor stage
boundaries; shutdown drains the queue gracefully.
"""

from .http import make_wsgi_app
from .jobs import Job, JobState
from .server import AdmissionError, JobServer

__all__ = [
    "AdmissionError",
    "Job",
    "JobServer",
    "JobState",
    "make_wsgi_app",
]
