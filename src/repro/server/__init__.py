"""The concurrent job-execution layer (the deployment shape of the RHEEM
demo paper: many applications submitting plans to ONE shared cross-platform
layer).

:class:`JobServer` accepts JSON job documents into a bounded queue with
admission control (structured 429 rejections carrying queue depth and a
``Retry-After`` estimate), priority scheduling and per-tenant fair-share
quotas, then dispatches them to one of two backends:

* the **thread** backend (the baseline) shares one
  :class:`~repro.core.context.RheemContext` across a worker-thread pool —
  per-job isolation for tracer/channel/executor scratch state, explicit
  locks (see ``DESIGN.md``) around the shared plan cache, conversion-graph
  memos, metrics registry and learned cost parameters;
* the **process** backend (:mod:`repro.server.shards`) scales past the
  GIL: one context replica per worker process, jobs routed stickily by
  plan fingerprint so each replica's caches stay hot, cost-parameter
  publication broadcast to every shard, and ``/metrics`` aggregated
  across processes back into the single-registry shape.

Jobs move through the states ``queued -> running -> done|failed|timeout``
(or are ``rejected`` at admission) and are queryable by job id; per-job
deadlines are enforced by cooperative cancellation at executor stage
boundaries; shutdown drains the queue gracefully.
"""

from .http import make_wsgi_app
from .jobs import Job, JobState
from .server import AdmissionError, JobServer
from .shards import (
    ProcessShard,
    ShardCallTimeout,
    ShardDied,
    ShardPool,
    document_fingerprint,
)

__all__ = [
    "AdmissionError",
    "Job",
    "JobServer",
    "JobState",
    "ProcessShard",
    "ShardCallTimeout",
    "ShardDied",
    "ShardPool",
    "document_fingerprint",
    "make_wsgi_app",
]
