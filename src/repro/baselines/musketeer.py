"""A Musketeer-style baseline for the Figure 11 comparison.

Musketeer maps workflow patterns to back-end platforms but, per the paper's
analysis, it "checks dependencies, compiles and packages the code, and
writes the output to HDFS at each iteration (or stage), which comes with a
high overhead".  This runner reproduces exactly that execution discipline
over the simulated cluster: the data preparation is one generated job, and
EVERY PageRank iteration is a separate generated job — recompiled,
rescheduled, reading its input from HDFS and writing its output back.

Rheem, in contrast, keeps the PageRank phase in-process (JGraph) after a
Flink preparation, so its runtime stays flat as iterations grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.pagerank import pagerank_edges
from ..simulation.cluster import VirtualCluster
from ..workloads.graphs import parse_edge

#: Code generation + dependency checking + packaging, per generated job.
COMPILE_S = 16.0
#: Back-end job submission (YARN-style) per generated job.
SUBMIT_S = 18.0


@dataclass
class MusketeerOutcome:
    """Simulated runtime + the computed ranks."""

    runtime: float
    ranks: list


class MusketeerRunner:
    """Runs cross-community-PageRank-style tasks the Musketeer way."""

    def __init__(self, cluster: VirtualCluster | None = None) -> None:
        self.cluster = cluster or VirtualCluster()

    def crocopr(self, edge_lines: list[str], sim_factor: float,
                bytes_per_edge: float, iterations: int = 10
                ) -> MusketeerOutcome:
        """Prep job + one generated job per PageRank iteration."""
        spark = self.cluster.profile("sparklite")
        edges = sorted({parse_edge(line) for line in edge_lines})
        sim_edges = len(edge_lines) * sim_factor
        graph_mb = sim_edges * bytes_per_edge / 1e6

        # Job 0: preparation (parse + dedupe) on the batch back-end, output
        # materialized to HDFS.
        runtime = COMPILE_S + SUBMIT_S + spark.startup_s
        runtime += spark.io_seconds(graph_mb)                  # read input
        runtime += spark.cpu_seconds(sim_edges, work=2.0)      # parse+dedupe
        runtime += graph_mb * spark.shuffle_cost_s_per_mb      # dedupe shuffle
        runtime += graph_mb / 1000.0                           # write to HDFS

        # One generated job per iteration: recompile, resubmit, re-read the
        # graph, run one superstep-equivalent, write ranks back.
        ranks = pagerank_edges(edges, iterations=iterations)
        rank_mb = len(ranks) * sim_factor * bytes_per_edge / 1e6
        per_iteration = (
            COMPILE_S + SUBMIT_S + spark.stage_overhead_s
            + graph_mb / 1000.0                                # re-read graph
            + spark.cpu_seconds(sim_edges, work=2.0)           # one iteration
            + rank_mb * spark.shuffle_cost_s_per_mb
            + rank_mb / 1000.0                                 # write ranks
        )
        runtime += iterations * per_iteration
        return MusketeerOutcome(runtime, sorted(ranks.items()))
