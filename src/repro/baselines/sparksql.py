"""A SparkSQL-style cleaning baseline for Figure 2(a).

SparkSQL cannot process inequality joins efficiently: an inequality-only
join predicate falls back to a cartesian product filtered row by row.  We
express the detection exactly that way (CartesianProduct + Filter) and pin
it to the Spark analog; beyond a size threshold the run is "killed" like
the paper's 40-hour cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.bigdansing import BigDansing, Rule
from ..core.context import DataQuanta, RheemContext

#: The paper stops baselines after 40 hours.
KILL_AFTER_S = 40 * 3600.0


@dataclass
class SparkSqlOutcome:
    runtime: float
    violations: list
    killed: bool = False


def detect(ctx: RheemContext, data: DataQuanta, rule: Rule,
           sim_rows: float) -> SparkSqlOutcome:
    """Run detection as a cartesian join on the Spark analog."""
    spark = ctx.cluster.profile("sparklite")
    # The cartesian pass alone costs at least this much; don't bother
    # executing the quadratic materialization when it is hopeless.
    lower_bound = spark.cpu_seconds(sim_rows * sim_rows)
    if lower_bound > KILL_AFTER_S:
        return SparkSqlOutcome(KILL_AFTER_S, [], killed=True)
    result = BigDansing(ctx).detect(
        data, rule, method="cartesian",
        allowed_platforms={"sparklite", "driver"})
    return SparkSqlOutcome(result.runtime, result.output)
