"""Comparator systems the paper benchmarks Rheem against, reimplemented
as faithful execution-discipline models over the same simulated cluster."""

from .mlsystems import MLBaselineOutcome, mllib_sgd, systemml_sgd
from .musketeer import MusketeerOutcome, MusketeerRunner
from .nadeef import NadeefOutcome
from .nadeef import detect as nadeef_detect
from .sparksql import SparkSqlOutcome
from .sparksql import detect as sparksql_detect

__all__ = [
    "MLBaselineOutcome",
    "mllib_sgd",
    "systemml_sgd",
    "MusketeerOutcome",
    "MusketeerRunner",
    "NadeefOutcome",
    "nadeef_detect",
    "SparkSqlOutcome",
    "sparksql_detect",
]
