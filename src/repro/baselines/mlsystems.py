"""MLlib- and SystemML-style baselines for Figure 2(b).

Both run the *same SGD algorithm* as ML4all, but purely on the Spark analog:

* **MLlib-style** — the whole plan (including the per-iteration sampling,
  which scans the dataset) stays on sparklite; every iteration pays Spark
  job overheads.
* **SystemML-style** — additionally pays a per-iteration program
  recompilation/codegen overhead, and densifies the data into matrix blocks
  whose footprint blows up on wide synthetic data (the paper's
  out-of-memory cross on the "synthetic" dataset).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.ml4all import Algorithm, ML4all
from ..core.context import RheemContext
from ..simulation.cluster import SimulatedOutOfMemory

#: SystemML-style per-iteration recompilation/codegen overhead (seconds).
SYSTEMML_ITERATION_OVERHEAD_S = 0.4
#: Densification blow-up factor over the raw simulated bytes.
SYSTEMML_DENSIFY_FACTOR = 12.0


@dataclass
class MLBaselineOutcome:
    runtime: float
    weights: tuple | None
    oom: bool = False


def mllib_sgd(ctx: RheemContext, data_path: str, algorithm: Algorithm,
              iterations: int = 100, sample_size: int = 10
              ) -> MLBaselineOutcome:
    """Pure-Spark SGD with scan-based sampling."""
    result = ML4all(ctx).train(
        data_path, algorithm, iterations=iterations, sample_size=sample_size,
        sample_method="random",  # MLlib's takeSample scans the data
        allowed_platforms={"sparklite", "driver"})
    return MLBaselineOutcome(result.runtime, result.output[0])


def systemml_sgd(ctx: RheemContext, data_path: str, algorithm: Algorithm,
                 iterations: int = 100, sample_size: int = 10
                 ) -> MLBaselineOutcome:
    """SystemML-style: pure Spark + recompilation + dense matrix blocks.

    Raises no exception on the simulated OOM — it is reported in the
    outcome, the way the paper reports the crossed-out bar.
    """
    vf = ctx.vfs.read(data_path)
    dense_mb = vf.sim_mb * SYSTEMML_DENSIFY_FACTOR
    try:
        ctx.cluster.check_memory("sparklite", dense_mb)
    except SimulatedOutOfMemory:
        return MLBaselineOutcome(float("nan"), None, oom=True)
    base = mllib_sgd(ctx, data_path, algorithm, iterations, sample_size)
    return MLBaselineOutcome(
        base.runtime + iterations * SYSTEMML_ITERATION_OVERHEAD_S,
        base.weights)
