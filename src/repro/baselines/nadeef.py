"""A NADEEF-style single-node data cleaning baseline.

NADEEF is a generic rule engine: rules are interpreted per candidate pair
and candidates are enumerated pairwise on one node.  We execute the
detection for real (on the actual records) and charge simulated time for
the quadratic pairwise pass at an interpreted-rule per-pair cost —
calibrated so the Tax task at 1M rows lands in the paper's
~3x10^5-seconds regime (Figure 2(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.iejoin import naive_inequality_join
from ..apps.bigdansing import Rule

#: Interpreted rule evaluation cost per candidate pair (simulated seconds).
PER_PAIR_S = 3.0e-7
#: Engine start-up (rule compilation, metadata tables...).
SETUP_S = 30.0
#: Stop hopeless runs.  (The paper quotes a 40-hour cut-off but reports
#: NADEEF's 1M-row Tax run at ~3x10^5 s, so our threshold sits just above
#: that: 1M rows completes, 2M rows shows as "stopped".)
KILL_AFTER_S = 400_000.0


@dataclass
class NadeefOutcome:
    """Simulated runtime + detected violations (or ``killed``)."""

    runtime: float
    violations: list
    killed: bool


def detect(records: list[dict], sim_rows: float, rule: Rule) -> NadeefOutcome:
    """Run the rule the NADEEF way: all-pairs interpretation on one node."""
    runtime = SETUP_S + sim_rows * sim_rows * PER_PAIR_S
    if runtime > KILL_AFTER_S:
        return NadeefOutcome(KILL_AFTER_S, [], killed=True)
    scoped = [rule.scope(r) for r in records]
    conditions = [(c.left_key, c.op, c.right_key) for c in rule.conditions]
    violations = naive_inequality_join(scoped, scoped, conditions)
    if rule.block is not None:
        violations = [p for p in violations
                      if rule.block(p[0]) == rule.block(p[1])]
    return NadeefOutcome(runtime, violations, killed=False)
