"""Fast inequality joins (the paper's plugged-in IEJoin operator).

Rheem's extensibility let BigDansing plug the "Lightning Fast and Space
Efficient Inequality Joins" algorithm (Khayyat et al., PVLDB 2015) as a new
operator, which is one order of magnitude of Figure 2(a)'s win.  This module
implements a sort + offset + bitmap inequality join in that algorithm's
spirit: O(n log n + m log m) preparation and output-sensitive enumeration
over machine-word bitsets, versus the cartesian O(n*m) of a naive join.

Supported predicates: one or two conditions of the form
``left_key(l) <op> right_key(r)`` with ``op`` in ``<, <=, >, >=``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterable, Sequence

Condition = tuple[Callable[[Any], Any], str, Callable[[Any], Any]]

_STRICT = {"<", ">"}
_ALL_OPS = {"<", "<=", ">", ">="}


def _check_conditions(conditions: Sequence[Condition]) -> None:
    if not 1 <= len(conditions) <= 2:
        raise ValueError("ie_join supports one or two conditions")
    for __, op, __ in conditions:
        if op not in _ALL_OPS:
            raise ValueError(f"unsupported inequality operator {op!r}")


def naive_inequality_join(
    left: Iterable[Any],
    right: Iterable[Any],
    conditions: Sequence[Condition],
) -> list[tuple[Any, Any]]:
    """Reference O(n*m) implementation (also the SparkSQL-style baseline)."""
    _check_conditions(conditions)
    ops = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    right_list = list(right)
    out = []
    for l in left:
        for r in right_list:
            if all(ops[op](lk(l), rk(r)) for lk, op, rk in conditions):
                out.append((l, r))
    return out


def ie_join(
    left: Sequence[Any],
    right: Sequence[Any],
    conditions: Sequence[Condition],
) -> list[tuple[Any, Any]]:
    """Inequality join via sorting, offsets and bitset enumeration.

    Returns all ``(l, r)`` pairs satisfying every condition.  Output order
    is not specified (tests compare as multisets).
    """
    _check_conditions(conditions)
    left = list(left)
    right = list(right)
    if not left or not right:
        return []

    (lk1, op1, rk1) = conditions[0]
    second = conditions[1] if len(conditions) == 2 else None

    # Sort the right side by the first condition's key.  Processing the left
    # side in the matching order lets a single pointer "activate" exactly the
    # right records satisfying condition 1.
    ascending = op1 in (">", ">=")  # l > r: small r first, iterate l ascending
    rx = sorted(range(len(right)), key=lambda i: rk1(right[i]),
                reverse=not ascending)
    rx_keys = [rk1(right[i]) for i in rx]
    lorder = sorted(range(len(left)), key=lambda i: lk1(left[i]),
                    reverse=not ascending)
    strict1 = op1 in _STRICT

    if second is None:
        return _one_condition_join(left, right, lorder, rx, rx_keys,
                                   lk1, ascending, strict1)
    return _two_condition_join(left, right, lorder, rx, rx_keys,
                               lk1, ascending, strict1, second)


def _activation_bound(rx_keys: list[Any], key: Any, ascending: bool,
                      strict: bool) -> int:
    """How many right records (in rx order) satisfy condition 1 for ``key``."""
    if ascending:
        # right keys ascending; satisfied iff r_key < key (strict) or <= key.
        return bisect_left(rx_keys, key) if strict else bisect_right(rx_keys, key)
    # right keys descending; satisfied iff r_key > key (strict) or >= key.
    lo, hi = 0, len(rx_keys)
    while lo < hi:
        mid = (lo + hi) // 2
        k = rx_keys[mid]
        if k > key or (not strict and k == key):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _one_condition_join(left, right, lorder, rx, rx_keys, lk1,
                        ascending, strict1) -> list[tuple[Any, Any]]:
    out = []
    for li in lorder:
        bound = _activation_bound(rx_keys, lk1(left[li]), ascending, strict1)
        l = left[li]
        for pos in range(bound):
            out.append((l, right[rx[pos]]))
    return out


def _two_condition_join(left, right, lorder, rx, rx_keys, lk1,
                        ascending, strict1, second) -> list[tuple[Any, Any]]:
    (lk2, op2, rk2) = second
    # Rank every right record by the second condition's key; the records
    # satisfying condition 2 for a given left record form a prefix or suffix
    # of this order, selected with one binary search.
    ry = sorted(range(len(right)), key=lambda i: rk2(right[i]))
    ry_keys = [rk2(right[i]) for i in ry]
    rank_in_ry = {i: pos for pos, i in enumerate(ry)}
    m = len(right)
    suffix = op2 in ("<", "<=")  # l < r: eligible right keys are LARGER
    strict2 = op2 in _STRICT
    full_mask = (1 << m) - 1

    out: list[tuple[Any, Any]] = []
    activated = 0  # bitset over ry ranks
    pointer = 0
    for li in lorder:
        l = left[li]
        bound = _activation_bound(rx_keys, lk1(l), ascending, strict1)
        while pointer < bound:
            activated |= 1 << rank_in_ry[rx[pointer]]
            pointer += 1
        if not activated:
            continue
        y = lk2(l)
        if suffix:
            pos = bisect_right(ry_keys, y) if strict2 else bisect_left(ry_keys, y)
            mask = (full_mask >> pos) << pos
        else:
            pos = bisect_left(ry_keys, y) if strict2 else bisect_right(ry_keys, y)
            mask = (1 << pos) - 1
        hits = activated & mask
        while hits:
            low = hits & -hits
            idx = low.bit_length() - 1
            out.append((l, right[ry[idx]]))
            hits ^= low
    return out
