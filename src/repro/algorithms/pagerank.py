"""Reference PageRank over an edge list.

Shared by the graph engines (as ground truth for their superstep
implementations) and by tests.  Dangling vertices redistribute their mass
uniformly, matching networkx's convention.
"""

from __future__ import annotations

from typing import Hashable, Iterable


def pagerank_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    iterations: int = 10,
    damping: float = 0.85,
) -> dict[Hashable, float]:
    """PageRank by power iteration on a directed edge list.

    Args:
        edges: ``(src, dst)`` pairs; repeated edges carry repeated weight.
        iterations: Number of power iterations (the paper's tasks fix this,
            e.g. 10 for CrocoPR).
        damping: Teleport parameter.

    Returns:
        Vertex -> rank, summing to ~1.0 over all vertices.
    """
    adjacency: dict[Hashable, list[Hashable]] = {}
    vertices: set[Hashable] = set()
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        vertices.add(src)
        vertices.add(dst)
    n = len(vertices)
    if n == 0:
        return {}
    rank = {v: 1.0 / n for v in vertices}
    for __ in range(iterations):
        nxt = {v: 0.0 for v in vertices}
        dangling_mass = 0.0
        for v, r in rank.items():
            outs = adjacency.get(v)
            if not outs:
                dangling_mass += r
                continue
            share = r / len(outs)
            for dst in outs:
                nxt[dst] += share
        base = (1.0 - damping) / n + damping * dangling_mass / n
        rank = {v: base + damping * nxt[v] for v in vertices}
    return rank
