"""Pure data-processing algorithms shared by platforms and applications."""

from .iejoin import ie_join, naive_inequality_join
from .minhash import (
    hash_family,
    jaccard_estimate,
    merge_signatures,
    minhash_signature,
    stable_hash,
    value_hashes,
)
from .pagerank import pagerank_edges

__all__ = [
    "ie_join",
    "naive_inequality_join",
    "hash_family",
    "jaccard_estimate",
    "merge_signatures",
    "minhash_signature",
    "stable_hash",
    "value_hashes",
    "pagerank_edges",
]
