"""MinHash signatures for set-similarity estimation.

Data Civilizer "constructs a graph that expresses relationships among data
existing in heterogeneous data sources"; finding columns with similar value
sets across stores is its bread and butter.  MinHash gives an unbiased
estimate of the Jaccard similarity from small fixed-size signatures, and —
crucially for the cross-platform setting — a column's signature is a pure
map+reduce over its values, so each column can be hashed wherever it lives.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence

#: A Mersenne prime comfortably above 64-bit hash values.
_PRIME = (1 << 61) - 1


def stable_hash(value) -> int:
    """A process-independent 60-bit hash of any printable value."""
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % _PRIME


def hash_family(num_hashes: int, seed: int = 7) -> list[tuple[int, int]]:
    """``num_hashes`` universal-hash parameter pairs ``(a, b)``."""
    if num_hashes < 1:
        raise ValueError("num_hashes must be >= 1")
    rng = random.Random(seed)
    return [(rng.randrange(1, _PRIME), rng.randrange(_PRIME))
            for __ in range(num_hashes)]


def value_hashes(value, family: Sequence[tuple[int, int]]) -> tuple[int, ...]:
    """One value's coordinates under every hash of the family."""
    h = stable_hash(value)
    return tuple((a * h + b) % _PRIME for a, b in family)


def merge_signatures(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Elementwise minimum: the associative reducer of MinHash."""
    return tuple(min(x, y) for x, y in zip(a, b))


def minhash_signature(values: Iterable, num_hashes: int = 64,
                      seed: int = 7) -> tuple[int, ...]:
    """The MinHash signature of a value collection (empty -> all-max)."""
    family = hash_family(num_hashes, seed)
    signature = tuple([_PRIME] * num_hashes)
    for value in values:
        signature = merge_signatures(signature, value_hashes(value, family))
    return signature


def jaccard_estimate(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
    """Estimated Jaccard similarity: fraction of agreeing coordinates.

    Raises:
        ValueError: If the signatures have different lengths.
    """
    if len(sig_a) != len(sig_b):
        raise ValueError("signatures must have equal length")
    if not sig_a:
        return 0.0
    agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
    return agree / len(sig_a)
