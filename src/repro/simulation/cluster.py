"""The virtual cluster the simulated platforms run on."""

from __future__ import annotations

from .profiles import (
    HardwareProfile,
    PlatformProfile,
    PLATFORM_PROFILES,
    hardware_profile,
)
from .vfs import VirtualFileSystem


class SimulatedOutOfMemory(RuntimeError):
    """Raised when a platform's simulated memory capacity is exceeded.

    Mirrors the out-of-memory / "killed after one hour" failures the paper
    reports for JGraph and SystemML on large inputs.
    """

    def __init__(self, platform: str, needed_mb: float, cap_mb: float) -> None:
        super().__init__(
            f"{platform}: needs {needed_mb:.1f} MB but capacity is {cap_mb:.1f} MB"
        )
        self.platform = platform
        self.needed_mb = needed_mb
        self.cap_mb = cap_mb


class VirtualCluster:
    """Bundles hardware, platform profiles and the virtual file system.

    One cluster is shared by all platforms of a :class:`~repro.core.context.
    RheemContext`; tests may build isolated clusters with tweaked profiles.
    """

    def __init__(
        self,
        hardware: HardwareProfile | None = None,
        profiles: dict[str, PlatformProfile] | None = None,
    ) -> None:
        self.hardware = hardware or hardware_profile()
        self.profiles = dict(profiles or PLATFORM_PROFILES)
        self.vfs = VirtualFileSystem()

    def profile(self, platform: str) -> PlatformProfile:
        """The performance profile for ``platform``.

        Raises:
            KeyError: If the platform has no registered profile.
        """
        return self.profiles[platform]

    def set_profile(self, profile: PlatformProfile) -> None:
        """Install or replace a platform profile (what-if experiments)."""
        self.profiles[profile.name] = profile

    def check_memory(self, platform: str, needed_mb: float) -> None:
        """Fail the simulated job if ``platform`` cannot hold ``needed_mb``.

        Raises:
            SimulatedOutOfMemory: If the platform's capacity is exceeded.
        """
        cap = self.profiles[platform].memory_cap_mb
        if needed_mb > cap:
            raise SimulatedOutOfMemory(platform, needed_mb, cap)
