"""Simulated time accounting.

The reproduction executes real data transformations but charges *simulated*
time: every engine reports its work to a :class:`CostMeter`, and the executor
aggregates stage meters along the critical path of the stage-dependency
graph.  This lets laptop-scale datasets reproduce the runtime *shapes* of the
paper's 10-node-cluster experiments deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostEvent:
    """A single charge of simulated time.

    Attributes:
        label: Human-readable description, e.g. ``"sparklite.map"``.
        seconds: Simulated seconds charged.
        category: Coarse resource bucket (``cpu``, ``io``, ``net``,
            ``overhead``) used by reports and by the cost learner.
    """

    label: str
    seconds: float
    category: str = "cpu"


class CostMeter:
    """Accumulates simulated-time charges for one unit of execution.

    A meter is created per execution stage (and per conversion operator); the
    executor sums meters along the critical path to obtain the job runtime.
    """

    def __init__(self) -> None:
        self._events: list[CostEvent] = []
        self._total = 0.0

    def charge(self, seconds: float, label: str, category: str = "cpu") -> None:
        """Charge ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds!r} for {label}")
        self._events.append(CostEvent(label, seconds, category))
        self._total += seconds

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's events into this one (sequential composition)."""
        self._events.extend(other.events)
        self._total += other.total

    @property
    def total(self) -> float:
        """Total simulated seconds charged so far."""
        return self._total

    @property
    def events(self) -> list[CostEvent]:
        """The individual charges, in order."""
        return list(self._events)

    def by_category(self) -> dict[str, float]:
        """Simulated seconds summed per category."""
        out: dict[str, float] = {}
        for event in self._events:
            out[event.category] = out.get(event.category, 0.0) + event.seconds
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostMeter(total={self._total:.4f}s, events={len(self._events)})"


@dataclass
class StageTiming:
    """Critical-path bookkeeping for one executed stage."""

    stage_id: str
    start: float
    duration: float
    meter: CostMeter = field(repr=False, default_factory=CostMeter)

    @property
    def end(self) -> float:
        return self.start + self.duration


class CriticalPathTracker:
    """Aggregates stage timings into an overall simulated runtime.

    Stages that depend on each other run back to back; independent stages
    overlap (inter-platform parallelism, Section 1 challenge (iv) of the
    paper).  The job's simulated runtime is the maximum stage end time.
    """

    def __init__(self) -> None:
        self._timings: dict[str, StageTiming] = {}

    def record(self, stage_id: str, dependencies: list[str], meter: CostMeter) -> StageTiming:
        """Record a completed stage; its start is the latest dependency end."""
        start = 0.0
        for dep in dependencies:
            if dep in self._timings:
                start = max(start, self._timings[dep].end)
        timing = StageTiming(stage_id, start, meter.total, meter)
        self._timings[stage_id] = timing
        return timing

    def extend_stage(self, stage_id: str, seconds: float, label: str) -> None:
        """Append extra simulated time to an already recorded stage."""
        timing = self._timings[stage_id]
        timing.meter.charge(seconds, label)
        timing.duration += seconds

    def end_of(self, stage_id: str) -> float | None:
        """End time of a recorded stage, or ``None`` if unknown."""
        timing = self._timings.get(stage_id)
        return None if timing is None else timing.end

    @property
    def makespan(self) -> float:
        """Simulated end-to-end runtime of everything recorded so far."""
        if not self._timings:
            return 0.0
        return max(t.end for t in self._timings.values())

    @property
    def busy_time(self) -> float:
        """Sum of all stage durations (ignores overlap)."""
        return sum(t.duration for t in self._timings.values())

    def timings(self) -> list[StageTiming]:
        """All stage timings in recording order."""
        return list(self._timings.values())
