"""Virtual file systems: a simulated HDFS and a simulated local disk.

Files hold *real* Python records (so engines compute correct results) plus
*simulated* size metadata (so the clock charges paper-scale I/O).  A file
written with ``sim_factor=1000`` behaves, cost-wise, as if it held 1000x
its actual records — this is how laptop-sized inputs stand in for the
paper's multi-gigabyte datasets.

Paths use URI-style schemes: ``hdfs://...`` for the distributed store and
``file://...`` for the single-node local store.  The scheme decides which
bandwidth applies when an engine reads the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

HDFS_SCHEME = "hdfs"
LOCAL_SCHEME = "file"
_KNOWN_SCHEMES = (HDFS_SCHEME, LOCAL_SCHEME)


class FileNotFound(KeyError):
    """Raised when reading a path that was never written."""


def scheme_of(path: str) -> str:
    """The scheme of a VFS path.

    Raises:
        ValueError: If the path has no known scheme.
    """
    for scheme in _KNOWN_SCHEMES:
        if path.startswith(scheme + "://"):
            return scheme
    raise ValueError(f"VFS path must start with hdfs:// or file://, got {path!r}")


@dataclass
class VirtualFile:
    """One file in a virtual store.

    Attributes:
        path: Full URI, e.g. ``hdfs://data/points.csv``.
        records: The actual in-memory records (lines, tuples, ...).
        sim_factor: Each actual record stands for this many simulated ones.
        bytes_per_record: Simulated size of one simulated record.
    """

    path: str
    records: list[Any] = field(repr=False)
    sim_factor: float = 1.0
    bytes_per_record: float = 100.0

    @property
    def scheme(self) -> str:
        return scheme_of(self.path)

    @property
    def sim_record_count(self) -> float:
        """Number of simulated records the file stands for."""
        return len(self.records) * self.sim_factor

    @property
    def sim_mb(self) -> float:
        """Simulated file size in MB."""
        return self.sim_record_count * self.bytes_per_record / 1e6


class VirtualFileSystem:
    """An in-memory namespace of :class:`VirtualFile` objects."""

    def __init__(self) -> None:
        self._files: dict[str, VirtualFile] = {}

    def write(
        self,
        path: str,
        records: Iterable[Any],
        sim_factor: float = 1.0,
        bytes_per_record: float = 100.0,
    ) -> VirtualFile:
        """Create or replace a file.

        Args:
            path: URI with an ``hdfs://`` or ``file://`` scheme.
            records: Actual records to store (materialized into a list).
            sim_factor: Simulated records per actual record.
            bytes_per_record: Simulated bytes per simulated record.
        """
        scheme_of(path)  # validate
        vf = VirtualFile(path, list(records), sim_factor, bytes_per_record)
        self._files[path] = vf
        return vf

    def read(self, path: str) -> VirtualFile:
        """Look up a file.

        Raises:
            FileNotFound: If the path was never written.
        """
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove a file; removing a missing file is an error.

        Raises:
            FileNotFound: If the path was never written.
        """
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def listdir(self, prefix: str) -> list[str]:
        """All paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))
