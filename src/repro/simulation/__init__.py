"""Virtual-cluster simulation substrate.

Provides simulated time (:mod:`~repro.simulation.clock`), calibrated
platform performance profiles (:mod:`~repro.simulation.profiles`), the
virtual cluster with memory accounting (:mod:`~repro.simulation.cluster`)
and the virtual HDFS/local file systems (:mod:`~repro.simulation.vfs`).
"""

from .clock import CostEvent, CostMeter, CriticalPathTracker, StageTiming
from .cluster import SimulatedOutOfMemory, VirtualCluster
from .profiles import (
    HardwareProfile,
    PlatformProfile,
    PLATFORM_PROFILES,
    hardware_profile,
    platform_profile,
    with_overrides,
)
from .vfs import (
    FileNotFound,
    HDFS_SCHEME,
    LOCAL_SCHEME,
    VirtualFile,
    VirtualFileSystem,
    scheme_of,
)

__all__ = [
    "CostEvent",
    "CostMeter",
    "CriticalPathTracker",
    "StageTiming",
    "SimulatedOutOfMemory",
    "VirtualCluster",
    "HardwareProfile",
    "PlatformProfile",
    "PLATFORM_PROFILES",
    "hardware_profile",
    "platform_profile",
    "with_overrides",
    "FileNotFound",
    "HDFS_SCHEME",
    "LOCAL_SCHEME",
    "VirtualFile",
    "VirtualFileSystem",
    "scheme_of",
]
