"""Hardware and platform performance profiles for the virtual cluster.

The paper's testbed is a 10-node cluster (2 GHz quad-core Xeon, 32 GB RAM,
1 GigE) running Spark, Flink, JavaStreams, Postgres, Giraph and JGraph.  The
reproduction replaces each platform with a Python engine whose *performance
profile* — start-up latency, per-stage dispatch overhead, effective
parallelism, per-record cost, I/O and network bandwidth, memory capacity —
is calibrated from the constants the paper reports (e.g. big-data-platform
job overheads dominating small inputs, Postgres bulk load being ~3x the full
cross-platform runtime, JGraph failing beyond ~10% of the pagelinks graph).

All values are in simulated units: seconds, MB, records.  They are plain
data so the cost learner (``repro.learn``) can re-fit them from logs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HardwareProfile:
    """The virtual cluster the distributed engines run on."""

    nodes: int = 10
    cores_per_node: int = 4
    memory_per_node_mb: float = 32_768.0
    disk_mb_per_s: float = 100.0
    network_mb_per_s: float = 120.0

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def aggregate_disk_mb_per_s(self) -> float:
        """All nodes reading their local blocks at once (HDFS-style)."""
        return self.nodes * self.disk_mb_per_s


@dataclass(frozen=True)
class PlatformProfile:
    """Performance characteristics of one data processing platform.

    Attributes:
        name: Platform key (matches ``Platform.name``).
        startup_s: One-off cost the first time a job touches the platform
            (JVM/driver/context start-up; connection set-up for Postgres).
        stage_overhead_s: Dispatch cost per execution stage (Spark job
            scheduling, Flink task deployment, query planning...).
        parallelism: Effective parallel lanes for record processing.
        tuple_cost_s: Simulated seconds to process one record of unit work
            on ONE lane.  Per-operator work factors multiply this.
        io_mb_per_s: Aggregate bandwidth for reading/writing files.
        net_mb_per_s: Bandwidth for moving data in/out of the platform
            (collects, broadcasts, exports).
        memory_cap_mb: Simulated memory capacity; engines raise
            :class:`~repro.simulation.cluster.SimulatedOutOfMemory` beyond it.
        shuffle_cost_s_per_mb: Extra cost per MB crossing a shuffle boundary.
    """

    name: str
    startup_s: float
    stage_overhead_s: float
    parallelism: int
    tuple_cost_s: float
    io_mb_per_s: float
    net_mb_per_s: float
    memory_cap_mb: float
    shuffle_cost_s_per_mb: float = 0.0

    def cpu_seconds(self, records: float, work: float = 1.0) -> float:
        """Simulated seconds to process ``records`` of ``work`` complexity."""
        if records <= 0:
            return 0.0
        return records * work * self.tuple_cost_s / self.parallelism

    def io_seconds(self, mb: float) -> float:
        """Simulated seconds to read or write ``mb`` megabytes."""
        if mb <= 0:
            return 0.0
        return mb / self.io_mb_per_s

    def transfer_seconds(self, mb: float) -> float:
        """Simulated seconds to move ``mb`` megabytes in or out."""
        if mb <= 0:
            return 0.0
        return mb / self.net_mb_per_s


_HW = HardwareProfile()

#: Calibrated platform profiles.  These are the *true* simulation constants;
#: the optimizer's cost model approximates them (exactly by default, or via
#: parameters learned from logs by ``repro.learn``).
PLATFORM_PROFILES: dict[str, PlatformProfile] = {
    # JavaStreams analog: zero start-up, single-threaded, cheap per record.
    "pystreams": PlatformProfile(
        name="pystreams",
        startup_s=0.0,
        stage_overhead_s=0.001,
        parallelism=1,
        tuple_cost_s=1.0e-6,
        io_mb_per_s=_HW.disk_mb_per_s,
        net_mb_per_s=500.0,  # in-process hand-off
        memory_cap_mb=20_480.0,
    ),
    # Spark analog: heavy start-up and per-job overhead, wide parallelism.
    "sparklite": PlatformProfile(
        name="sparklite",
        startup_s=6.0,
        stage_overhead_s=0.35,
        parallelism=_HW.total_cores,
        tuple_cost_s=2.0e-6,
        io_mb_per_s=_HW.aggregate_disk_mb_per_s,
        net_mb_per_s=_HW.network_mb_per_s,
        memory_cap_mb=_HW.nodes * 20_480.0,
        shuffle_cost_s_per_mb=0.008,
    ),
    # Flink analog: lighter dispatch, pipelined, slightly different constants.
    "flinklite": PlatformProfile(
        name="flinklite",
        startup_s=4.5,
        stage_overhead_s=0.2,
        parallelism=_HW.total_cores,
        tuple_cost_s=1.7e-6,
        io_mb_per_s=_HW.aggregate_disk_mb_per_s,
        net_mb_per_s=_HW.network_mb_per_s,
        memory_cap_mb=_HW.nodes * 20_480.0,
        shuffle_cost_s_per_mb=0.006,
    ),
    # Postgres analog: instant start, 4-way parallel scans, costly loads.
    "pgres": PlatformProfile(
        name="pgres",
        startup_s=0.05,
        stage_overhead_s=0.01,
        parallelism=4,
        tuple_cost_s=1.2e-6,
        io_mb_per_s=_HW.disk_mb_per_s,
        net_mb_per_s=40.0,  # single JDBC-ish pipe for exports/loads
        memory_cap_mb=20_480.0,
    ),
    # Giraph analog: very heavy start-up, per-superstep synchronisation.
    "graphlite": PlatformProfile(
        name="graphlite",
        startup_s=20.0,
        stage_overhead_s=0.8,
        parallelism=_HW.total_cores,
        tuple_cost_s=2.4e-6,
        io_mb_per_s=_HW.aggregate_disk_mb_per_s,
        net_mb_per_s=_HW.network_mb_per_s,
        memory_cap_mb=_HW.nodes * 20_480.0,
    ),
    # GraphChi analog: ONE machine, out-of-core shard streaming.  The CPU
    # side uses the few local cores; the defining cost is re-reading the
    # edge shards from disk every iteration (priced via shuffle rate =
    # 1/disk bandwidth for the optimizer's estimate).
    "graphchi": PlatformProfile(
        name="graphchi",
        startup_s=1.0,
        stage_overhead_s=0.1,
        parallelism=4,
        tuple_cost_s=4.0e-7,
        io_mb_per_s=_HW.disk_mb_per_s,
        net_mb_per_s=500.0,
        memory_cap_mb=1_000_000.0,  # out-of-core: disk is the limit
        shuffle_cost_s_per_mb=1.0 / _HW.disk_mb_per_s,
    ),
    # JGraph analog: in-process graph library, small memory ceiling.
    "jgraph": PlatformProfile(
        name="jgraph",
        startup_s=0.0,
        stage_overhead_s=0.002,
        parallelism=1,
        tuple_cost_s=1.5e-7,
        io_mb_per_s=_HW.disk_mb_per_s,
        net_mb_per_s=500.0,
        memory_cap_mb=2_048.0,
    ),
}


def hardware_profile() -> HardwareProfile:
    """The default virtual cluster hardware."""
    return _HW


def platform_profile(name: str) -> PlatformProfile:
    """Look up a platform profile by name.

    Raises:
        KeyError: If no profile is registered under ``name``.
    """
    return PLATFORM_PROFILES[name]


def with_overrides(name: str, **changes: float) -> PlatformProfile:
    """A copy of a registered profile with some fields replaced.

    Useful in tests and what-if experiments (e.g. a slower network).
    """
    return replace(PLATFORM_PROFILES[name], **changes)
