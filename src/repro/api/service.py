"""The REST interface: submit JSON job documents, get JSON results.

Two layers:

* :class:`RheemService` — the transport-free core: ``submit(document)``
  builds, optimizes and executes the dataflow and returns a JSON-ready
  response (results, simulated runtime, chosen platforms, dollar price).
* :func:`wsgi_app` — a standard WSGI wrapper (``POST /jobs``), usable with
  any WSGI server or called directly in tests; no sockets required.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from ..core.context import RheemContext
from ..core.objectives import monetary, price_of
from ..core.optimizer import OptimizationError
from ..core.plan import PlanValidationError
from ..latin.translator import resolve_platform
from ..simulation.cluster import SimulatedOutOfMemory
from ..trace import NullTracer, Tracer, trace_block
from .serde import PlanDocumentError, build_quanta


class RheemService:
    """Executes JSON job documents against one context."""

    def __init__(self, ctx: RheemContext | None = None,
                 env: dict[str, Any] | None = None) -> None:
        self.ctx = ctx or RheemContext()
        self.env = dict(env or {})

    def submit(self, document: dict,
               tracer: Tracer | NullTracer | None = None,
               cancel_check: Callable[[], None] | None = None,
               observations: bool = False) -> dict:
        """Run one job document; always returns a JSON-ready dict.

        Response shape: ``{"status": "ok", "output": [...], "runtime": s,
        "platforms": [...], "price_usd": d, "diagnostics": [...],
        "trace": {"spans": [...], "metrics": {...}}}`` or
        ``{"status": "error", "error": "...", "kind": "..."}``; error
        responses carry a ``diagnostics`` list too when the static analyzer
        rejected the plan.

        With ``observations=True`` a successful, calibration-eligible run
        (``result.calibration_ok`` — not a sniffer or fault-injection
        execution) additionally carries ``"calibration_observations"``:
        JSON-able per-stage observations for the online cost calibrator.
        The flag is server-internal — worker shards ship observations
        back over their pipe; plain REST responses omit them.

        Each job runs under its own per-request tracer, *passed through*
        the optimizer and executor rather than installed on the shared
        context — the context is never mutated, so concurrent submissions
        (the job server's worker pool) can share it without mixing spans,
        and a job that fails anywhere (even while the document is still
        being parsed) cannot leak state onto the context.  The metrics
        registry is shared across the service's lifetime.

        ``cancel_check`` is forwarded to the executor, which calls it at
        every stage boundary; it may raise
        :class:`~repro.core.executor.JobCancelled`, which propagates to
        the caller (the job server maps it to the ``timeout`` state).
        """
        tracer = tracer if tracer is not None else Tracer()
        try:
            quanta = build_quanta(self.ctx, document, self.env)
            execution = document.get("execution", {})
            kwargs: dict[str, Any] = {}
            platforms = execution.get("platforms")
            if platforms:
                kwargs["allowed_platforms"] = {
                    resolve_platform(p) for p in platforms} | {"driver"}
            if execution.get("objective") == "monetary":
                kwargs["objective"] = monetary()
            if execution.get("progressive"):
                kwargs["progressive"] = True
            result = quanta.execute(tracer=tracer, cancel_check=cancel_check,
                                    **kwargs)
        except (PlanDocumentError, OptimizationError, PlanValidationError,
                KeyError) as exc:
            response = {"status": "error", "kind": type(exc).__name__,
                        "error": str(exc)}
            diagnostics = _exception_diagnostics(exc)
            if diagnostics:
                response["diagnostics"] = diagnostics
            return response
        except SimulatedOutOfMemory as exc:
            return {"status": "error", "kind": "OutOfMemory",
                    "error": str(exc)}
        response = {
            "status": "ok",
            "output": _jsonable(result.output),
            "runtime": result.runtime,
            "platforms": sorted(result.platforms),
            "price_usd": price_of(result),
            "diagnostics": [d.to_json() for d in result.diagnostics],
        }
        if observations and getattr(result, "calibration_ok", False):
            from ..learn.calibration import observation_to_json

            response["calibration_observations"] = [
                observation_to_json(obs)
                for obs in result.monitor.stage_observations]
        # A disabled tracer has no spans and the caller asked for the
        # hot path (the job server's tracing=False mode) — rendering the
        # metrics block per response would be pure overhead.
        if getattr(tracer, "enabled", True):
            response["trace"] = trace_block(tracer, self.ctx.metrics)
        return response


def _exception_diagnostics(exc: Exception) -> list[dict]:
    """JSON-ready diagnostics off an analyzer/validation exception."""
    report = getattr(exc, "report", None)
    if report is not None:
        return [d.to_json() for d in report]
    return [d.to_json() for d in getattr(exc, "diagnostics", [])]


def _jsonable(value: Any) -> Any:
    """Coerce result payloads into JSON-compatible structures."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def wsgi_app(service: RheemService):
    """A WSGI application exposing ``POST /jobs``."""

    def app(environ, start_response):
        if environ.get("REQUEST_METHOD") != "POST" or \
                environ.get("PATH_INFO") != "/jobs":
            start_response("404 Not Found",
                           [("Content-Type", "application/json")])
            return [b'{"status": "error", "error": "POST /jobs only"}']
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
            body = environ["wsgi.input"].read(length)
            document = json.loads(body)
        except (ValueError, KeyError) as exc:
            start_response("400 Bad Request",
                           [("Content-Type", "application/json")])
            return [json.dumps({"status": "error",
                                "error": f"bad JSON: {exc}"}).encode()]
        response = service.submit(document)
        status = "200 OK" if response["status"] == "ok" else "400 Bad Request"
        start_response(status, [("Content-Type", "application/json")])
        return [json.dumps(response).encode()]

    return app
