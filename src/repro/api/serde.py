"""JSON plan (de)serialization for the REST interface.

The paper lists REST among Rheem's APIs; REST clients cannot ship compiled
UDFs, so — like RheemLatin — the JSON format carries UDFs as Python
expressions over conventional variable names (``x`` for the record, ``a``/
``b`` for reducer arguments, ``bc`` for broadcast values).  A job document
looks like::

    {
      "operators": [
        {"name": "lines",  "kind": "textfile_source",
         "path": "hdfs://data/x.txt"},
        {"name": "words",  "kind": "flatmap", "input": "lines",
         "expr": "x.split()"},
        {"name": "pairs",  "kind": "map", "input": "words",
         "expr": "(x, 1)"},
        {"name": "counts", "kind": "reduceby", "input": "pairs",
         "key": "x[0]", "reducer": "(a[0], a[1] + b[1])"}
      ],
      "sink": {"name": "counts"},
      "execution": {"platforms": ["Spark", "JavaStreams"],
                    "objective": "runtime"}
    }

Operator ``kind``s mirror the fluent API; ``platform`` pins accept the
paper's platform names (``Spark``, ``JavaStreams``, ...).
"""

from __future__ import annotations

from typing import Any

from ..core.context import DataQuanta, RheemContext
from ..latin.translator import resolve_platform


class PlanDocumentError(ValueError):
    """Raised when a JSON job document is malformed."""


def _compile(expr: str, params: str, env: dict[str, Any]):
    try:
        return eval(f"lambda {params}: ({expr})", dict(env))
    except SyntaxError as exc:
        raise PlanDocumentError(f"bad expression {expr!r}: {exc}") from exc


def _field(spec: dict, key: str) -> Any:
    try:
        return spec[key]
    except KeyError:
        raise PlanDocumentError(
            f"operator {spec.get('name', '?')!r} misses field {key!r}"
        ) from None


def build_quanta(
    ctx: RheemContext,
    document: dict,
    env: dict[str, Any] | None = None,
) -> DataQuanta:
    """Materialize the document's dataflow; returns the sink's DataQuanta.

    Raises:
        PlanDocumentError: On unknown kinds, missing fields or dangling
            dataset references.
    """
    env = dict(env or {})
    datasets: dict[str, DataQuanta] = {}

    def dataset(name: str) -> DataQuanta:
        try:
            return datasets[name]
        except KeyError:
            raise PlanDocumentError(f"unknown dataset {name!r}") from None

    for spec in document.get("operators", []):
        name = _field(spec, "name")
        kind = _field(spec, "kind")
        broadcasts = [dataset(b) for b in spec.get("broadcasts", [])]
        if kind == "textfile_source":
            dq = ctx.read_text_file(_field(spec, "path"))
        elif kind == "collection_source":
            data = spec.get("data")
            if data is None:
                data = env[_field(spec, "env")]
            dq = ctx.load_collection(
                data, sim_factor=spec.get("sim_factor", 1.0),
                bytes_per_record=spec.get("bytes_per_record", 100.0))
        elif kind == "table_source":
            dq = ctx.read_table(_field(spec, "table"),
                                spec.get("projection"))
        elif kind in ("map", "flatmap", "filter"):
            fn = _compile(_field(spec, "expr"), "x, *bc", env)
            src = dataset(_field(spec, "input"))
            if kind == "filter":
                dq = src.filter(fn, broadcasts=broadcasts)
            else:
                method = src.map if kind == "map" else src.flat_map
                dq = method(fn, broadcasts=broadcasts,
                            bytes_per_record=spec.get("bytes_per_record"))
        elif kind == "sample":
            dq = dataset(_field(spec, "input")).sample(
                size=spec.get("size"), fraction=spec.get("fraction"),
                method=spec.get("method", "random"), broadcasts=broadcasts)
        elif kind == "distinct":
            dq = dataset(_field(spec, "input")).distinct()
        elif kind == "sort":
            key = spec.get("key")
            dq = dataset(_field(spec, "input")).sort(
                key=_compile(key, "x", env) if key else None,
                descending=spec.get("descending", False))
        elif kind == "groupby":
            dq = dataset(_field(spec, "input")).group_by(
                _compile(_field(spec, "key"), "x", env),
                sim_groups=spec.get("sim_groups"))
        elif kind == "reduceby":
            dq = dataset(_field(spec, "input")).reduce_by_key(
                _compile(_field(spec, "key"), "x", env),
                _compile(_field(spec, "reducer"), "a, b", env),
                sim_groups=spec.get("sim_groups"))
        elif kind == "reduce":
            dq = dataset(_field(spec, "input")).reduce(
                _compile(_field(spec, "reducer"), "a, b", env))
        elif kind == "count":
            dq = dataset(_field(spec, "input")).count()
        elif kind == "cache":
            dq = dataset(_field(spec, "input")).cache()
        elif kind in ("union", "intersect"):
            left = dataset(_field(spec, "left"))
            right = dataset(_field(spec, "right"))
            dq = left.union(right) if kind == "union" \
                else left.intersect(right)
        elif kind == "join":
            dq = dataset(_field(spec, "left")).join(
                dataset(_field(spec, "right")),
                _compile(_field(spec, "left_key"), "x", env),
                _compile(_field(spec, "right_key"), "x", env),
                selectivity=spec.get("selectivity"),
                sim_mode=spec.get("sim_mode", "linear"))
        elif kind == "pagerank":
            dq = dataset(_field(spec, "input")).pagerank(
                iterations=spec.get("iterations", 10),
                damping=spec.get("damping", 0.85))
        else:
            raise PlanDocumentError(f"unknown operator kind {kind!r}")
        if spec.get("platform"):
            dq.with_target_platform(resolve_platform(spec["platform"]))
        datasets[name] = dq

    sink = document.get("sink")
    if not sink:
        raise PlanDocumentError("document needs a 'sink' entry")
    return dataset(_field(sink, "name"))
