"""The REST interface: JSON job documents in, JSON results out."""

from .serde import PlanDocumentError, build_quanta
from .service import RheemService, wsgi_app

__all__ = ["PlanDocumentError", "build_quanta", "RheemService", "wsgi_app"]
