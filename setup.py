"""Setup shim.

Packaging metadata lives in ``setup.cfg``.  This project deliberately has no
``pyproject.toml``: the reproduction environment is offline and pip's PEP 517
build isolation (triggered by that file's presence) cannot fetch build
dependencies, whereas the classic ``setup.py`` editable path works anywhere.
"""

from setuptools import setup

setup()
