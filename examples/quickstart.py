"""Quickstart: WordCount, and why cross-platform processing matters.

Builds one platform-agnostic WordCount plan and runs it three times:
pinned to the JavaStreams analog, pinned to the Spark analog, and free —
where the cost-based optimizer picks the platform per input size, like the
paper's Figure 9(a).

Run:  python examples/quickstart.py
"""

from repro import RheemContext
from repro.core.udf import Udf
from repro.workloads import write_abstracts


def wordcount(ctx: RheemContext, path: str):
    """A platform-agnostic WordCount dataflow."""
    split = Udf(lambda line: line.split(), selectivity=9.0, name="split")
    return (ctx.read_text_file(path)
            .flat_map(split, bytes_per_record=10)
            .map(lambda word: (word, 1), bytes_per_record=14)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1])))


def main() -> None:
    print(f"{'input':>8} | {'JavaStreams*':>12} | {'Spark*':>8} | "
          f"{'Rheem':>8} | chosen platforms")
    for percent in (1, 10, 100):
        runtimes = {}
        for label, platforms in [("JavaStreams*", {"pystreams"}),
                                 ("Spark*", {"sparklite"}),
                                 ("Rheem", None)]:
            ctx = RheemContext()
            write_abstracts(ctx, "hdfs://demo/abstracts.txt", percent)
            task = wordcount(ctx, "hdfs://demo/abstracts.txt")
            kwargs = {}
            if platforms is not None:
                kwargs["allowed_platforms"] = platforms | {"driver"}
            result = task.execute(**kwargs)
            runtimes[label] = result
        chosen = "+".join(sorted(runtimes["Rheem"].platforms))
        print(f"{percent:>7}% | "
              f"{runtimes['JavaStreams*'].runtime:>11.1f}s | "
              f"{runtimes['Spark*'].runtime:>7.1f}s | "
              f"{runtimes['Rheem'].runtime:>7.1f}s | {chosen}")
    top = sorted(runtimes["Rheem"].output, key=lambda t: -t[1])[:3]
    print("\ntop words:", ", ".join(f"{w} x{n}" for w, n in top))
    print("(runtimes are simulated seconds on the virtual 10-node cluster)")


if __name__ == "__main__":
    main()
