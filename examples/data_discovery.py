"""Data discovery across a polystore (the Data Civilizer use case).

A data lake with columns scattered over the relational store, HDFS and a
local file; MinHash signatures are computed for each column *in place*
through one multi-sink Rheem plan, and similar column pairs pop out —
the relationship graph Data Civilizer builds for its users.

Run:  python examples/data_discovery.py
"""

import random

from repro import RheemContext
from repro.apps import find_similar_columns


def main() -> None:
    rng = random.Random(4)
    ctx = RheemContext()

    emails = [f"user{i}@corp.example" for i in range(400)]
    overlap = emails[:240] + [f"lead{i}@corp.example" for i in range(160)]
    countries = [rng.choice(["DE", "FR", "QA", "US"]) for __ in range(400)]

    # Postgres: the CRM.
    ctx.pgres.create_table("crm", ["email", "country"],
                           [{"email": e, "country": c}
                            for e, c in zip(emails, countries)],
                           sim_factor=25_000.0)
    # HDFS: a marketing export with 60% of the same contacts.
    ctx.vfs.write("hdfs://lake/leads.csv", overlap, sim_factor=25_000.0)
    # Local file: an unrelated product catalog.
    ctx.vfs.write("file://exports/skus.csv",
                  [f"SKU-{i:05d}" for i in range(400)], sim_factor=1_000.0)

    columns = {
        "pg.crm.email": ctx.read_table("crm").map(lambda r: r["email"]),
        "pg.crm.country": ctx.read_table("crm").map(lambda r: r["country"]),
        "hdfs.leads": ctx.read_text_file("hdfs://lake/leads.csv"),
        "local.skus": ctx.read_text_file("file://exports/skus.csv"),
    }
    pairs = find_similar_columns(ctx, columns, threshold=0.2)

    print("column pairs with similar value sets (estimated Jaccard):")
    for a, b, score in pairs:
        print(f"  {a:>16} ~ {b:<16} {score:5.2f}")
    assert pairs and {pairs[0][0], pairs[0][1]} == \
        {"pg.crm.email", "hdfs.leads"}
    print("\nthe CRM email column and the HDFS leads file were matched "
          "across stores, without moving either dataset by hand.")


if __name__ == "__main__":
    main()
