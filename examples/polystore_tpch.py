"""Polystore analytics: TPC-H Q5 across three stores (Section 2.4).

LINEITEM and ORDERS live on (virtual) HDFS, CUSTOMER/SUPPLIER/REGION in
the relational engine, NATION on the local file system.  Rheem runs the
join/groupby/orderby pipeline across the stores directly; the two "common
practices" the paper measures — bulk-load everything into Postgres, or
dump everything to HDFS for Spark — pay heavy migration first.

Run:  python examples/polystore_tpch.py
"""

from repro import RheemContext
from repro.apps import run_all_into_pgres, run_all_on_spark, run_polystore

SCALE_FACTOR = 10


def main() -> None:
    print(f"TPC-H Q5 at scale factor {SCALE_FACTOR} "
          f"(~{6_000_000 * SCALE_FACTOR:,} lineitems simulated)\n")

    direct = run_polystore(RheemContext(), SCALE_FACTOR)
    print(f"DataCiv@Rheem (in place):     {direct.runtime:>8.1f}s "
          f"on {'+'.join(sorted(direct.raw.platforms))}")

    into_pg = run_all_into_pgres(RheemContext(), SCALE_FACTOR)
    print(f"load into Postgres* + query: {into_pg.runtime:>8.1f}s "
          f"(of which {into_pg.migration_s:.0f}s bulk load)")

    on_spark = run_all_on_spark(RheemContext(), SCALE_FACTOR)
    print(f"move to HDFS + Spark*:       {on_spark.runtime:>8.1f}s "
          f"(of which {on_spark.migration_s:.0f}s export)")

    assert sorted(direct.result) == sorted(into_pg.result) \
        == sorted(on_spark.result)
    print("\nrevenue per nation (all three agree):")
    for nation, revenue in direct.result[:5]:
        print(f"  {nation}: {revenue:,.0f}")


if __name__ == "__main__":
    main()
