"""Progressive optimization: recovering from a wrong selectivity hint
(the paper's Section 4.4 / Figure 10(b)).

A filter hinted as keeping 0.01% of the data actually keeps ~100%.  The
initial plan routes the join after it onto the in-process platform; the
monitor notices the cardinality mismatch at the first optimization
checkpoint, the remainder is re-optimized onto a parallel engine, and the
job finishes several times faster than without re-optimization.

Run:  python examples/progressive_optimization.py
"""

from repro import RheemContext
from repro.core.udf import Udf


def build_plan(ctx: RheemContext):
    rows = [f"item{i},{i % 1000}" for i in range(4000)]
    ctx.vfs.write("hdfs://demo/events.csv", rows, sim_factor=10_000.0,
                  bytes_per_record=100.0)
    lookup = ctx.load_collection([(k, f"cat{k % 7}") for k in range(1000)],
                                 bytes_per_record=20)
    wrong_hint = Udf(lambda t: t[1] >= 1, selectivity=0.0001,
                     name="name-filter")
    events = (ctx.read_text_file("hdfs://demo/events.csv")
              .map(lambda l: (l.split(",")[0], int(l.split(",")[1])),
                   name="parse")
              .filter(wrong_hint))
    joined = events.join(lookup, lambda e: e[1], lambda kv: kv[0],
                         selectivity=1.0 / 1000)
    return (joined.map(lambda p: (p[1][1], 1), bytes_per_record=12)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1]))
            .to_plan())


def main() -> None:
    ctx_off = RheemContext()
    off = ctx_off.execute(build_plan(ctx_off))
    print(f"progressive optimization OFF: {off.runtime:>7.1f}s simulated")

    ctx_on = RheemContext()
    report = ctx_on.execute_progressive(build_plan(ctx_on), tolerance=2.0)
    print(f"progressive optimization ON:  {report.result.runtime:>7.1f}s "
          f"simulated ({report.replans} re-optimization)")
    print(f"speed-up: {off.runtime / report.result.runtime:.1f}x")

    mismatches = report.result.monitor.mismatches()
    assert sorted(off.output) == sorted(report.result.output)
    print("\nwhat happened: the monitor measured the filter's true output, "
          "the plan paused at the checkpoint,\nand the join was re-planned "
          "onto a parallel platform with the measured cardinality pinned.")


if __name__ == "__main__":
    main()
