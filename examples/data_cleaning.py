"""Data cleaning with BigDansing: detect and repair denial-constraint
violations (the paper's Section 2.1 use case).

The Tax rule — nobody may earn more yet pay less tax than someone else —
compiles onto a plan whose inequality self-join uses the plugged-in fast
IEJoin operator.  We detect the planted violations, generate repairs, and
show the three-orders-of-magnitude gap to a NADEEF-style single-node rule
engine.

Run:  python examples/data_cleaning.py
"""

from repro import RheemContext
from repro.apps import BigDansing, tax_rule
from repro.baselines import nadeef_detect
from repro.workloads import write_tax
from repro.workloads.tax import parse_tax

SIM_ROWS = 200_000


def main() -> None:
    ctx = RheemContext()
    corrupted = write_tax(ctx, "hdfs://demo/tax.csv", count=400,
                          sim_rows=SIM_ROWS, violations=5)
    print(f"tax dataset: {SIM_ROWS:,} simulated rows, "
          f"{len(corrupted)} corrupted records planted")

    data = (ctx.read_text_file("hdfs://demo/tax.csv")
            .map(parse_tax, name="parse-tax", bytes_per_record=60))
    cleaner = BigDansing(ctx)
    rule = tax_rule()

    detection = cleaner.detect(data, rule)
    offenders = {pair[0]["rid"] for pair in detection.output}
    print(f"\nDC@Rheem: {detection.runtime:.1f}s simulated on "
          f"{'+'.join(sorted(detection.platforms))}")
    print(f"  violating pairs: {len(detection.output):,}")
    print(f"  all planted offenders found: {corrupted <= offenders}")

    repair = cleaner.repair(data, rule)
    planted_fixes = [f for f in repair.output if f.rid in corrupted]
    print(f"  repairs proposed: {len(repair.output)} "
          f"({len(planted_fixes)} on planted offenders), e.g. "
          f"set tax of record {planted_fixes[0].rid} "
          f"to {planted_fixes[0].value}")

    records = [parse_tax(l) for l in ctx.vfs.read("hdfs://demo/tax.csv").records]
    nadeef = nadeef_detect(records, SIM_ROWS, rule)
    print(f"\nNADEEF*: {nadeef.runtime:,.0f}s simulated "
          f"({nadeef.runtime / detection.runtime:,.0f}x slower)")


if __name__ == "__main__":
    main()
