"""A tour of the surfaces beyond the core pipeline: EXPLAIN, SQL, the REST
interface, monetary-cost optimization, and cross-platform fault tolerance.

Run:  python examples/extensions_tour.py
"""

from repro import RheemContext
from repro.api import RheemService
from repro.apps import run_sql
from repro.core import FaultInjector, monetary, price_of
from repro.studio import explain
from repro.workloads import write_abstracts


def wordcount(ctx):
    from repro.core.udf import Udf

    split = Udf(lambda line: line.split(), selectivity=9.0, name="split")
    return (ctx.read_text_file("hdfs://demo/abstracts.txt")
            .flat_map(split, bytes_per_record=10)
            .map(lambda w: (w, 1), bytes_per_record=14)
            .reduce_by_key(lambda t: t[0], lambda a, b: (a[0], a[1] + b[1])))


def main() -> None:
    # --- EXPLAIN: what would the optimizer do, without running? ----------
    ctx = RheemContext()
    write_abstracts(ctx, "hdfs://demo/abstracts.txt", percent=10)
    print("EXPLAIN WordCount@10%:")
    print(explain(ctx, wordcount(ctx).to_plan()))

    # --- runtime vs. dollars ---------------------------------------------
    fast = wordcount(ctx).execute()
    cheap = wordcount(ctx).execute(objective=monetary())
    print(f"runtime objective:  {fast.runtime:6.1f}s on "
          f"{'+'.join(sorted(fast.platforms))}  (${price_of(fast):.4f})")
    print(f"monetary objective: {cheap.runtime:6.1f}s on "
          f"{'+'.join(sorted(cheap.platforms))}  (${price_of(cheap):.4f})")

    # --- fault tolerance ---------------------------------------------------
    injector = FaultInjector(probability=0.4, seed=3)
    survived = wordcount(ctx).execute(fault_injector=injector,
                                      max_stage_retries=10)
    print(f"\nchaos run: {injector.injected} injected crash(es) survived, "
          f"runtime {survived.runtime:.1f}s "
          f"(clean: {fast.runtime:.1f}s)")

    # --- SQL through xDB ----------------------------------------------------
    ctx.pgres.create_table(
        "orders", ["okey", "nationkey", "total"],
        [{"okey": i, "nationkey": i % 4, "total": float(i)}
         for i in range(40)], sim_factor=1000.0)
    report = run_sql(ctx, """
        SELECT nationkey, SUM(total) FROM orders
        WHERE total >= 10 GROUP BY nationkey
    """)
    print("\nSQL revenue report:", sorted(report.output))

    # --- REST: a JSON job document -----------------------------------------
    service = RheemService(ctx)
    response = service.submit({
        "operators": [
            {"name": "lines", "kind": "textfile_source",
             "path": "hdfs://demo/abstracts.txt"},
            {"name": "words", "kind": "flatmap", "input": "lines",
             "expr": "x.split()"},
            {"name": "n", "kind": "count", "input": "words"},
        ],
        "sink": {"name": "n"},
        "execution": {"platforms": ["Flink"]},
    })
    print(f"\nREST job: status={response['status']} "
          f"words={response['output'][0]:,} "
          f"runtime={response['runtime']:.1f}s "
          f"platforms={response['platforms']}")


if __name__ == "__main__":
    main()
