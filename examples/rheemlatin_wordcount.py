"""RheemLatin: the PigLatin-inspired data-flow language (Section 5).

The same analytics, written as a script instead of API calls — including
an iterative block whose loop variable is reassigned inside it (the shape
of the paper's Listing 1), platform pinning by the paper's platform names,
and a user-registered keyword extending the vocabulary.

Run:  python examples/rheemlatin_wordcount.py
"""

from repro import RheemContext
from repro.latin import Interpreter
from repro.workloads import write_abstracts

WORDCOUNT = """
-- classic word count over the abstracts corpus
lines  = load 'hdfs://demo/abstracts.txt';
words  = flatmap lines -> { x.split() };
pairs  = map words -> { (x, 1) };
counts = reduceby pairs by { x[0] } with { (a[0], a[1] + b[1]) };
top    = head counts 5;
dump top;
"""

SGD = """
points = load collection raw_points;
data   = cache points;
w      = load collection w0;
w = repeat 25 {
  s = sample data 8 method 'random_jump' with broadcast w;
  g = map s -> { (x - bc[0][0]) } with broadcast w;
  t = reduce g -> { a + b };
  w = map t -> { bc[0][0] + 0.05 * x / 8 } with broadcast w
        with platform 'JavaStreams';
};
dump w;
"""


def head_keyword(interpreter, op, line):
    """`X = head Y N;` — a user-added RheemLatin keyword."""
    source = interpreter.datasets[op.sources[0]]
    n = int(op.options["args"][0])
    return source.sort(key=lambda t: -t[1]).sample(size=n, method="first")


def main() -> None:
    ctx = RheemContext()
    write_abstracts(ctx, "hdfs://demo/abstracts.txt", percent=5)
    interpreter = Interpreter(ctx)
    interpreter.register_keyword("head", head_keyword)
    results = interpreter.run(WORDCOUNT)
    print("top words:", results["top"])

    ctx2 = RheemContext()
    interpreter2 = Interpreter(ctx2, env={
        "raw_points": [float(v % 7) for v in range(400)],
        "w0": [0.0],
    })
    results2 = interpreter2.run(SGD)
    print("estimated mean after 25 SGD steps:", round(results2["w"][0], 3),
          "(true mean = 3.0)")


if __name__ == "__main__":
    main()
