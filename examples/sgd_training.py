"""Machine learning with ML4all: SGD whose loop body hops platforms
(the paper's Section 2.2 opportunistic use case).

The training plan reads and caches the points on a distributed engine,
then runs each iteration's tiny sample/compute/update steps in-process —
the mix that makes Rheem up to an order of magnitude faster than running
the same algorithm purely on the Spark analog.

Run:  python examples/sgd_training.py
"""

from repro import RheemContext
from repro.apps import ML4all, sgd_hinge
from repro.baselines import mllib_sgd
from repro.workloads import write_points
from repro.workloads.points import DATASETS

ITERATIONS = 200


def main() -> None:
    spec = DATASETS["higgs"]
    print(f"dataset: {spec.name}, {spec.sim_points:,.0f} simulated points, "
          f"{spec.dimensions} features")

    ctx = RheemContext()
    write_points(ctx, "hdfs://demo/points.csv", "higgs", percent=100)
    result = ML4all(ctx).train(
        "hdfs://demo/points.csv", sgd_hinge(spec.dimensions),
        iterations=ITERATIONS, sample_size=10)
    weights = result.output[0]
    print(f"\nML@Rheem: {result.runtime:.1f}s simulated on "
          f"{'+'.join(sorted(result.platforms))}")
    print(f"  |w| = {len(weights)}, ||w|| = "
          f"{sum(w * w for w in weights) ** 0.5:.3f}")

    ctx2 = RheemContext()
    write_points(ctx2, "hdfs://demo/points.csv", "higgs", percent=100)
    baseline = mllib_sgd(ctx2, "hdfs://demo/points.csv",
                         sgd_hinge(spec.dimensions), iterations=ITERATIONS)
    print(f"\nMLlib* (pure Spark analog): {baseline.runtime:.1f}s simulated "
          f"({baseline.runtime / result.runtime:.1f}x slower)")
    print("\nwhy: the loop body touches ~10 points per iteration; paying a "
          "distributed job per iteration is what the mixed plan avoids.")


if __name__ == "__main__":
    main()
