"""Unit tests for the columnar :class:`RecordBatch` and its kernels.

The batch layer's contract is exactness: ``to_records`` must reconstruct
the original records bit-for-bit, and every kernel must reproduce the
per-record engines' output order and values.  These tests pin the layout
rules, the numpy-backing edge cases (where a silent fallback would cost
only speed but a wrong conversion would cost correctness), and the join
fast paths against a reference implementation.
"""

import numpy as np
import pytest

from repro.core.batch import (
    RecordBatch,
    apply_filter,
    apply_join,
    apply_sort,
    fold_by_key_columns,
    join_indices,
    sort_order,
)
from repro.workloads.tpch import (
    SF1_ROWS,
    TpchLite,
    _to_csv,
    parse_batch,
    parse_row,
)


class TestLayouts:
    def test_dict_layout_round_trip(self):
        rows = [{"a": i, "b": float(i), "c": f"s{i}"} for i in range(10)]
        batch = RecordBatch.from_records(rows)
        assert batch.kind == "dict"
        assert batch.names == ("a", "b", "c")
        assert batch.to_records() == rows

    def test_tuple_layout_round_trip(self):
        rows = [(i, i * 2.5) for i in range(7)]
        batch = RecordBatch.from_records(rows)
        assert batch.kind == "tuple"
        assert batch.to_records() == rows

    def test_scalar_layout_round_trip(self):
        rows = ["alpha", "beta", "gamma"]
        batch = RecordBatch.from_records(rows)
        assert batch.kind == "scalar"
        assert batch.to_records() == rows

    def test_heterogeneous_records_fall_back_to_scalar(self):
        rows = [{"a": 1}, (2, 3), "four"]
        batch = RecordBatch.from_records(rows)
        assert batch.kind == "scalar"
        assert batch.to_records() == rows

    def test_mixed_key_dicts_fall_back_to_scalar(self):
        rows = [{"a": 1}, {"b": 2}]
        batch = RecordBatch.from_records(rows)
        assert batch.kind == "scalar"
        assert batch.to_records() == rows

    def test_empty_batch(self):
        batch = RecordBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []

    def test_pair_round_trip(self):
        left = RecordBatch.from_records([{"k": 1}, {"k": 2}])
        right = RecordBatch.from_records([(1, "x"), (2, "y")])
        batch = RecordBatch.pair(left, right)
        assert batch.to_records() == [({"k": 1}, (1, "x")),
                                      ({"k": 2}, (2, "y"))]


class TestNumpyBacking:
    def test_homogeneous_columns_are_numpy_backed(self):
        rows = [{"i": n, "f": n / 3.0, "s": f"v{n}"} for n in range(5)]
        batch = RecordBatch.from_records(rows)
        for name in ("i", "f", "s"):
            assert batch.array(name) is not None

    def test_scalar_string_lines_are_numpy_backed(self):
        # Regression: the scalar layout used to skip _make_column, so a
        # column of CSV lines never vectorized and parse_batch silently
        # fell back to the per-record parse.
        batch = RecordBatch.from_records(["1|2", "3|4"])
        assert batch.array(0) is not None
        assert batch.array(0).dtype.kind == "U"

    def test_backing_arrays_are_read_only(self):
        batch = RecordBatch.from_records([1, 2, 3])
        arr = batch.array(0)
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 99

    def test_bool_stays_off_the_int_path(self):
        # bool is an int subclass; np.int64 would turn True into 1 and
        # break to_records exactness.
        rows = [True, False, True]
        batch = RecordBatch.from_records(rows)
        assert batch.array(0) is None
        out = batch.to_records()
        assert out == rows and all(type(v) is bool for v in out)

    def test_mixed_bool_int_stays_object(self):
        batch = RecordBatch.from_records([True, 1])
        assert batch.array(0) is None
        assert [type(v) for v in batch.to_records()] == [bool, int]

    def test_int64_overflow_stays_object(self):
        rows = [2**63, -5, 7]
        batch = RecordBatch.from_records(rows)
        assert batch.array(0) is None
        assert batch.to_records() == rows

    def test_trailing_nul_strings_stay_object(self):
        # numpy's fixed-width unicode dtype drops trailing NULs, which
        # would silently shorten the strings on round-trip.
        rows = ["a\x00", "b"]
        batch = RecordBatch.from_records(rows)
        assert batch.array(0) is None
        assert batch.to_records() == rows

    def test_scalar_records_are_plain_python_types(self):
        # Regression: the scalar layout used list(column), and iterating
        # a numpy array yields numpy scalars — np.str_ keys leaked into
        # wordcount results and np.int64 (not an int subclass) into
        # downstream records.
        for rows in (["to be", "or not"], [1, 2], [0.5, 1.5]):
            out = RecordBatch.from_records(rows).to_records()
            assert out == rows
            assert [type(v) for v in out] == [type(v) for v in rows]

    def test_int_float_round_trip_is_exact(self):
        ints = [0, -1, 2**62, -(2**63), 2**63 - 1]
        floats = [0.1, -0.0, 1e-308, 1.7976931348623157e308, 2.0**-1074]
        assert RecordBatch.from_records(ints).to_records() == ints
        out = RecordBatch.from_records(floats).to_records()
        assert [v.hex() for v in out] == [v.hex() for v in floats]


class TestKernels:
    def test_take_orders_rows(self):
        batch = RecordBatch.from_records([{"v": i} for i in range(5)])
        out = batch.take(np.array([3, 0, 3]))
        assert out.to_records() == [{"v": 3}, {"v": 0}, {"v": 3}]

    def test_mask_preserves_order(self):
        batch = RecordBatch.from_records(list(range(6)))
        out = batch.mask(np.array([1, 0, 1, 0, 0, 1], dtype=bool))
        assert out.to_records() == [0, 2, 5]

    def test_concat_mixed_layouts(self):
        a = RecordBatch.from_records([{"v": 1}])
        b = RecordBatch.from_records([(2, 3)])
        assert RecordBatch.concat([a, b]).to_records() == [{"v": 1}, (2, 3)]

    def test_concat_same_layout_preserves_order(self):
        a = RecordBatch.from_records([1, 2])
        b = RecordBatch.from_records([3])
        out = RecordBatch.concat([a, b])
        assert out.to_records() == [1, 2, 3]
        assert not out.array(0).flags.writeable

    def test_sort_order_matches_python_stability(self):
        keys = [3, 1, 3, 2, 1]
        rows = list(enumerate(keys))
        for descending in (False, True):
            order = sort_order(np.array(keys), descending)
            got = [rows[i] for i in order.tolist()]
            # Python's sort is stable in BOTH directions: reverse=True
            # must not reverse ties.
            assert got == sorted(rows, key=lambda t: t[1],
                                 reverse=descending)

    def test_fold_by_key_matches_legacy_fold(self):
        rows = [("a", 1.0), ("b", 2.0), ("a", 0.5), ("a", 4.0), ("b", 8.0)]
        batch = RecordBatch.from_records(rows)
        out = fold_by_key_columns(batch, 0, 1, lambda a, b: a + b)
        acc: dict = {}
        for k, v in rows:
            acc[k] = acc[k] + v if k in acc else v
        assert out.to_records() == list(acc.items())


def _reference_join(left_keys, right_keys):
    """The per-record engines' hash join, as index pairs."""
    table: dict = {}
    for j, k in enumerate(right_keys):
        table.setdefault(k, []).append(j)
    li, ri = [], []
    for i, k in enumerate(left_keys):
        for j in table.get(k, ()):
            li.append(i)
            ri.append(j)
    return li, ri


class TestJoinIndices:
    @pytest.mark.parametrize("left,right", [
        # Dense integer keys: exercises the direct-address run table.
        ([3, 1, 4, 1, 5, 9, 2], [1, 1, 2, 3, 5, 8]),
        # Sparse keys whose span rules the table out: binary-search path.
        ([0, 10**15, 7], [10**15, 7, 0, 10**15]),
        # Duplicates on both sides; output must be left order crossed
        # with right insertion order.
        ([2, 2, 1], [1, 2, 2, 1]),
        # Negative keys and out-of-range probes.
        ([-5, 0, 99, -6], [-5, -5, 0]),
        # Empty left side.
        ([], [1, 2]),
        # Empty right side.
        ([1, 2], []),
    ])
    def test_matches_reference_hash_join(self, left, right):
        li, ri = join_indices(np.array(left, dtype=np.int64),
                              np.array(right, dtype=np.int64))
        ref_li, ref_ri = _reference_join(left, right)
        assert li.tolist() == ref_li
        assert ri.tolist() == ref_ri

    def test_float_keys_use_search_path(self):
        left = [1.5, 2.5, 1.5]
        right = [2.5, 1.5, 2.5]
        li, ri = join_indices(np.array(left), np.array(right))
        ref_li, ref_ri = _reference_join(left, right)
        assert li.tolist() == ref_li and ri.tolist() == ref_ri

    def test_randomized_dense_keys_match_reference(self):
        rng = np.random.default_rng(7)
        left = rng.integers(0, 50, size=300)
        right = rng.integers(0, 50, size=80)
        li, ri = join_indices(left.astype(np.int64), right.astype(np.int64))
        ref_li, ref_ri = _reference_join(left.tolist(), right.tolist())
        assert li.tolist() == ref_li and ri.tolist() == ref_ri


class _Join:
    """Minimal logical-join stand-in for apply_join."""

    def __init__(self, left_key, right_key, left_col=None, right_col=None):
        self.left_key = left_key
        self.right_key = right_key
        self.left_key_column = left_col
        self.right_key_column = right_col


class TestApplyJoin:
    def test_vectorized_and_fallback_paths_agree(self):
        left = [{"k": i % 3, "l": i} for i in range(9)]
        right = [{"k": i % 4, "r": i} for i in range(8)]
        logical = _Join(lambda x: x["k"], lambda x: x["k"], "k", "k")
        fast = apply_join(logical, RecordBatch.from_records(left),
                          RecordBatch.from_records(right))
        slow = apply_join(_Join(lambda x: x["k"], lambda x: x["k"]),
                          RecordBatch.from_records(left),
                          RecordBatch.from_records(right))
        expected = [(l, r) for l in left for r in right if l["k"] == r["k"]]
        assert fast.to_records() == expected
        assert slow.to_records() == expected

    def test_nan_keys_fall_back_to_hash_semantics(self):
        # NaN != NaN in the legacy hash join; the sort-based fast path
        # would pair them, so it must decline.
        nan = float("nan")
        left = [{"k": nan, "l": 0}, {"k": 1.0, "l": 1}]
        right = [{"k": nan, "r": 0}, {"k": 1.0, "r": 1}]
        logical = _Join(lambda x: x["k"], lambda x: x["k"], "k", "k")
        out = apply_join(logical, RecordBatch.from_records(left),
                         RecordBatch.from_records(right))
        assert out.to_records() == [({"k": 1.0, "l": 1}, {"k": 1.0, "r": 1})]


class _Filter:
    def __init__(self, udf=None, column=None, low=None, high=None):
        self.udf = udf
        self.column = column
        self.low = low
        self.high = high
        self.batch_udf = None


class TestApplyFilter:
    def test_range_filter_matches_predicate(self):
        rows = [{"v": i} for i in range(20)]
        batch = RecordBatch.from_records(rows)
        fast = apply_filter(_Filter(lambda r: 5 <= r["v"] <= 12,
                                    column="v", low=5, high=12), batch)
        slow = apply_filter(_Filter(lambda r: 5 <= r["v"] <= 12), batch)
        assert fast.to_records() == slow.to_records() \
            == [r for r in rows if 5 <= r["v"] <= 12]


class TestParseBatch:
    @pytest.mark.parametrize("table", sorted(SF1_ROWS))
    def test_parity_with_parse_row(self, table):
        rows = TpchLite(0.1, actual_scale=2.0).table(table)
        lines = [_to_csv(table, r) for r in rows]
        out = parse_batch(table, RecordBatch.from_records(lines))
        got = out.to_records() if isinstance(out, RecordBatch) else out
        assert got == [parse_row(table, line) for line in lines]

    @pytest.mark.parametrize("line", [
        "1|x|2.0|0.1",       # non-numeric int field
        "ü|2|1.0|0.5",  # non-ASCII in an int field
    ])
    def test_malformed_number_raises_like_parse_row(self, line):
        batch = RecordBatch.from_records([line])
        with pytest.raises(ValueError):
            parse_batch("lineitem", batch)
        with pytest.raises(ValueError):
            parse_row("lineitem", line)

    def test_non_ascii_name_falls_back_and_matches(self):
        lines = ["0|1|NATIÖN", "1|2|NATION"]
        out = parse_batch("nation", RecordBatch.from_records(lines))
        got = out.to_records() if isinstance(out, RecordBatch) else out
        assert got == [parse_row("nation", line) for line in lines]

    @pytest.mark.parametrize("lines", [
        [],
        ["1|2|3.0"],                # short row: separator-count fallback
        ["-5|2|1.0|0.5"],           # sign routes ints through the C parser
        ["1|2|1e-05|0.5"],          # exponent float
        ["1|2|3.5|0.1", "10|20|70000.25|0.07"],
    ])
    def test_edge_inputs_match_per_record_parse(self, lines):
        out = parse_batch("lineitem", RecordBatch.from_records(lines))
        got = out.to_records() if isinstance(out, RecordBatch) else out
        assert got == [parse_row("lineitem", line) for line in lines]


class TestColumnarSourceCache:
    def test_batch_is_built_once_per_source(self):
        from repro.platforms.pystreams.batch_ops import _columnar

        class Source:
            pass

        src = Source()
        first = _columnar(src, [1, 2, 3])
        second = _columnar(src, [1, 2, 3])
        assert first is second
        assert first.to_records() == [1, 2, 3]
