"""Tests for optimization objectives (runtime vs monetary cost)."""

import pytest

from repro import RheemContext
from repro.core.objectives import (
    DEFAULT_HOURLY_RATES,
    Objective,
    RUNTIME,
    monetary,
    price_of,
)
from repro.workloads import write_abstracts
from conftest import wordcount


class TestObjectiveModel:
    def test_runtime_objective_is_all_ones(self):
        assert RUNTIME.weight("sparklite") == 1.0
        assert RUNTIME.weight("anything") == 1.0

    def test_monetary_weights_scale_hourly_rates(self):
        obj = monetary({"sparklite": 3600.0})
        assert obj.weight("sparklite") == pytest.approx(1.0)
        assert obj.weight("pystreams") == 1.0  # unknown -> neutral

    def test_custom_objective(self):
        green = Objective("carbon", {"sparklite": 5.0})
        assert green.weight("sparklite") == 5.0


class TestMonetaryOptimization:
    def _task(self, ctx):
        write_abstracts(ctx, "hdfs://money/wc.txt", 10)
        return wordcount(ctx, "hdfs://money/wc.txt")

    def test_objectives_can_disagree(self):
        # Runtime optimization uses the distributed engines at 10%...
        fast = self._task(RheemContext()).execute()
        assert fast.platforms & {"sparklite", "flinklite"}
        # ...while a dollar-minimizing run stays on the free driver node
        # (cluster seconds cost ~24x driver seconds at the default rates).
        cheap = self._task(RheemContext()).execute(
            objective=monetary())
        assert cheap.platforms == {"pystreams"}
        assert cheap.runtime > fast.runtime
        assert price_of(cheap) < price_of(fast)

    def test_price_of_accounts_platform_time(self):
        result = self._task(RheemContext()).execute()
        dollars = price_of(result)
        assert dollars > 0
        # Sanity: never more than billing every platform for the makespan.
        ceiling = result.runtime * max(DEFAULT_HOURLY_RATES.values()) \
            * len(DEFAULT_HOURLY_RATES) / 3600.0
        assert dollars <= ceiling

    def test_monetary_results_still_correct(self):
        fast = self._task(RheemContext()).execute()
        cheap = self._task(RheemContext()).execute(objective=monetary())
        assert sorted(fast.output) == sorted(cheap.output)
