"""Tests for the public RheemContext / DataQuanta fluent API."""

import pytest

from repro import RheemContext
from repro.core.operators import InequalityCondition


class TestContextSetup:
    def test_all_builtin_platforms_registered(self, ctx):
        names = {p.name for p in ctx.platforms}
        assert names == {"pystreams", "sparklite", "flinklite", "pgres",
                         "graphlite", "graphchi", "jgraph"}

    def test_partial_platform_installation(self):
        from repro.platforms.pystreams import PyStreamsPlatform
        small = RheemContext(platforms=[PyStreamsPlatform()])
        out = small.load_collection([3, 1, 2]).sort().collect()
        assert out == [1, 2, 3]

    def test_estimation_context_carries_catalog(self, ctx):
        ctx.pgres.create_table("t", ["a"], [{"a": 1}], sim_factor=7.0,
                               bytes_per_row=33.0)
        est = ctx.estimation_context()
        assert est.table_cardinalities["t"] == 7.0
        assert est.table_bytes["t"] == 33.0

    def test_config_seed_threads_through(self):
        a = RheemContext(config={"seed": 1})
        b = RheemContext(config={"seed": 1})
        data = list(range(100))
        sample = lambda c: c.load_collection(data).sample(size=5).collect()
        assert sample(a) == sample(b)


class TestFluentVerbs:
    def test_map_filter_flatmap(self, ctx):
        out = (ctx.load_collection(["a b", "c"])
               .flat_map(str.split)
               .map(str.upper)
               .filter(lambda w: w != "B")
               .collect())
        assert out == ["A", "C"]

    def test_distinct_sort_count(self, ctx):
        assert ctx.load_collection([3, 1, 3]).distinct().sort().collect() == [1, 3]
        assert ctx.load_collection([3, 1, 3]).count().collect() == [3]

    def test_group_by(self, ctx):
        out = ctx.load_collection([1, 2, 3, 4]).group_by(
            lambda x: x % 2).collect()
        groups = {k: sorted(v) for k, v in out}
        assert groups == {0: [2, 4], 1: [1, 3]}

    def test_reduce_by_key_and_reduce(self, ctx):
        out = (ctx.load_collection([("a", 1), ("a", 2), ("b", 3)])
               .reduce_by_key(lambda t: t[0],
                              lambda x, y: (x[0], x[1] + y[1]))
               .collect())
        assert sorted(out) == [("a", 3), ("b", 3)]
        assert ctx.load_collection([1, 2, 3]).reduce(
            lambda a, b: a + b).collect() == [6]

    def test_union_intersect_cartesian(self, ctx):
        a = ctx.load_collection([1, 2])
        b = ctx.load_collection([2, 3])
        assert sorted(a.union(b).collect()) == [1, 2, 2, 3]
        a = ctx.load_collection([1, 2])
        b = ctx.load_collection([2, 3])
        assert a.intersect(b).collect() == [2]
        a = ctx.load_collection([1])
        b = ctx.load_collection([2, 3])
        assert sorted(a.cartesian(b).collect()) == [(1, 2), (1, 3)]

    def test_ie_join(self, ctx):
        a = ctx.load_collection([1, 5])
        b = ctx.load_collection([3])
        cond = InequalityCondition(lambda x: x, "<", lambda x: x)
        assert a.ie_join(b, [cond]).collect() == [(1, 3)]

    def test_sample_first(self, ctx):
        out = ctx.load_collection(list(range(10))).sample(
            size=3, method="first").collect()
        assert out == [0, 1, 2]

    def test_pagerank_verb(self, ctx):
        edges = [(0, 1), (1, 0), (1, 2)]
        ranks = dict(ctx.load_collection(edges).pagerank(
            iterations=5).collect())
        assert set(ranks) == {0, 1, 2}

    def test_write_text_file(self, ctx):
        res = (ctx.load_collection([1, 2])
               .map(lambda x: x * 10)
               .write_text_file("hdfs://out/r.txt"))
        assert ctx.vfs.read("hdfs://out/r.txt").records == ["10", "20"]
        assert res.runtime >= 0

    def test_filter_range_on_dict_rows(self, ctx):
        rows = [{"v": i} for i in range(10)]
        out = ctx.load_collection(rows).filter_range("v", 3, 5).collect()
        assert [r["v"] for r in out] == [3, 4, 5]

    def test_read_table_roundtrip(self, ctx):
        ctx.pgres.create_table("people", ["name"], [{"name": "ada"}])
        assert ctx.read_table("people").collect() == [{"name": "ada"}]

    def test_result_platforms_exposed(self, ctx):
        res = ctx.load_collection([1]).map(lambda x: x).execute()
        assert res.platforms == {"pystreams"}
