"""Concurrent stage scheduler: parallel/serial equivalence + loop fixes.

The scheduler overlaps independent stages' wall-clock work while
committing in stage-list order, so every observable effect of a job —
outputs, monitor contents, sniffer delivery, the simulated critical
path — must be bit-for-bit identical between ``stage_parallelism=1``
and any wider setting.  These tests pin that contract, the scheduler's
failure/cancellation semantics, and the loop-body regression fixes that
rode along (sniffer maps, ``crossing``/``completed_logical`` threading).
"""

import re
import threading
import time

import pytest

from repro import RheemContext
from repro.core.executor import Sniffer
from repro.core.faults import FaultInjector, PlatformFailure
from repro.core.scheduler import StageScheduler
from conftest import wordcount


class _FakeStage:
    def __init__(self, stage_id):
        self.id = stage_id


def _norm(stage_id):
    """Loop-implementation ids are global counters that differ between
    separately built plans; the stage structure is what must match."""
    return re.sub(r"\.loop\d+\.", ".loop.", stage_id)


def _fingerprint(result):
    """Everything that must match bit-for-bit between parallelism levels."""
    return {
        "outputs": result.outputs,
        "makespan": result.runtime,
        "stage_count": result.stage_count,
        "platforms": sorted(result.platforms),
        "timings": sorted((_norm(t.stage_id), t.start, t.duration)
                          for t in result.tracker.timings()),
        "observations": [(_norm(o.stage_id), o.platform, o.duration_s,
                          o.known_seconds, o.operators)
                         for o in result.monitor.stage_observations],
        "stage_timeline": [(_norm(t.stage_id), t.start, t.duration)
                           for t in result.monitor.stage_timings],
        "actual_cardinalities": sorted(result.monitor.actuals.values()),
    }


def _executor_counters(ctx):
    counters = ctx.metrics.snapshot()["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("executor.")}


# --------------------------------------------------------------- scheduler
class TestStageScheduler:
    def test_commits_follow_list_order_despite_compute_skew(self):
        stages = [_FakeStage(f"s{i}") for i in range(6)]
        deps = {"s5": ["s3"], "s3": ["s0"]}
        committed = []

        def compute(index, stage, lane, producers):
            # Earlier stages take *longer*, so commit order only matches
            # list order if the scheduler enforces it.
            time.sleep(0.03 - 0.005 * index)
            return f"out-{stage.id}"

        def commit(index, stage, outcome):
            assert outcome == f"out-{stage.id}"
            committed.append(stage.id)

        StageScheduler(stages, deps, parallelism=4, compute=compute,
                       commit=commit).run()
        assert committed == [s.id for s in stages]

    def test_dependency_blocks_dispatch_until_producer_computes(self):
        stages = [_FakeStage("a"), _FakeStage("b")]
        a_computed = threading.Event()
        computed = []
        committed = []

        def compute(index, stage, lane, producers):
            if stage.id == "b":
                assert a_computed.is_set(), "b dispatched before a computed"
                # The producer's buffered outcome travels with dispatch.
                assert producers == ["out-a"]
            computed.append(stage.id)
            if stage.id == "a":
                a_computed.set()
            return f"out-{stage.id}"

        StageScheduler(stages, {"b": ["a"]}, parallelism=4,
                       compute=compute,
                       commit=lambda i, s, o: committed.append(s.id)).run()
        assert computed == ["a", "b"]
        assert committed == ["a", "b"]

    def test_failure_cancels_undispatched_dependents_and_drains(self):
        stages = [_FakeStage("a"), _FakeStage("b"), _FakeStage("c")]
        computed = []

        def compute(index, stage, lane, producers):
            if stage.id == "a":
                raise PlatformFailure("a", 0)
            time.sleep(0.02)  # b is in flight while a fails
            computed.append(stage.id)
            return None

        committed = []
        with pytest.raises(PlatformFailure):
            StageScheduler(stages, {"c": ["a"]}, parallelism=2,
                           compute=compute,
                           commit=lambda i, s, o: committed.append(s.id)
                           ).run()
        # b (independent, already dispatched) drained; c (dependent,
        # never ready) was cancelled; nothing committed.
        assert computed == ["b"]
        assert committed == []

    def test_serial_mode_runs_inline_on_the_caller_thread(self):
        stages = [_FakeStage("a"), _FakeStage("b")]
        threads = set()
        lanes = set()

        def compute(index, stage, lane, producers):
            threads.add(threading.current_thread())
            lanes.add(lane)
            return None

        StageScheduler(stages, {}, parallelism=1, compute=compute,
                       commit=lambda i, s, o: None).run()
        assert threads == {threading.main_thread()}
        assert lanes == {0}

    def test_gauges_track_inflight_and_settle_to_zero(self):
        from repro.trace import MetricsRegistry

        metrics = MetricsRegistry()
        peak = []

        def compute(index, stage, lane, producers):
            peak.append(metrics.gauge("executor.inflight_stages").value)
            time.sleep(0.02)
            return None

        StageScheduler([_FakeStage(f"s{i}") for i in range(4)], {},
                       parallelism=4, compute=compute,
                       commit=lambda i, s, o: None, metrics=metrics).run()
        gauges = metrics.snapshot()["gauges"]
        assert gauges["executor.ready_stages"] == 0
        assert gauges["executor.inflight_stages"] == 0
        assert max(peak) >= 2  # stages genuinely overlapped


# ------------------------------------------------- parallel == serial (S5)
class TestParallelSerialEquivalence:
    def _run_q5(self, parallelism):
        from repro.apps.dataciv import q5_quanta
        from repro.workloads.tpch import TpchLite

        ctx = RheemContext()
        ctx.config["stage_parallelism"] = parallelism
        TpchLite(0.01).place_for_q5(ctx)
        result = q5_quanta(ctx, 0.01, placement="polystore").execute()
        return result, _executor_counters(ctx)

    def test_tpch_q5_polystore_bit_for_bit(self):
        serial, serial_counters = self._run_q5(1)
        wide, wide_counters = self._run_q5(8)
        assert _fingerprint(wide) == _fingerprint(serial)
        assert wide_counters == serial_counters

    def _run_do_while(self, parallelism):
        ctx = RheemContext()
        ctx.config["stage_parallelism"] = parallelism
        data = ctx.load_collection([1, 2, 3], sim_factor=5_000.0).cache()
        seed = ctx.load_collection([0])
        out = seed.do_while(
            lambda values: values[0] < 6,
            lambda s, inv: s.map(lambda v: v + 1)
            .union(inv.filter(lambda v: False)).reduce(lambda a, b: a + b),
            invariants=[data], max_iterations=50)
        return out.execute(), _executor_counters(ctx)

    def test_do_while_loop_plan_bit_for_bit(self):
        serial, serial_counters = self._run_do_while(1)
        wide, wide_counters = self._run_do_while(8)
        assert serial.output == [6]
        assert _fingerprint(wide) == _fingerprint(serial)
        assert wide_counters == serial_counters

    def _run_faulty(self, parallelism):
        probe = RheemContext()
        probe.vfs.write("hdfs://sp/l.txt", ["a b", "b"], sim_factor=1000.0)
        plan = wordcount(probe, "hdfs://sp/l.txt").to_plan()
        optimizer = probe.optimizer()
        best, __ = optimizer.pick_best(plan)
        stage_id = optimizer._build_execution_plan(
            plan, best).build_stages()[0].id

        ctx = RheemContext()
        ctx.config["stage_parallelism"] = parallelism
        ctx.vfs.write("hdfs://sp/l.txt", ["a b", "b"], sim_factor=1000.0)
        injector = FaultInjector(failures={stage_id: 2})
        result = wordcount(ctx, "hdfs://sp/l.txt").execute(
            fault_injector=injector, max_stage_retries=2)
        assert injector.injected == 2
        return result, _executor_counters(ctx)

    def test_fault_injected_run_bit_for_bit(self):
        serial, serial_counters = self._run_faulty(1)
        wide, wide_counters = self._run_faulty(8)
        assert dict(serial.output) == {"a": 1, "b": 2}
        assert _fingerprint(wide) == _fingerprint(serial)
        assert wide_counters == serial_counters


# ------------------------------------------------------ tentpole behaviour
class TestWallClockParallelism:
    def _wide_plan(self, ctx):
        branches = []
        for i, platform in enumerate(
                ["pystreams", "sparklite", "flinklite", "pystreams"]):
            branch = (ctx.load_collection(list(range(20)),
                                          sim_factor=2_000.0)
                      .map(lambda x: x).with_target_platform(platform))
            branches.append(branch)
        merged = branches[0]
        for branch in branches[1:]:
            merged = merged.union(branch)
        return merged

    def _run(self, ctx, parallelism, dwell):
        ctx.config["stage_wall_s"] = dwell
        ctx.config["stage_parallelism"] = parallelism
        start = time.perf_counter()
        result = self._wide_plan(ctx).execute()
        return result, time.perf_counter() - start

    def test_dwell_overlaps_across_lanes(self):
        serial, serial_wall = self._run(RheemContext(), 1, dwell=0.05)
        wide, wide_wall = self._run(RheemContext(), 4, dwell=0.05)
        assert _fingerprint(wide) == _fingerprint(serial)
        # Stage count is ~8+ here; four lanes must beat serial clearly
        # even on a noisy CI box.
        assert wide_wall < serial_wall * 0.75

    def test_stage_spans_carry_lanes(self):
        ctx = RheemContext()
        ctx.config["stage_parallelism"] = 4
        tracer = ctx.enable_tracing()
        self._wide_plan(ctx).execute()
        lanes = {span.attributes["lane"] for span in tracer.walk()
                 if span.name.startswith("stage:")
                 and "lane" in span.attributes}
        assert len(lanes) >= 2  # true concurrency, not one lane reused
        run_span = tracer.find("executor.run")[0]
        assert run_span.attributes["parallelism"] == 4

    def test_chrome_trace_spreads_lanes_over_tids(self):
        from repro.trace.export import chrome_trace

        ctx = RheemContext()
        ctx.config["stage_parallelism"] = 4
        tracer = ctx.enable_tracing()
        self._wide_plan(ctx).execute()
        doc = chrome_trace(tracer, [])
        tids = {e["tid"] for e in doc["traceEvents"]
                if e.get("ph") == "X" and e["name"].startswith("stage:")}
        assert len(tids) >= 2

    def test_default_parallelism_is_platform_count(self):
        ctx = RheemContext()
        tracer = ctx.enable_tracing()
        self._wide_plan(ctx).execute()
        run_span = tracer.find("executor.run")[0]
        assert run_span.attributes["parallelism"] >= 2

    def test_server_budget_caps_lanes(self):
        from repro.server import JobServer

        server = JobServer(workers=4, queue_size=4, stage_threads=4)
        try:
            assert server.ctx.config["stage_parallelism_cap"] == 1
            doc = {
                "operators": [
                    {"name": "src", "kind": "collection_source",
                     "data": [1, 2, 3]},
                    {"name": "inc", "kind": "map", "input": "src",
                     "expr": "x + 1"},
                ],
                "sink": {"name": "inc"},
            }
            job = server.submit(doc)
            response = server.result(job.job_id)
            assert response["status"] == "ok"
            assert response["output"] == [2, 3, 4]
        finally:
            server.shutdown()

    def test_parallelize_stages_false_stays_serial(self, ctx):
        # The paper's baseline switch: chained dependencies and one lane.
        ctx.config["stage_parallelism"] = 8
        a = ctx.load_collection(list(range(50)), sim_factor=1e5).map(
            lambda x: x)
        plan = a.union(
            ctx.load_collection(list(range(50)), sim_factor=1e5).map(
                lambda x: x)).to_plan()
        optimizer = ctx.optimizer({"pystreams", "driver"})
        best, cards = optimizer.pick_best(plan)
        exec_plan = optimizer._build_execution_plan(plan, best)
        res = ctx.executor().execute(exec_plan, estimates=cards,
                                     parallelize_stages=False)
        assert res.runtime == pytest.approx(res.tracker.busy_time)


# ------------------------------------------------------- loop fixes S1/S2
class TestLoopBodyFixes:
    def test_sniffer_inside_repeat_loop_fires_per_iteration(self, ctx):
        """S1: sniffers on loop-body operators must observe every
        iteration (the loop used to swallow the sniffer map)."""
        data = ctx.load_collection([1, 2]).cache()
        seed = ctx.load_collection([0])
        body_ids = []

        def body(s, inv):
            stepped = s.map(lambda v: v + 1)
            body_ids.append(stepped.op.id)
            return stepped

        out = seed.repeat(3, body, invariants=[data])
        tapped = []
        result = out.execute(sniffers=[Sniffer(body_ids[0], tapped.append)])
        assert result.output == [3]
        assert tapped == [[1], [2], [3]]

    def test_sniffed_loop_costs_more_than_plain(self, ctx):
        """The in-loop sniffer's multiplexing cost lands on the body
        stages' meters, so the makespan grows."""

        def run(sniffers):
            run_ctx = RheemContext()
            data = run_ctx.load_collection(
                list(range(100)), sim_factor=50_000.0).cache()
            seed = run_ctx.load_collection([0])
            ids = []

            def body(s, inv):
                stepped = s.map(lambda v: v + 1)
                ids.append(stepped.op.id)
                return stepped

            out = seed.repeat(4, body, invariants=[data])
            taps = ([Sniffer(ids[0], lambda _: None, cost_factor=5000.0)]
                    if sniffers else [])
            return out.execute(sniffers=taps).runtime

        assert run(sniffers=True) > run(sniffers=False)

    def test_loop_body_memory_checks_scale_with_iterations(self, ctx):
        """S2: channels materialized at loop-body stage boundaries hit
        ``cluster.check_memory`` — once per iteration, so the call count
        grows with the iteration count (it used to stay flat)."""

        def count_checks(iterations):
            run_ctx = RheemContext()
            calls = []
            real = run_ctx.cluster.check_memory
            run_ctx.cluster.check_memory = (
                lambda platform, mb: (calls.append(platform),
                                      real(platform, mb))[1])
            data = run_ctx.load_collection([1, 2]).cache()
            seed = run_ctx.load_collection([0])
            out = seed.repeat(iterations,
                              lambda s, inv: s.map(lambda v: v + 1),
                              invariants=[data])
            assert out.collect() == [iterations]
            return len(calls)

        assert count_checks(6) > count_checks(2)

    def test_loop_body_ops_reach_completed_logical(self, ctx):
        """S2: loop-body logical operators show up in the completed set a
        checkpoint receives once their loop stage commits."""
        data = ctx.load_collection([1, 2]).cache()
        seed = ctx.load_collection([0])
        body_ids = []

        def body(s, inv):
            stepped = s.map(lambda v: v + 1)
            body_ids.append(stepped.op.id)
            return stepped

        out = seed.repeat(2, body, invariants=[data]).map(lambda v: v * 10)
        plan = out.to_plan()
        optimizer = ctx.optimizer()
        best, cards = optimizer.pick_best(plan)
        exec_plan = optimizer._build_execution_plan(plan, best)
        seen = []
        result = ctx.executor().execute(
            exec_plan, estimates=cards,
            checkpoint=lambda monitor, completed: (seen.append(completed),
                                                   False)[1])
        assert result.output == [20]
        union = set().union(*seen) if seen else set()
        assert body_ids[0] in union


# --------------------------------------------------------------------- S4
class TestStartedPlatformReporting:
    def test_platforms_reports_what_actually_started(self, ctx):
        tapped = wordcount(ctx, "hdfs://s4/l.txt")
        ctx.vfs.write("hdfs://s4/l.txt", ["a b"], sim_factor=10.0)
        result = tapped.execute()
        timeline_platforms = {o.platform
                              for o in result.monitor.stage_observations
                              if o.platform != "driver"}
        assert result.platforms == timeline_platforms

    def test_resumed_job_keeps_previously_started_platforms(self, ctx):
        """A paused-then-resumed job must report the platforms started
        before the pause, not just the residual plan's platforms (the
        old code re-derived them from ``plan.platforms()``)."""
        ctx.vfs.write("hdfs://s4/r.txt", ["a b", "b"], sim_factor=10.0)
        plan = wordcount(ctx, "hdfs://s4/r.txt").to_plan()
        optimizer = ctx.optimizer()
        best, cards = optimizer.pick_best(plan)
        exec_plan = optimizer._build_execution_plan(plan, best)
        pre_started = {"already-started-platform"}
        result = ctx.executor().execute(exec_plan, estimates=cards,
                                        started_platforms=pre_started)
        assert "already-started-platform" in result.platforms
        assert result.platforms - {"already-started-platform"} <= \
            exec_plan.platforms()
